//! Offline stand-in for the `serde` crate.
//!
//! Provides the `Serialize`/`Deserialize` trait names and the matching
//! no-op derive macros so workspace types keep their upstream-compatible
//! annotations while building without network access. No serialization
//! is performed anywhere in this repository.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
