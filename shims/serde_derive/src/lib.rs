//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace is built in an offline environment, so the real serde
//! derive machinery is unavailable. Nothing in this repository calls
//! `serialize`/`deserialize` at runtime — the derives exist so type
//! definitions can keep the upstream-compatible annotations — which
//! makes empty derive expansions sufficient.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
