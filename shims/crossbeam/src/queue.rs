//! Bounded MPMC queue with crossbeam's `ArrayQueue` interface.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded multi-producer multi-consumer queue. Pushes beyond the
/// capacity fail and hand the element back, like crossbeam's
/// `ArrayQueue`.
#[derive(Debug)]
pub struct ArrayQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> ArrayQueue<T> {
    /// Creates a queue holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        ArrayQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to enqueue `value`.
    ///
    /// # Errors
    ///
    /// Returns `value` back if the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut q = self.lock();
        if q.len() >= self.capacity {
            Err(value)
        } else {
            q.push_back(value);
            Ok(())
        }
    }

    /// Dequeues the oldest element, if any.
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Elements currently queued.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// `true` when the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.lock().len() >= self.capacity
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_fifo() {
        let q = ArrayQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert!(q.is_full());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 2);
    }
}
