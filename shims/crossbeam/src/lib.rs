//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the subset of the crossbeam API this workspace uses —
//! MPMC [`channel`]s and the bounded lock-free-style [`queue::ArrayQueue`]
//! — over `std::sync` primitives, so the workspace builds without
//! network access. Semantics match crossbeam for the covered surface:
//! cloneable senders *and* receivers, disconnect detection on both
//! sides, and `Err`-returning bounded-queue pushes.

pub mod channel;
pub mod queue;
