//! Unbounded MPMC channels with crossbeam-compatible semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Nothing queued and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with nothing queued.
    Timeout,
    /// Nothing queued and all senders dropped.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sending half of an unbounded channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel. Cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `msg`.
    ///
    /// # Errors
    ///
    /// Returns the message back if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(msg));
        }
        self.shared.lock().push_back(msg);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// `true` when no message is currently queued.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.lock();
        loop {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .ready
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues a message without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] if nothing is queued,
    /// [`TryRecvError::Disconnected`] if additionally every sender is
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.lock();
        if let Some(msg) = queue.pop_front() {
            return Ok(msg);
        }
        if self.shared.senders.load(Ordering::SeqCst) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks until a message arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when the deadline passes,
    /// [`RecvTimeoutError::Disconnected`] when the channel empties with
    /// no senders left.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.lock();
        loop {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, _res) = self
                .shared
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = q;
        }
    }

    /// `true` when no message is currently queued.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_detection() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, (0..100).sum::<i32>());
    }
}
