//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's unpoisoned API:
//! `lock()`/`read()`/`write()` return guards directly and a panic while
//! holding a lock does not poison it for other threads (the std poison
//! flag is ignored via `into_inner`). `Condvar::wait` takes the guard
//! by `&mut` like parking_lot, which is why [`MutexGuard`] stores the
//! underlying std guard in an `Option` — wait briefly takes it out,
//! parks on the std condvar, and puts the reacquired guard back.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// Mutual exclusion primitive; `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Always `Some` outside of `Condvar::wait`'s take/park/replace window.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`Mutex`]; waits take the guard by
/// `&mut` like parking_lot.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded mutex and parks until notified;
    /// the lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Like [`wait`](Self::wait) but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
