//! Collection strategies, mirroring `proptest::collection`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;

use crate::strategy::Strategy;

/// Ranges usable as a collection-size specification.
pub trait SizeRange {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        self.clone().sample(rng)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        self.clone().sample(rng)
    }
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

/// Strategy yielding `Vec`s of `element` values with lengths drawn
/// from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// Strategy yielding `BTreeSet`s; duplicates collapse, so produced
/// sets may be smaller than the drawn length (matches proptest's
/// minimum-size-best-effort behavior closely enough for tests that
/// bound sizes from above).
pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: SizeRange,
{
    BTreeSetStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: SizeRange,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
