//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! deterministic seeded random-sampling runner: each `proptest!` test
//! derives its RNG seed from the test name, draws `cases` inputs from
//! the given strategies, and fails with the offending inputs' source
//! expressions on the first violated `prop_assert*!`. There is no
//! shrinking — failures report the raw sampled case instead. That is a
//! weaker debugging experience than real proptest but identical
//! pass/fail semantics for the covered surface.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Mirrors `proptest!`'s item form: optional
/// `#![proptest_config(..)]`, then `#[test] fn name(pat in strategy, ..) { .. }`
/// items. Each test runs `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $(
                                let $arg_pat = $crate::strategy::Strategy::sample(
                                    &($arg_strat),
                                    &mut rng,
                                );
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("property {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("prop_assert!({}) failed", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert!({}) failed: {}",
                stringify!($cond),
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?}: {}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current property case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_ne!({}, {}) failed: both were {:?}",
                stringify!($left),
                stringify!($right),
                left,
            ));
        }
    }};
}

/// Skips the current property case unless `cond` holds. (Real proptest
/// resamples; the shim counts the skipped case as passed.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Picks uniformly between heterogeneous strategies with a common
/// `Value` type. (Real proptest supports weighted arms; the workspace
/// only uses the unweighted form.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn samples_stay_in_range(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn config_and_combinators_work(
            pair in (0u8..4, any::<bool>()).prop_map(|(v, b)| (v * 2, b)),
            items in crate::collection::vec(0u16..10, 1..5),
            choice in prop_oneof![Just(1u8), Just(2u8), 5u8..7],
        ) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assume!(!items.is_empty());
            prop_assert!(items.len() < 5);
            prop_assert!(choice == 1 || choice == 2 || (5..7).contains(&choice));
        }
    }

    proptest! {
        #[test]
        fn flat_map_threads_dependent_values(
            (n, k) in (1usize..20).prop_flat_map(|n| (Just(n), 0usize..n)),
        ) {
            prop_assert!(k < n);
        }
    }

    #[test]
    fn same_name_means_same_samples() {
        let mut a = crate::test_runner::rng_for_test("t");
        let mut b = crate::test_runner::rng_for_test("t");
        let s = 0u64..1000;
        for _ in 0..16 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
