//! Runner configuration and per-test RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner knobs, mirroring `proptest::test_runner::Config`. Only
/// `cases` is honored by the shim.
#[derive(Debug, Clone)]
#[allow(clippy::exhaustive_structs)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
    /// Accepted for API compatibility; the shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 1024,
        }
    }
}

/// Derives a deterministic RNG from a test's name, so a failing case
/// reproduces on rerun without a persistence file.
pub fn rng_for_test(name: &str) -> StdRng {
    // FNV-1a over the name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}
