//! Value-generation strategies: sampled, not shrunk.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`, mirroring
/// `proptest::strategy::Strategy` minus shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds
    /// from it — for dependent inputs.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sampler: Rc::new(move |rng| self.sample(rng)),
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
#[allow(clippy::exhaustive_structs)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        let intermediate = self.base.sample(rng);
        (self.f)(intermediate).sample(rng)
    }
}

/// Type-erased strategy, cheap to clone.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy { .. }")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.sampler)(rng)
    }
}

/// Uniform choice between erased alternatives; built by `prop_oneof!`.
#[derive(Debug, Clone)]
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Wraps the alternatives to choose between.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's whole domain; built by [`any`].
#[derive(Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Mirrors `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
