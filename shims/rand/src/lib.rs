//! Offline stand-in for the `rand` crate.
//!
//! Provides `Rng`/`SeedableRng` and `rngs::StdRng` backed by SplitMix64
//! so the workspace builds without network access. Deterministic for a
//! given seed, which is all the workspace relies on; statistical
//! quality is adequate for test-data generation, not cryptography.

use std::ops::{Range, RangeInclusive};

/// Subset of `rand::Rng` used by this workspace.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (modulo-bias tolerated; this is a
    /// test-data shim, not a statistics library).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Subset of `rand::SeedableRng` used by this workspace.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + (unit as f32) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..40);
            assert!((3..40).contains(&v));
            let u: usize = rng.gen_range(0..5);
            assert!(u < 5);
            let i = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&i));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "suspicious bias: {hits}");
    }
}
