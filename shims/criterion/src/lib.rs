//! Offline stand-in for the `criterion` crate.
//!
//! Keeps `cargo bench` runnable without network access: every
//! benchmark executes a handful of timed iterations and prints a
//! mean per-iteration wall time. No warm-up, outlier rejection, or
//! statistical analysis — numbers are indicative, not publishable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations each benchmark routine runs (after one untimed call
/// to amortize lazy setup such as allocator warm-up).
const TIMED_ITERS: u32 = 10;

/// How a batched benchmark trades setup cost against memory; the shim
/// ignores the distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter, like criterion's
    /// `function_name/parameter` convention.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = TIMED_ITERS;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding the
    /// setup cost itself.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut elapsed = Duration::ZERO;
        for _ in 0..TIMED_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iters = TIMED_ITERS;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id}: no iterations recorded");
        } else {
            let per_iter = self.elapsed / self.iters;
            println!("{id}: {per_iter:?}/iter over {} iters", self.iters);
        }
    }
}

/// Top-level harness, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for compatibility; the shim's iteration count is fixed.
    #[must_use]
    pub fn sample_size(self, _samples: usize) -> Self {
        self
    }

    /// Runs and reports a single benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Display,
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<I: Display>(&mut self, group_name: I) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.to_string(),
            _criterion: self,
        }
    }
}

/// Group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs and reports one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Display,
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Display,
        F: FnMut(&mut Bencher, &P),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (criterion finalizes reports here; the shim
    /// reports eagerly, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    bencher.report(id);
}

/// Declares a group of benchmark functions; supports both the
/// positional and the `name=/config=/targets=` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| 3u64 * 3));
        let mut group = c.benchmark_group("grouped");
        for &n in &[2u64, 4] {
            group.bench_with_input(BenchmarkId::new("mul", n), &n, |b, &n| b.iter(|| n * n));
        }
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(positional, square);
    criterion_group! {
        name = named;
        config = Criterion::default().sample_size(10);
        targets = square
    }

    #[test]
    fn groups_run_without_panicking() {
        positional();
        named();
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("engine", "Des").to_string(), "engine/Des");
    }
}
