//! Error types for knowledge-base construction and access.

use crate::ids::{NodeId, RelationType};
use core::fmt;

/// Errors raised by knowledge-base operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KbError {
    /// The configured node capacity (`N`, 32K in the prototype) is exhausted.
    NodeCapacityExceeded {
        /// Configured maximum number of nodes.
        capacity: usize,
    },
    /// A referenced node does not exist.
    UnknownNode(NodeId),
    /// A referenced node name is not defined.
    UnknownName(String),
    /// A node name was defined twice.
    DuplicateName(String),
    /// A marker index is outside the configured register file
    /// (64 complex + 64 binary markers per node in the prototype).
    MarkerOutOfRange {
        /// The offending marker index.
        index: u8,
        /// Number of markers of that kind provided by the configuration.
        capacity: usize,
    },
    /// The reserved subnode relation was used as an ordinary link type.
    ReservedRelation(RelationType),
    /// A link to delete was not present.
    LinkNotFound {
        /// Source node of the missing link.
        source: NodeId,
        /// Relation type of the missing link.
        relation: RelationType,
        /// Destination node of the missing link.
        destination: NodeId,
    },
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::NodeCapacityExceeded { capacity } => {
                write!(f, "node capacity of {capacity} exceeded")
            }
            KbError::UnknownNode(n) => write!(f, "unknown node {n}"),
            KbError::UnknownName(name) => write!(f, "unknown node name `{name}`"),
            KbError::DuplicateName(name) => write!(f, "node name `{name}` already defined"),
            KbError::MarkerOutOfRange { index, capacity } => {
                write!(
                    f,
                    "marker index {index} outside register file of {capacity}"
                )
            }
            KbError::ReservedRelation(r) => {
                write!(f, "relation {r} is reserved for internal use")
            }
            KbError::LinkNotFound {
                source,
                relation,
                destination,
            } => write!(f, "link {source} -{relation}-> {destination} not found"),
        }
    }
}

impl std::error::Error for KbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = KbError::NodeCapacityExceeded { capacity: 32768 };
        assert_eq!(e.to_string(), "node capacity of 32768 exceeded");
        let e = KbError::UnknownNode(NodeId(3));
        assert_eq!(e.to_string(), "unknown node n3");
        let e = KbError::MarkerOutOfRange {
            index: 99,
            capacity: 64,
        };
        assert!(e.to_string().contains("99"));
        let e = KbError::LinkNotFound {
            source: NodeId(1),
            relation: RelationType(2),
            destination: NodeId(3),
        };
        assert_eq!(e.to_string(), "link n1 -r2-> n3 not found");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KbError>();
    }
}
