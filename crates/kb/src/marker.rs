//! Markers: the dynamic agents of inference.
//!
//! Markers are data patterns associated with nodes. SNAP-1 provides two
//! register files per node, sized to balance expressiveness against
//! storage:
//!
//! * **complex markers** (`M_C = 64`) carry a 32-bit floating-point value
//!   used as a measure of belief (e.g. the cost of accepting a concept
//!   sequence) plus the address of the origin node for variable binding;
//! * **binary markers** (`M_B = 64`) indicate bare set membership or
//!   hypothesis state.
//!
//! [`MarkerState`] is the runtime marker storage for one region of the
//! semantic network (a cluster's partition, or the whole network on a
//! sequential engine). All execution engines share it so their logical
//! results can be compared bit-for-bit.

use crate::error::KbError;
use crate::ids::NodeId;
use crate::status::StatusRow;
use serde::{Deserialize, Serialize};

/// The kind of a marker register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MarkerKind {
    /// Carries a floating-point value and an origin-node binding.
    Complex,
    /// Carries only an active/inactive bit.
    Binary,
}

/// A marker register name: kind plus index into that kind's register file.
///
/// # Examples
///
/// ```
/// use snap_kb::Marker;
/// let m1 = Marker::complex(1);
/// let b0 = Marker::binary(0);
/// assert_ne!(m1, b0);
/// assert_eq!(m1.to_string(), "m1");
/// assert_eq!(b0.to_string(), "b0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Marker {
    kind: MarkerKind,
    index: u8,
}

impl Marker {
    /// Names complex marker `index`.
    pub const fn complex(index: u8) -> Self {
        Marker {
            kind: MarkerKind::Complex,
            index,
        }
    }

    /// Names binary marker `index`.
    pub const fn binary(index: u8) -> Self {
        Marker {
            kind: MarkerKind::Binary,
            index,
        }
    }

    /// The marker's kind.
    #[inline]
    pub fn kind(self) -> MarkerKind {
        self.kind
    }

    /// The marker's index within its kind's register file.
    #[inline]
    pub fn index(self) -> u8 {
        self.index
    }
}

impl core::fmt::Display for Marker {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.kind {
            MarkerKind::Complex => write!(f, "m{}", self.index),
            MarkerKind::Binary => write!(f, "b{}", self.index),
        }
    }
}

/// The value payload carried by a complex marker at a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkerValue {
    /// Accumulated belief/cost value.
    pub value: f32,
    /// Node at which this marker instance originated (for binding).
    pub origin: NodeId,
}

impl Default for MarkerValue {
    fn default() -> Self {
        MarkerValue {
            value: 0.0,
            origin: NodeId(0),
        }
    }
}

/// Runtime marker storage for one region of the semantic network.
///
/// Rows of the status table are allocated lazily: a marker that is never
/// touched costs nothing, which keeps 12K-node experiments with the full
/// 64+64 register file cheap.
#[derive(Debug, Clone)]
pub struct MarkerState {
    nodes: usize,
    max_complex: usize,
    max_binary: usize,
    complex_status: Vec<Option<StatusRow>>,
    binary_status: Vec<Option<StatusRow>>,
    /// Value/origin payloads for complex markers, row per marker.
    values: Vec<Option<Vec<MarkerValue>>>,
}

impl MarkerState {
    /// Creates empty marker storage covering `nodes` node slots with the
    /// given register-file sizes (the prototype uses 64 and 64).
    pub fn new(nodes: usize, max_complex: usize, max_binary: usize) -> Self {
        MarkerState {
            nodes,
            max_complex,
            max_binary,
            complex_status: vec![None; max_complex],
            binary_status: vec![None; max_binary],
            values: vec![None; max_complex],
        }
    }

    /// Number of node slots covered.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Grows the storage to cover `nodes` node slots (used when runtime
    /// `CREATE` instructions add nodes). Existing marker bits are kept.
    pub fn grow(&mut self, nodes: usize) {
        if nodes <= self.nodes {
            return;
        }
        for r in self
            .complex_status
            .iter_mut()
            .chain(&mut self.binary_status)
            .flatten()
        {
            let mut bigger = StatusRow::new(nodes);
            for n in r.iter() {
                bigger.set(n);
            }
            *r = bigger;
        }
        for vals in self.values.iter_mut().flatten() {
            vals.resize(nodes, MarkerValue::default());
        }
        self.nodes = nodes;
    }

    fn check(&self, marker: Marker) -> Result<(), KbError> {
        let cap = match marker.kind() {
            MarkerKind::Complex => self.max_complex,
            MarkerKind::Binary => self.max_binary,
        };
        if (marker.index() as usize) < cap {
            Ok(())
        } else {
            Err(KbError::MarkerOutOfRange {
                index: marker.index(),
                capacity: cap,
            })
        }
    }

    /// Read-only view of a marker's status row, if it was ever touched.
    pub fn row(&self, marker: Marker) -> Option<&StatusRow> {
        let slot = match marker.kind() {
            MarkerKind::Complex => &self.complex_status[marker.index() as usize],
            MarkerKind::Binary => &self.binary_status[marker.index() as usize],
        };
        slot.as_ref()
    }

    /// Mutable view of a marker's status row, allocating it if untouched.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::MarkerOutOfRange`] if the index exceeds the
    /// register file.
    pub fn row_mut(&mut self, marker: Marker) -> Result<&mut StatusRow, KbError> {
        self.check(marker)?;
        let nodes = self.nodes;
        let slot = match marker.kind() {
            MarkerKind::Complex => &mut self.complex_status[marker.index() as usize],
            MarkerKind::Binary => &mut self.binary_status[marker.index() as usize],
        };
        Ok(slot.get_or_insert_with(|| StatusRow::new(nodes)))
    }

    /// Tests whether `marker` is active at `node`.
    pub fn test(&self, marker: Marker, node: NodeId) -> bool {
        self.row(marker).is_some_and(|r| r.test(node))
    }

    /// Activates `marker` at `node`. Returns `true` if newly activated.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::MarkerOutOfRange`] for an invalid register index.
    pub fn set(&mut self, marker: Marker, node: NodeId) -> Result<bool, KbError> {
        Ok(self.row_mut(marker)?.set(node))
    }

    /// Deactivates `marker` at `node`. Returns `true` if it was active.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::MarkerOutOfRange`] for an invalid register index.
    pub fn clear(&mut self, marker: Marker, node: NodeId) -> Result<bool, KbError> {
        Ok(self.row_mut(marker)?.clear(node))
    }

    /// The value payload of a complex marker at `node`, if the marker is a
    /// complex marker that has been written there. Binary markers have no
    /// payload and always return `None`.
    pub fn value(&self, marker: Marker, node: NodeId) -> Option<MarkerValue> {
        if marker.kind() != MarkerKind::Complex {
            return None;
        }
        if !self.test(marker, node) {
            return None;
        }
        self.values[marker.index() as usize]
            .as_ref()
            .map(|vals| vals[node.index()])
    }

    /// Writes the value payload of a complex marker at `node` and activates
    /// the marker there.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::MarkerOutOfRange`] if the index is invalid, and
    /// [`KbError::UnknownNode`] if `node` is outside the region. Writing a
    /// payload on a binary marker is a programming error and also yields
    /// [`KbError::MarkerOutOfRange`].
    pub fn set_value(
        &mut self,
        marker: Marker,
        node: NodeId,
        value: MarkerValue,
    ) -> Result<(), KbError> {
        if marker.kind() != MarkerKind::Complex {
            return Err(KbError::MarkerOutOfRange {
                index: marker.index(),
                capacity: 0,
            });
        }
        self.check(marker)?;
        if node.index() >= self.nodes {
            return Err(KbError::UnknownNode(node));
        }
        self.row_mut(marker)?.set(node);
        let nodes = self.nodes;
        let vals = self.values[marker.index() as usize]
            .get_or_insert_with(|| vec![MarkerValue::default(); nodes]);
        vals[node.index()] = value;
        Ok(())
    }

    /// Bulk [`MarkerState::set_value`]: writes a run of `(node, value)`
    /// payloads on one complex marker, checking the register and
    /// fetching the status/value rows **once** instead of per node.
    /// This is the absorb path of the bit-sliced serving kernel, which
    /// accumulates a whole propagation's marker writes before touching
    /// the region.
    ///
    /// # Errors
    ///
    /// Same per-item contract as [`MarkerState::set_value`]:
    /// [`KbError::MarkerOutOfRange`] for a bad register (or a binary
    /// marker), [`KbError::UnknownNode`] for a node outside the region
    /// — items before the failing one stay written.
    pub fn merge_values(
        &mut self,
        marker: Marker,
        items: impl Iterator<Item = (NodeId, MarkerValue)>,
    ) -> Result<(), KbError> {
        if marker.kind() != MarkerKind::Complex {
            return Err(KbError::MarkerOutOfRange {
                index: marker.index(),
                capacity: 0,
            });
        }
        self.check(marker)?;
        let nodes = self.nodes;
        let row = {
            let slot = &mut self.complex_status[marker.index() as usize];
            slot.get_or_insert_with(|| StatusRow::new(nodes))
        };
        let vals = self.values[marker.index() as usize]
            .get_or_insert_with(|| vec![MarkerValue::default(); nodes]);
        for (node, value) in items {
            if node.index() >= nodes {
                return Err(KbError::UnknownNode(node));
            }
            row.set(node);
            vals[node.index()] = value;
        }
        Ok(())
    }

    /// Bulk [`MarkerState::set`] for one binary marker: one register
    /// check and one row fetch for the whole run of nodes.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::MarkerOutOfRange`] for an invalid register
    /// index.
    pub fn merge_bits(
        &mut self,
        marker: Marker,
        items: impl Iterator<Item = NodeId>,
    ) -> Result<(), KbError> {
        let row = self.row_mut(marker)?;
        for node in items {
            row.set(node);
        }
        Ok(())
    }

    /// Clears every instance of `marker` across the region. Returns the
    /// number of status words touched (cost-model unit).
    ///
    /// # Errors
    ///
    /// Returns [`KbError::MarkerOutOfRange`] for an invalid register index.
    pub fn clear_marker(&mut self, marker: Marker) -> Result<usize, KbError> {
        self.check(marker)?;
        match self.row_mut(marker) {
            Ok(row) => Ok(row.clear_all()),
            Err(e) => Err(e),
        }
    }

    /// Clears every allocated marker row in place, keeping the row and
    /// value allocations for reuse. After a reset the state is logically
    /// identical to a freshly constructed one (stale value payloads are
    /// unobservable because [`MarkerState::value`] requires the status
    /// bit), but steady-state reuse — e.g. a pooled per-query context —
    /// allocates nothing.
    pub fn reset(&mut self) {
        for row in self
            .complex_status
            .iter_mut()
            .chain(&mut self.binary_status)
            .flatten()
        {
            row.clear_all();
        }
    }

    /// Iterates the nodes where `marker` is active, ascending.
    pub fn active_nodes(&self, marker: Marker) -> Vec<NodeId> {
        self.active_nodes_iter(marker).collect()
    }

    /// Iterates the nodes where `marker` is active, ascending, without
    /// allocating. Report and collect paths prefer this over
    /// [`MarkerState::active_nodes`].
    pub fn active_nodes_iter(&self, marker: Marker) -> impl Iterator<Item = NodeId> + '_ {
        self.row(marker).into_iter().flat_map(|r| r.iter())
    }

    /// Number of nodes where `marker` is active.
    pub fn count(&self, marker: Marker) -> usize {
        self.row(marker).map_or(0, |r| r.count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_test_binary_marker() {
        let mut st = MarkerState::new(50, 4, 4);
        let b = Marker::binary(2);
        assert!(!st.test(b, NodeId(10)));
        assert!(st.set(b, NodeId(10)).unwrap());
        assert!(st.test(b, NodeId(10)));
        assert_eq!(st.count(b), 1);
        assert!(st.clear(b, NodeId(10)).unwrap());
        assert_eq!(st.count(b), 0);
    }

    #[test]
    fn complex_marker_carries_value_and_origin() {
        let mut st = MarkerState::new(20, 2, 2);
        let m = Marker::complex(0);
        st.set_value(
            m,
            NodeId(5),
            MarkerValue {
                value: 3.5,
                origin: NodeId(1),
            },
        )
        .unwrap();
        let v = st.value(m, NodeId(5)).unwrap();
        assert_eq!(v.value, 3.5);
        assert_eq!(v.origin, NodeId(1));
        // Inactive node has no payload even though the row is allocated.
        assert!(st.value(m, NodeId(6)).is_none());
    }

    #[test]
    fn binary_marker_rejects_value_write() {
        let mut st = MarkerState::new(20, 2, 2);
        let err = st
            .set_value(Marker::binary(0), NodeId(1), MarkerValue::default())
            .unwrap_err();
        assert!(matches!(err, KbError::MarkerOutOfRange { .. }));
        assert!(st.value(Marker::binary(0), NodeId(1)).is_none());
    }

    #[test]
    fn out_of_range_register_is_rejected() {
        let mut st = MarkerState::new(20, 2, 2);
        let err = st.set(Marker::complex(2), NodeId(0)).unwrap_err();
        assert_eq!(
            err,
            KbError::MarkerOutOfRange {
                index: 2,
                capacity: 2
            }
        );
    }

    #[test]
    fn grow_preserves_bits_and_values() {
        let mut st = MarkerState::new(10, 2, 2);
        let m = Marker::complex(1);
        st.set_value(
            m,
            NodeId(9),
            MarkerValue {
                value: 7.0,
                origin: NodeId(2),
            },
        )
        .unwrap();
        st.set(Marker::binary(0), NodeId(3)).unwrap();
        st.grow(100);
        assert_eq!(st.nodes(), 100);
        assert!(st.test(m, NodeId(9)));
        assert_eq!(st.value(m, NodeId(9)).unwrap().value, 7.0);
        assert!(st.test(Marker::binary(0), NodeId(3)));
        st.set(Marker::binary(0), NodeId(99)).unwrap();
        assert_eq!(st.count(Marker::binary(0)), 2);
    }

    #[test]
    fn clear_marker_reports_words_touched() {
        let mut st = MarkerState::new(64, 2, 2);
        let b = Marker::binary(1);
        st.set(b, NodeId(0)).unwrap();
        let words = st.clear_marker(b).unwrap();
        assert_eq!(words, 2); // 64 nodes / 32-bit words
        assert_eq!(st.count(b), 0);
    }

    #[test]
    fn reset_matches_fresh_state() {
        let mut st = MarkerState::new(30, 2, 2);
        let m = Marker::complex(0);
        let b = Marker::binary(1);
        st.set_value(
            m,
            NodeId(4),
            MarkerValue {
                value: 2.5,
                origin: NodeId(1),
            },
        )
        .unwrap();
        st.set(b, NodeId(7)).unwrap();
        st.reset();
        assert_eq!(st.count(m), 0);
        assert_eq!(st.count(b), 0);
        // Stale payloads are unobservable: the status bit gates value().
        assert!(st.value(m, NodeId(4)).is_none());
        // The storage is fully reusable after reset.
        st.set_value(
            m,
            NodeId(4),
            MarkerValue {
                value: 9.0,
                origin: NodeId(3),
            },
        )
        .unwrap();
        assert_eq!(st.value(m, NodeId(4)).unwrap().value, 9.0);
    }

    #[test]
    fn merge_values_matches_per_node_writes() {
        let mut bulk = MarkerState::new(20, 2, 2);
        let mut scalar = MarkerState::new(20, 2, 2);
        let m = Marker::complex(1);
        let items = [
            (
                NodeId(3),
                MarkerValue {
                    value: 1.5,
                    origin: NodeId(7),
                },
            ),
            (
                NodeId(9),
                MarkerValue {
                    value: 0.5,
                    origin: NodeId(3),
                },
            ),
            (
                NodeId(3),
                MarkerValue {
                    value: 0.25,
                    origin: NodeId(1),
                },
            ),
        ];
        bulk.merge_values(m, items.iter().copied()).unwrap();
        for (n, v) in items {
            scalar.set_value(m, n, v).unwrap();
        }
        assert_eq!(bulk.count(m), scalar.count(m));
        for n in 0..20u32 {
            assert_eq!(bulk.value(m, NodeId(n)), scalar.value(m, NodeId(n)));
        }
        // Same per-item errors as the scalar path.
        let err = bulk
            .merge_values(m, std::iter::once((NodeId(99), MarkerValue::default())))
            .unwrap_err();
        assert_eq!(err, KbError::UnknownNode(NodeId(99)));
        assert!(matches!(
            bulk.merge_values(Marker::binary(0), std::iter::empty())
                .unwrap_err(),
            KbError::MarkerOutOfRange { .. }
        ));
    }

    #[test]
    fn merge_bits_matches_per_node_writes() {
        let mut st = MarkerState::new(40, 1, 2);
        let b = Marker::binary(1);
        st.merge_bits(b, [NodeId(5), NodeId(1), NodeId(5)].into_iter())
            .unwrap();
        assert_eq!(st.active_nodes(b), vec![NodeId(1), NodeId(5)]);
        assert!(matches!(
            st.merge_bits(Marker::binary(2), std::iter::empty())
                .unwrap_err(),
            KbError::MarkerOutOfRange { .. }
        ));
    }

    #[test]
    fn active_nodes_sorted() {
        let mut st = MarkerState::new(40, 1, 1);
        for &i in &[33u32, 2, 17] {
            st.set(Marker::binary(0), NodeId(i)).unwrap();
        }
        assert_eq!(
            st.active_nodes(Marker::binary(0)),
            vec![NodeId(2), NodeId(17), NodeId(33)]
        );
        assert!(st
            .active_nodes_iter(Marker::binary(0))
            .eq(st.active_nodes(Marker::binary(0))));
        // Untouched rows iterate as empty without allocating.
        assert_eq!(st.active_nodes_iter(Marker::complex(0)).count(), 0);
    }
}
