//! The semantic network: nodes, colors, names, and the relation table.
//!
//! A semantic network is the static infrastructure of a SNAP knowledge
//! base: nodes represent concepts, links show relationships, and every
//! node carries a *color* naming the type of concept it belongs to.
//! Dynamic state (markers) lives in [`crate::MarkerState`], owned by the
//! execution engines, so that one network can be loaded into several
//! machines.

use crate::error::KbError;
use crate::ids::{Color, NodeId, RelationType};
use crate::links::{Link, RelationTable};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Sizing parameters of a knowledge base, defaulting to the SNAP-1
/// prototype design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Maximum number of semantic-network nodes (`N`, 32K in SNAP-1).
    pub node_capacity: usize,
    /// Complex markers per node (`M_C`, 64 in SNAP-1).
    pub complex_markers: usize,
    /// Binary markers per node (`M_B`, 64 in SNAP-1).
    pub binary_markers: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            node_capacity: 32 * 1024,
            complex_markers: 64,
            binary_markers: 64,
        }
    }
}

/// A mutable semantic network.
///
/// Nodes are created with [`SemanticNetwork::add_node`] (optionally named)
/// and connected with [`SemanticNetwork::add_link`]. The network supports
/// the runtime node-maintenance instructions (`CREATE`, `DELETE`,
/// `SET-COLOR`), so it stays mutable after initial construction.
///
/// # Examples
///
/// ```
/// use snap_kb::{Color, NetworkConfig, RelationType, SemanticNetwork};
///
/// let mut net = SemanticNetwork::new(NetworkConfig::default());
/// let isa = RelationType(0);
/// let we = net.add_named_node("we", Color(1))?;
/// let animate = net.add_named_node("animate", Color(2))?;
/// net.add_link(we, isa, 0.0, animate)?;
/// assert_eq!(net.node_count(), 2);
/// assert_eq!(net.lookup("animate"), Some(animate));
/// # Ok::<(), snap_kb::KbError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SemanticNetwork {
    config: NetworkConfig,
    colors: Vec<Color>,
    /// Node names share one allocation with the `name_index` keys.
    names: Vec<Option<Arc<str>>>,
    name_index: HashMap<Arc<str>, NodeId>,
    relations: RelationTable,
}

impl SemanticNetwork {
    /// Creates an empty network with the given configuration.
    pub fn new(config: NetworkConfig) -> Self {
        SemanticNetwork {
            config,
            colors: Vec::new(),
            names: Vec::new(),
            name_index: HashMap::new(),
            relations: RelationTable::new(),
        }
    }

    /// The sizing configuration this network was created with.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Number of nodes currently defined.
    pub fn node_count(&self) -> usize {
        self.colors.len()
    }

    /// Total number of links currently defined.
    pub fn link_count(&self) -> usize {
        self.relations.link_count()
    }

    /// Adds an anonymous node with the given color.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::NodeCapacityExceeded`] if the configured node
    /// capacity is full.
    pub fn add_node(&mut self, color: Color) -> Result<NodeId, KbError> {
        if self.colors.len() >= self.config.node_capacity {
            return Err(KbError::NodeCapacityExceeded {
                capacity: self.config.node_capacity,
            });
        }
        let id = NodeId(self.colors.len() as u32);
        self.colors.push(color);
        self.names.push(None);
        self.relations.ensure_node(id);
        Ok(id)
    }

    /// Adds a named node; names must be unique within the network.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::DuplicateName`] for a reused name and
    /// [`KbError::NodeCapacityExceeded`] when full.
    pub fn add_named_node(
        &mut self,
        name: impl Into<String>,
        color: Color,
    ) -> Result<NodeId, KbError> {
        let name = name.into();
        if self.name_index.contains_key(name.as_str()) {
            return Err(KbError::DuplicateName(name));
        }
        let id = self.add_node(color)?;
        let name: Arc<str> = name.into();
        self.names[id.index()] = Some(Arc::clone(&name));
        self.name_index.insert(name, id);
        Ok(id)
    }

    /// Looks up a node by name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// The name of `node`, if it has one.
    pub fn name(&self, node: NodeId) -> Option<&str> {
        self.names.get(node.index()).and_then(|n| n.as_deref())
    }

    /// The color of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::UnknownNode`] if the node does not exist.
    pub fn color(&self, node: NodeId) -> Result<Color, KbError> {
        self.colors
            .get(node.index())
            .copied()
            .ok_or(KbError::UnknownNode(node))
    }

    /// Re-colors `node` (the `SET-COLOR` node-maintenance instruction).
    ///
    /// # Errors
    ///
    /// Returns [`KbError::UnknownNode`] if the node does not exist.
    pub fn set_color(&mut self, node: NodeId, color: Color) -> Result<(), KbError> {
        let slot = self
            .colors
            .get_mut(node.index())
            .ok_or(KbError::UnknownNode(node))?;
        *slot = color;
        Ok(())
    }

    /// Returns `true` if `node` exists.
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.colors.len()
    }

    /// Adds a weighted, typed link (the `CREATE` instruction body).
    ///
    /// # Errors
    ///
    /// Returns [`KbError::UnknownNode`] for missing endpoints and
    /// [`KbError::ReservedRelation`] for the internal subnode relation.
    pub fn add_link(
        &mut self,
        source: NodeId,
        relation: RelationType,
        weight: f32,
        destination: NodeId,
    ) -> Result<(), KbError> {
        if !self.contains(source) {
            return Err(KbError::UnknownNode(source));
        }
        if !self.contains(destination) {
            return Err(KbError::UnknownNode(destination));
        }
        self.relations
            .add_link(source, relation, weight, destination)
    }

    /// Removes a link (the `DELETE` instruction body).
    ///
    /// # Errors
    ///
    /// Returns [`KbError::LinkNotFound`] if no matching link exists.
    pub fn remove_link(
        &mut self,
        source: NodeId,
        relation: RelationType,
        destination: NodeId,
    ) -> Result<(), KbError> {
        self.relations.remove_link(source, relation, destination)
    }

    /// All outgoing links of `node`.
    pub fn links(&self, node: NodeId) -> impl Iterator<Item = &Link> {
        self.relations.links(node)
    }

    /// Outgoing links of `node` with relation type `relation`.
    pub fn links_by(&self, node: NodeId, relation: RelationType) -> impl Iterator<Item = &Link> {
        self.relations.links_by(node, relation)
    }

    /// The contiguous relation-table run of `node`'s links with relation
    /// type `relation`, with the parallel insertion-rank slice — the
    /// propagation hot-path lookup. Excludes staged links; call
    /// [`SemanticNetwork::flush_links`] first.
    pub fn ranked_links_by(&self, node: NodeId, relation: RelationType) -> (&[Link], &[u32]) {
        self.relations.ranked_run(node, relation)
    }

    /// Fused form of [`SemanticNetwork::segments`],
    /// [`SemanticNetwork::fanout`], and
    /// [`SemanticNetwork::ranked_links_by`]: one row lookup yields the
    /// propagation cost units and the ranked relation run. The wave
    /// kernel's per-task hot path.
    pub fn ranked_links_with_cost(
        &self,
        node: NodeId,
        relation: RelationType,
    ) -> (usize, usize, &[Link], &[u32]) {
        self.relations.ranked_run_with_cost(node, relation)
    }

    /// Merges staged link additions into the contiguous relation table so
    /// the hot-path slice lookups see every link. Engines call this once
    /// before propagation and after each maintenance instruction.
    pub fn flush_links(&mut self) {
        self.relations.flush();
    }

    /// Number of link additions still staged (invisible to the hot-path
    /// slice lookups until flushed).
    pub fn staged_link_count(&self) -> usize {
        self.relations.staged_links()
    }

    /// Relation-table segments backing `node` (1 + overflow subnodes);
    /// used by cost models.
    pub fn segments(&self, node: NodeId) -> usize {
        self.relations.segments(node)
    }

    /// Outgoing fanout of `node`.
    pub fn fanout(&self, node: NodeId) -> usize {
        self.relations.fanout(node)
    }

    /// Builds the reverse (incoming-link) CSR view of the relation table,
    /// used by pull-direction propagation kernels. Requires a flushed
    /// table — call [`SemanticNetwork::flush_links`] first.
    ///
    /// # Panics
    ///
    /// Panics if link additions are still staged.
    pub fn build_reverse(&self) -> crate::ReverseTable {
        self.relations.build_reverse()
    }

    /// Iterates all node IDs.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.colors.len() as u32).map(NodeId)
    }

    /// Nodes with the given color (a distributed search in hardware).
    pub fn nodes_with_color(&self, color: Color) -> impl Iterator<Item = NodeId> + '_ {
        self.colors
            .iter()
            .enumerate()
            .filter(move |(_, &c)| c == color)
            .map(|(i, _)| NodeId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SemanticNetwork {
        SemanticNetwork::new(NetworkConfig {
            node_capacity: 8,
            complex_markers: 4,
            binary_markers: 4,
        })
    }

    #[test]
    fn add_nodes_until_capacity() {
        let mut net = small();
        for _ in 0..8 {
            net.add_node(Color(0)).unwrap();
        }
        let err = net.add_node(Color(0)).unwrap_err();
        assert_eq!(err, KbError::NodeCapacityExceeded { capacity: 8 });
    }

    #[test]
    fn named_nodes_resolve_and_reject_duplicates() {
        let mut net = small();
        let a = net.add_named_node("seeing-event", Color(3)).unwrap();
        assert_eq!(net.lookup("seeing-event"), Some(a));
        assert_eq!(net.name(a), Some("seeing-event"));
        let err = net.add_named_node("seeing-event", Color(3)).unwrap_err();
        assert_eq!(err, KbError::DuplicateName("seeing-event".into()));
    }

    #[test]
    fn link_endpoints_validated() {
        let mut net = small();
        let a = net.add_node(Color(0)).unwrap();
        let err = net
            .add_link(a, RelationType(1), 0.0, NodeId(99))
            .unwrap_err();
        assert_eq!(err, KbError::UnknownNode(NodeId(99)));
        let err = net
            .add_link(NodeId(99), RelationType(1), 0.0, a)
            .unwrap_err();
        assert_eq!(err, KbError::UnknownNode(NodeId(99)));
    }

    #[test]
    fn set_color_and_color_search() {
        let mut net = small();
        let a = net.add_node(Color(1)).unwrap();
        let b = net.add_node(Color(2)).unwrap();
        let c = net.add_node(Color(1)).unwrap();
        assert_eq!(
            net.nodes_with_color(Color(1)).collect::<Vec<_>>(),
            vec![a, c]
        );
        net.set_color(b, Color(1)).unwrap();
        assert_eq!(net.nodes_with_color(Color(1)).count(), 3);
        assert_eq!(net.color(b).unwrap(), Color(1));
    }

    #[test]
    fn link_lifecycle() {
        let mut net = small();
        let a = net.add_node(Color(0)).unwrap();
        let b = net.add_node(Color(0)).unwrap();
        net.add_link(a, RelationType(5), 1.5, b).unwrap();
        assert_eq!(net.link_count(), 1);
        assert_eq!(net.links_by(a, RelationType(5)).count(), 1);
        net.remove_link(a, RelationType(5), b).unwrap();
        assert_eq!(net.link_count(), 0);
    }
}
