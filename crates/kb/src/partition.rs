//! Knowledge-base partitioning across clusters.
//!
//! The semantic network is stored as a distributed knowledge base: a
//! partitioning function divides it into regions and each region is
//! allocated to one cluster, which processes all of its concepts,
//! relations, and markers. SNAP-1's mapping function is variable, with up
//! to 1024 nodes per cluster, using **sequential**, **round-robin**, or
//! **semantically-based** allocation.

use crate::ids::{ClusterId, NodeId};
use crate::network::SemanticNetwork;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Nodes-per-cluster granularity of the SNAP-1 prototype.
pub const MAX_NODES_PER_CLUSTER: usize = 1024;

/// Which partitioning function to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PartitionScheme {
    /// Contiguous blocks of node IDs per cluster.
    #[default]
    Sequential,
    /// Node `i` goes to cluster `i mod p`.
    RoundRobin,
    /// Breadth-first traversal fills clusters with connected regions, so
    /// semantically-related concepts land together and propagation stays
    /// mostly intra-cluster.
    Semantic,
}

/// A mapping from nodes to clusters plus its inverse.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    scheme: PartitionScheme,
    cluster_of: Vec<ClusterId>,
    members: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Partitions `network` over `clusters` clusters with the given scheme.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn build(network: &SemanticNetwork, clusters: usize, scheme: PartitionScheme) -> Self {
        assert!(clusters > 0, "at least one cluster is required");
        let n = network.node_count();
        let mut cluster_of = vec![ClusterId(0); n];
        match scheme {
            PartitionScheme::Sequential => {
                let per = n.div_ceil(clusters).max(1);
                for (i, slot) in cluster_of.iter_mut().enumerate() {
                    *slot = ClusterId(((i / per).min(clusters - 1)) as u8);
                }
            }
            PartitionScheme::RoundRobin => {
                for (i, slot) in cluster_of.iter_mut().enumerate() {
                    *slot = ClusterId((i % clusters) as u8);
                }
            }
            PartitionScheme::Semantic => {
                let per = n.div_ceil(clusters).max(1);
                let mut assigned = vec![false; n];
                let mut order = Vec::with_capacity(n);
                // BFS from each unvisited node so disconnected components
                // still get laid out contiguously.
                for start in 0..n {
                    if assigned[start] {
                        continue;
                    }
                    let mut queue = VecDeque::new();
                    queue.push_back(NodeId(start as u32));
                    assigned[start] = true;
                    while let Some(node) = queue.pop_front() {
                        order.push(node);
                        for link in network.links(node) {
                            let d = link.destination.index();
                            if !assigned[d] {
                                assigned[d] = true;
                                queue.push_back(link.destination);
                            }
                        }
                    }
                }
                for (pos, node) in order.into_iter().enumerate() {
                    cluster_of[node.index()] = ClusterId(((pos / per).min(clusters - 1)) as u8);
                }
            }
        }
        let mut members = vec![Vec::new(); clusters];
        for (i, c) in cluster_of.iter().enumerate() {
            members[c.index()].push(NodeId(i as u32));
        }
        Partition {
            scheme,
            cluster_of,
            members,
        }
    }

    /// The scheme used to build this partition.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Number of clusters in the partition.
    pub fn cluster_count(&self) -> usize {
        self.members.len()
    }

    /// Cluster owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node is not covered by the partition. Newly created
    /// runtime nodes must be registered with [`Partition::assign_new_node`].
    pub fn cluster_of(&self, node: NodeId) -> ClusterId {
        self.cluster_of[node.index()]
    }

    /// Nodes owned by `cluster`, ascending.
    pub fn members(&self, cluster: ClusterId) -> &[NodeId] {
        &self.members[cluster.index()]
    }

    /// Registers a node created at runtime (`CREATE` / `MARKER-CREATE`),
    /// assigning it to the least-loaded cluster.
    pub fn assign_new_node(&mut self, node: NodeId) -> ClusterId {
        assert_eq!(
            node.index(),
            self.cluster_of.len(),
            "runtime nodes must be registered in creation order"
        );
        let (best, _) = self
            .members
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.len())
            .expect("partition has at least one cluster");
        let c = ClusterId(best as u8);
        self.cluster_of.push(c);
        self.members[best].push(node);
        c
    }

    /// The heaviest cluster's node count (checked against the 1024-node
    /// granularity of the prototype by callers that model capacity).
    pub fn max_cluster_load(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Fraction of links whose endpoints live in different clusters —
    /// lower is better for a partitioning function.
    pub fn cut_fraction(&self, network: &SemanticNetwork) -> f64 {
        let mut total = 0usize;
        let mut cut = 0usize;
        for node in network.nodes() {
            for link in network.links(node) {
                total += 1;
                if self.cluster_of(node) != self.cluster_of(link.destination) {
                    cut += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            cut as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Color, RelationType};
    use crate::network::NetworkConfig;
    use proptest::prelude::*;

    fn line_network(n: usize) -> SemanticNetwork {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let mut prev = None;
        for _ in 0..n {
            let id = net.add_node(Color(0)).unwrap();
            if let Some(p) = prev {
                net.add_link(p, RelationType(0), 0.0, id).unwrap();
            }
            prev = Some(id);
        }
        net
    }

    #[test]
    fn sequential_partition_is_contiguous() {
        let net = line_network(10);
        let p = Partition::build(&net, 3, PartitionScheme::Sequential);
        assert_eq!(p.cluster_count(), 3);
        assert_eq!(p.cluster_of(NodeId(0)), ClusterId(0));
        assert_eq!(p.cluster_of(NodeId(9)), ClusterId(2));
        // Cluster assignment is monotone in node ID.
        let mut last = 0;
        for i in 0..10u32 {
            let c = p.cluster_of(NodeId(i)).index();
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn round_robin_distributes_evenly() {
        let net = line_network(12);
        let p = Partition::build(&net, 4, PartitionScheme::RoundRobin);
        for c in 0..4 {
            assert_eq!(p.members(ClusterId(c)).len(), 3);
        }
        assert_eq!(p.cluster_of(NodeId(5)), ClusterId(1));
    }

    #[test]
    fn semantic_beats_round_robin_on_cut_fraction() {
        // A line graph: semantic (BFS) packing keeps neighbours together;
        // round-robin cuts every link.
        let net = line_network(64);
        let semantic = Partition::build(&net, 4, PartitionScheme::Semantic);
        let rr = Partition::build(&net, 4, PartitionScheme::RoundRobin);
        assert!(semantic.cut_fraction(&net) < rr.cut_fraction(&net));
        assert!(rr.cut_fraction(&net) > 0.9);
    }

    #[test]
    fn assign_new_node_balances_load() {
        let net = line_network(4);
        let mut p = Partition::build(&net, 4, PartitionScheme::RoundRobin);
        let c = p.assign_new_node(NodeId(4));
        assert_eq!(p.cluster_of(NodeId(4)), c);
        assert_eq!(p.max_cluster_load(), 2);
    }

    proptest! {
        #[test]
        fn prop_every_node_assigned_exactly_once(
            n in 1usize..200,
            clusters in 1usize..32,
            scheme_pick in 0u8..3,
        ) {
            let scheme = match scheme_pick {
                0 => PartitionScheme::Sequential,
                1 => PartitionScheme::RoundRobin,
                _ => PartitionScheme::Semantic,
            };
            let net = line_network(n);
            let p = Partition::build(&net, clusters, scheme);
            // Inverse mapping is consistent and total.
            let mut seen = vec![false; n];
            for c in 0..clusters {
                for &node in p.members(ClusterId(c as u8)) {
                    prop_assert!(!seen[node.index()]);
                    seen[node.index()] = true;
                    prop_assert_eq!(p.cluster_of(node), ClusterId(c as u8));
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
            // No cluster exceeds the ceiling-balanced load.
            prop_assert!(p.max_cluster_load() <= n.div_ceil(clusters).max(1));
        }
    }
}
