//! Knowledge-base partitioning across clusters.
//!
//! The semantic network is stored as a distributed knowledge base: a
//! partitioning function divides it into regions and each region is
//! allocated to one cluster, which processes all of its concepts,
//! relations, and markers. SNAP-1's mapping function is variable, with up
//! to 1024 nodes per cluster, using **sequential**, **round-robin**, or
//! **semantically-based** allocation.

use crate::ids::{ClusterId, NodeId};
use crate::network::SemanticNetwork;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, VecDeque};

/// Nodes-per-cluster granularity of the SNAP-1 prototype.
pub const MAX_NODES_PER_CLUSTER: usize = 1024;

/// Most clusters a partition can address: [`ClusterId`] is a byte, so
/// requests beyond this saturate (see [`Partition::build`]).
pub const MAX_CLUSTERS: usize = 256;

/// Which partitioning function to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PartitionScheme {
    /// Contiguous blocks of node IDs per cluster.
    #[default]
    Sequential,
    /// Node `i` goes to cluster `i mod p`.
    RoundRobin,
    /// Breadth-first traversal fills clusters with connected regions, so
    /// semantically-related concepts land together and propagation stays
    /// mostly intra-cluster.
    Semantic,
    /// Locality-aware greedy growth: each cluster grows from a seed by
    /// repeatedly absorbing the frontier node with the most links into
    /// the cluster so far (ties to the smaller node ID), stopping at the
    /// ceiling-balanced load bound. Minimizes cross-cluster links much
    /// more aggressively than the BFS-order `Semantic` fill while
    /// keeping the same balance guarantee.
    EdgeCut,
}

/// A mapping from nodes to clusters plus its inverse.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    scheme: PartitionScheme,
    cluster_of: Vec<ClusterId>,
    members: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Partitions `network` over `clusters` clusters with the given scheme.
    ///
    /// `clusters` saturates at [`MAX_CLUSTERS`]: [`ClusterId`] is a byte, so
    /// a larger request is clamped to 256 clusters instead of silently
    /// wrapping the mapping.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn build(network: &SemanticNetwork, clusters: usize, scheme: PartitionScheme) -> Self {
        assert!(clusters > 0, "at least one cluster is required");
        let clusters = clusters.min(MAX_CLUSTERS);
        let n = network.node_count();
        let mut cluster_of = vec![ClusterId(0); n];
        match scheme {
            PartitionScheme::Sequential => {
                let per = n.div_ceil(clusters).max(1);
                for (i, slot) in cluster_of.iter_mut().enumerate() {
                    *slot = ClusterId(((i / per).min(clusters - 1)) as u8);
                }
            }
            PartitionScheme::RoundRobin => {
                for (i, slot) in cluster_of.iter_mut().enumerate() {
                    *slot = ClusterId((i % clusters) as u8);
                }
            }
            PartitionScheme::Semantic => {
                let per = n.div_ceil(clusters).max(1);
                let mut assigned = vec![false; n];
                let mut order = Vec::with_capacity(n);
                // BFS from each unvisited node so disconnected components
                // still get laid out contiguously.
                for start in 0..n {
                    if assigned[start] {
                        continue;
                    }
                    let mut queue = VecDeque::new();
                    queue.push_back(NodeId(start as u32));
                    assigned[start] = true;
                    while let Some(node) = queue.pop_front() {
                        order.push(node);
                        for link in network.links(node) {
                            let d = link.destination.index();
                            if !assigned[d] {
                                assigned[d] = true;
                                queue.push_back(link.destination);
                            }
                        }
                    }
                }
                for (pos, node) in order.into_iter().enumerate() {
                    cluster_of[node.index()] = ClusterId(((pos / per).min(clusters - 1)) as u8);
                }
            }
            PartitionScheme::EdgeCut => {
                let per = n.div_ceil(clusters).max(1);
                // Undirected adjacency: a cut link costs the same in either
                // direction, so growth should see both.
                let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
                for node in network.nodes() {
                    for link in network.links(node) {
                        let (s, d) = (node.index(), link.destination.index());
                        if s != d {
                            adjacency[s].push(d as u32);
                            adjacency[d].push(s as u32);
                        }
                    }
                }
                let mut assigned = vec![false; n];
                // gain[v] = links from v into the cluster currently growing.
                let mut gain = vec![0u32; n];
                let mut touched: Vec<u32> = Vec::new();
                // Max-heap on (gain, Reverse(node)): highest gain first,
                // smallest node ID on ties. Stale entries are skipped by
                // re-checking the gain on pop.
                let mut heap: BinaryHeap<(u32, std::cmp::Reverse<u32>)> = BinaryHeap::new();
                let mut next_seed = 0usize;
                let mut remaining = n;
                for c in 0..clusters {
                    if remaining == 0 {
                        break;
                    }
                    heap.clear();
                    for &w in &touched {
                        gain[w as usize] = 0;
                    }
                    touched.clear();
                    let mut size = 0usize;
                    while size < per && remaining > 0 {
                        let pick = loop {
                            match heap.pop() {
                                Some((g, std::cmp::Reverse(v))) => {
                                    let v = v as usize;
                                    if assigned[v] || gain[v] != g {
                                        continue;
                                    }
                                    break Some(v);
                                }
                                None => break None,
                            }
                        };
                        let v = pick.unwrap_or_else(|| {
                            while assigned[next_seed] {
                                next_seed += 1;
                            }
                            next_seed
                        });
                        assigned[v] = true;
                        cluster_of[v] = ClusterId(c as u8);
                        size += 1;
                        remaining -= 1;
                        for &w in &adjacency[v] {
                            let w = w as usize;
                            if !assigned[w] {
                                if gain[w] == 0 {
                                    touched.push(w as u32);
                                }
                                gain[w] += 1;
                                heap.push((gain[w], std::cmp::Reverse(w as u32)));
                            }
                        }
                    }
                }
            }
        }
        let mut members = vec![Vec::new(); clusters];
        for (i, c) in cluster_of.iter().enumerate() {
            members[c.index()].push(NodeId(i as u32));
        }
        Partition {
            scheme,
            cluster_of,
            members,
        }
    }

    /// The scheme used to build this partition.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Number of clusters in the partition.
    pub fn cluster_count(&self) -> usize {
        self.members.len()
    }

    /// Cluster owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node is not covered by the partition. Newly created
    /// runtime nodes must be registered with [`Partition::assign_new_node`].
    pub fn cluster_of(&self, node: NodeId) -> ClusterId {
        self.cluster_of[node.index()]
    }

    /// Nodes owned by `cluster`, ascending.
    pub fn members(&self, cluster: ClusterId) -> &[NodeId] {
        &self.members[cluster.index()]
    }

    /// Registers a node created at runtime (`CREATE` / `MARKER-CREATE`),
    /// assigning it to the least-loaded cluster.
    pub fn assign_new_node(&mut self, node: NodeId) -> ClusterId {
        assert_eq!(
            node.index(),
            self.cluster_of.len(),
            "runtime nodes must be registered in creation order"
        );
        let (best, _) = self
            .members
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.len())
            .expect("partition has at least one cluster");
        let c = ClusterId(best as u8);
        self.cluster_of.push(c);
        self.members[best].push(node);
        c
    }

    /// The heaviest cluster's node count (checked against the 1024-node
    /// granularity of the prototype by callers that model capacity).
    pub fn max_cluster_load(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Fraction of links whose endpoints live in different clusters —
    /// lower is better for a partitioning function.
    pub fn cut_fraction(&self, network: &SemanticNetwork) -> f64 {
        let mut total = 0usize;
        let mut cut = 0usize;
        for node in network.nodes() {
            for link in network.links(node) {
                total += 1;
                if self.cluster_of(node) != self.cluster_of(link.destination) {
                    cut += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            cut as f64 / total as f64
        }
    }

    /// Full locality/balance report for this partition over `network`.
    pub fn stats(&self, network: &SemanticNetwork) -> PartitionStats {
        let clusters = self.cluster_count();
        let mut per_cluster: Vec<ClusterLinks> = (0..clusters)
            .map(|c| ClusterLinks {
                nodes: self.members[c].len(),
                internal: 0,
                external: 0,
            })
            .collect();
        let mut total = 0u64;
        let mut cut = 0u64;
        for node in network.nodes() {
            let home = self.cluster_of(node);
            for link in network.links(node) {
                total += 1;
                if self.cluster_of(link.destination) == home {
                    per_cluster[home.index()].internal += 1;
                } else {
                    cut += 1;
                    per_cluster[home.index()].external += 1;
                }
            }
        }
        let n: usize = per_cluster.iter().map(|c| c.nodes).sum();
        let max_load = self.max_cluster_load();
        let mean_load = n as f64 / clusters as f64;
        PartitionStats {
            scheme: self.scheme,
            clusters,
            nodes: n,
            total_links: total,
            cut_links: cut,
            cut_fraction: if total == 0 {
                0.0
            } else {
                cut as f64 / total as f64
            },
            max_load,
            load_balance: if n == 0 {
                0.0
            } else {
                max_load as f64 / mean_load
            },
            per_cluster,
        }
    }
}

/// Link traffic owned by one cluster: links whose source node lives there,
/// split by whether the destination is local too.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterLinks {
    /// Nodes assigned to the cluster.
    pub nodes: usize,
    /// Links staying inside the cluster.
    pub internal: u64,
    /// Links crossing to another cluster.
    pub external: u64,
}

/// Locality and balance report for a [`Partition`], cheap to compute and
/// serializable into run reports and bench JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Scheme that produced the partition.
    pub scheme: PartitionScheme,
    /// Number of clusters (possibly with empty trailing clusters).
    pub clusters: usize,
    /// Total nodes partitioned.
    pub nodes: usize,
    /// Directed links in the network.
    pub total_links: u64,
    /// Links whose endpoints live in different clusters.
    pub cut_links: u64,
    /// `cut_links / total_links` — lower is better.
    pub cut_fraction: f64,
    /// Heaviest cluster's node count.
    pub max_load: usize,
    /// `max_load / mean_load`; 1.0 is perfectly balanced, higher is worse.
    pub load_balance: f64,
    /// Per-cluster node and link breakdown.
    pub per_cluster: Vec<ClusterLinks>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Color, RelationType};
    use crate::network::NetworkConfig;
    use crate::synth::{
        bridge_network, chorded_network, line_network, scale_free_network, star_network,
    };
    use proptest::prelude::*;

    #[test]
    fn sequential_partition_is_contiguous() {
        let net = line_network(10);
        let p = Partition::build(&net, 3, PartitionScheme::Sequential);
        assert_eq!(p.cluster_count(), 3);
        assert_eq!(p.cluster_of(NodeId(0)), ClusterId(0));
        assert_eq!(p.cluster_of(NodeId(9)), ClusterId(2));
        // Cluster assignment is monotone in node ID.
        let mut last = 0;
        for i in 0..10u32 {
            let c = p.cluster_of(NodeId(i)).index();
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn round_robin_distributes_evenly() {
        let net = line_network(12);
        let p = Partition::build(&net, 4, PartitionScheme::RoundRobin);
        for c in 0..4 {
            assert_eq!(p.members(ClusterId(c)).len(), 3);
        }
        assert_eq!(p.cluster_of(NodeId(5)), ClusterId(1));
    }

    #[test]
    fn semantic_beats_round_robin_on_cut_fraction() {
        // A line graph: semantic (BFS) packing keeps neighbours together;
        // round-robin cuts every link.
        let net = line_network(64);
        let semantic = Partition::build(&net, 4, PartitionScheme::Semantic);
        let rr = Partition::build(&net, 4, PartitionScheme::RoundRobin);
        assert!(semantic.cut_fraction(&net) < rr.cut_fraction(&net));
        assert!(rr.cut_fraction(&net) > 0.9);
    }

    #[test]
    fn assign_new_node_balances_load() {
        let net = line_network(4);
        let mut p = Partition::build(&net, 4, PartitionScheme::RoundRobin);
        let c = p.assign_new_node(NodeId(4));
        assert_eq!(p.cluster_of(NodeId(4)), c);
        assert_eq!(p.max_cluster_load(), 2);
    }

    #[test]
    fn cluster_count_saturates_at_byte_range() {
        // Regression: `clusters > 256` used to wrap `as u8` and corrupt the
        // inverse mapping. The cap clamps instead.
        let net = line_network(600);
        for scheme in [
            PartitionScheme::Sequential,
            PartitionScheme::RoundRobin,
            PartitionScheme::Semantic,
            PartitionScheme::EdgeCut,
        ] {
            let p = Partition::build(&net, 300, scheme);
            assert_eq!(p.cluster_count(), MAX_CLUSTERS, "{scheme:?}");
            let mut seen = vec![false; 600];
            for c in 0..MAX_CLUSTERS {
                for &node in p.members(ClusterId(c as u8)) {
                    assert!(!seen[node.index()], "{scheme:?}: duplicate assignment");
                    seen[node.index()] = true;
                    assert_eq!(p.cluster_of(node), ClusterId(c as u8), "{scheme:?}");
                }
            }
            assert!(seen.into_iter().all(|s| s), "{scheme:?}: node unassigned");
        }
    }

    #[test]
    fn edge_cut_keeps_line_segments_contiguous() {
        let net = line_network(64);
        let p = Partition::build(&net, 4, PartitionScheme::EdgeCut);
        // Greedy growth on a line yields 4 contiguous segments: exactly 3 of
        // 63 links are cut.
        let stats = p.stats(&net);
        assert_eq!(stats.cut_links, 3);
        assert_eq!(stats.max_load, 16);
        assert!((stats.load_balance - 1.0).abs() < 1e-9);
        assert_eq!(stats.per_cluster.len(), 4);
        let internal: u64 = stats.per_cluster.iter().map(|c| c.internal).sum();
        let external: u64 = stats.per_cluster.iter().map(|c| c.external).sum();
        assert_eq!(internal + external, stats.total_links);
        assert_eq!(external, stats.cut_links);
    }

    #[test]
    fn edge_cut_beats_semantic_on_interleaved_chains() {
        // Chains laid out interleaved (node = level*alpha + chain, like the
        // fig16 alpha workload): BFS order visits whole chains one at a time
        // too, so Semantic ties here — but on a grid-ish graph with chords
        // EdgeCut's gain-directed growth wins. Build chains plus rung links
        // between adjacent chains at each level.
        let alpha = 8usize;
        let depth = 16usize;
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let mut ids = Vec::new();
        for _ in 0..alpha * depth {
            ids.push(net.add_node(Color(0)).unwrap());
        }
        let at = |level: usize, chain: usize| ids[level * alpha + chain];
        for chain in 0..alpha {
            for level in 0..depth - 1 {
                net.add_link(at(level, chain), RelationType(0), 0.0, at(level + 1, chain))
                    .unwrap();
            }
        }
        for level in 0..depth {
            for chain in 0..alpha - 1 {
                net.add_link(at(level, chain), RelationType(1), 0.0, at(level, chain + 1))
                    .unwrap();
            }
        }
        let edge_cut = Partition::build(&net, 4, PartitionScheme::EdgeCut);
        let semantic = Partition::build(&net, 4, PartitionScheme::Semantic);
        let rr = Partition::build(&net, 4, PartitionScheme::RoundRobin);
        assert!(edge_cut.cut_fraction(&net) <= semantic.cut_fraction(&net));
        assert!(edge_cut.cut_fraction(&net) < rr.cut_fraction(&net));
    }

    #[test]
    fn edge_cut_on_star_achieves_the_minimum_balanced_cut() {
        // 1 hub + 63 leaves over 4 clusters of 16: any balanced split
        // strands 48 spokes outside the hub's cluster, and hub-seeded
        // greedy growth hits that floor exactly.
        let net = star_network(63);
        let p = Partition::build(&net, 4, PartitionScheme::EdgeCut);
        let stats = p.stats(&net);
        assert_eq!(stats.total_links, 63);
        assert_eq!(stats.cut_links, 63 - 15);
        assert_eq!(stats.max_load, 16);
        assert!((stats.load_balance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn edge_cut_on_bridged_communities_cuts_only_bridges() {
        let (k, size) = (4usize, 16usize);
        let net = bridge_network(k, size);
        let p = Partition::build(&net, k, PartitionScheme::EdgeCut);
        let stats = p.stats(&net);
        assert_eq!(stats.cut_links, (k - 1) as u64);
        assert_eq!(stats.max_load, size);
        // Each community lands wholly in one cluster.
        for c in 0..k {
            let owner = p.cluster_of(NodeId((c * size) as u32));
            for i in 1..size {
                assert_eq!(p.cluster_of(NodeId((c * size + i) as u32)), owner);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_every_node_assigned_exactly_once(
            n in 1usize..200,
            clusters in 1usize..32,
            scheme_pick in 0u8..4,
        ) {
            let scheme = match scheme_pick {
                0 => PartitionScheme::Sequential,
                1 => PartitionScheme::RoundRobin,
                2 => PartitionScheme::Semantic,
                _ => PartitionScheme::EdgeCut,
            };
            let net = line_network(n);
            let p = Partition::build(&net, clusters, scheme);
            // Inverse mapping is consistent and total.
            let mut seen = vec![false; n];
            for c in 0..clusters {
                for &node in p.members(ClusterId(c as u8)) {
                    prop_assert!(!seen[node.index()]);
                    seen[node.index()] = true;
                    prop_assert_eq!(p.cluster_of(node), ClusterId(c as u8));
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
            // No cluster exceeds the ceiling-balanced load.
            prop_assert!(p.max_cluster_load() <= n.div_ceil(clusters).max(1));
        }

        #[test]
        fn prop_edge_cut_no_worse_than_round_robin(
            n in 8usize..160,
            clusters in 2usize..9,
            chords in 0usize..40,
            seed in 0u64..1_000,
        ) {
            // Keep chords sparse relative to the line so locality exists to
            // exploit; round-robin still cuts every line link.
            let chords = chords.min(n / 4);
            let net = chorded_network(n, chords, seed);
            let edge_cut = Partition::build(&net, clusters, PartitionScheme::EdgeCut);
            let rr = Partition::build(&net, clusters, PartitionScheme::RoundRobin);
            // Greedy growth keeps connected runs together; round-robin cuts
            // essentially every line link.
            prop_assert!(edge_cut.cut_fraction(&net) <= rr.cut_fraction(&net));
            // Balance bound holds for EdgeCut too.
            prop_assert!(edge_cut.max_cluster_load() <= n.div_ceil(clusters).max(1));
            // Stats agree with the scalar helpers.
            let stats = edge_cut.stats(&net);
            prop_assert!((stats.cut_fraction - edge_cut.cut_fraction(&net)).abs() < 1e-12);
            prop_assert_eq!(stats.max_load, edge_cut.max_cluster_load());
            let assigned: usize = stats.per_cluster.iter().map(|c| c.nodes).sum();
            prop_assert_eq!(assigned, n);
        }

        /// Power-law KBs (the degree distribution real semantic networks
        /// have): EdgeCut must keep the ceiling-balanced load bound even
        /// when hubs concentrate most links, and its cut can never lose
        /// to the locality-blind round-robin baseline.
        #[test]
        fn prop_scale_free_edge_cut_cut_and_load_bounds(
            n in 24usize..160,
            m in 1usize..4,
            clusters in 2usize..9,
            seed in 0u64..1_000,
        ) {
            let net = scale_free_network(n, m, seed);
            // Preferential attachment actually produced hubs: some node's
            // undirected degree dwarfs the attachment constant.
            let mut degree = vec![0usize; n];
            for node in net.nodes() {
                for link in net.links(node) {
                    degree[node.index()] += 1;
                    degree[link.destination.index()] += 1;
                }
            }
            let max_degree = degree.iter().copied().max().unwrap_or(0);
            prop_assert!(
                max_degree >= 3 * m,
                "no hub emerged: max degree {} with m={}", max_degree, m
            );

            let p = Partition::build(&net, clusters, PartitionScheme::EdgeCut);
            let stats = p.stats(&net);
            prop_assert!(stats.max_load <= n.div_ceil(clusters).max(1));
            let rr = Partition::build(&net, clusters, PartitionScheme::RoundRobin);
            prop_assert!(
                stats.cut_fraction <= rr.cut_fraction(&net) + 1e-12,
                "EdgeCut {} lost to RoundRobin {}", stats.cut_fraction, rr.cut_fraction(&net)
            );
            // A hub-heavy graph still has locality to find.
            prop_assert!(stats.cut_fraction < 1.0);
            let assigned: usize = stats.per_cluster.iter().map(|c| c.nodes).sum();
            prop_assert_eq!(assigned, n);
        }

        /// Star and bridge topologies: assignment stays total and
        /// ceiling-balanced on every scheme, and EdgeCut never loses to
        /// round-robin on the cut.
        #[test]
        fn prop_hub_and_bridge_topologies_stay_total_and_balanced(
            leaves in 8usize..120,
            communities in 2usize..7,
            size in 4usize..24,
            clusters in 2usize..9,
        ) {
            for net in [star_network(leaves), bridge_network(communities, size)] {
                let n = net.node_count();
                for scheme in [
                    PartitionScheme::Sequential,
                    PartitionScheme::RoundRobin,
                    PartitionScheme::Semantic,
                    PartitionScheme::EdgeCut,
                ] {
                    let p = Partition::build(&net, clusters, scheme);
                    let mut seen = vec![false; n];
                    for c in 0..clusters {
                        for &node in p.members(ClusterId(c as u8)) {
                            prop_assert!(!seen[node.index()], "{:?}: double assignment", scheme);
                            seen[node.index()] = true;
                        }
                    }
                    prop_assert!(seen.into_iter().all(|s| s), "{:?}: node unassigned", scheme);
                    prop_assert!(p.max_cluster_load() <= n.div_ceil(clusters).max(1));
                }
                let edge_cut = Partition::build(&net, clusters, PartitionScheme::EdgeCut);
                let rr = Partition::build(&net, clusters, PartitionScheme::RoundRobin);
                prop_assert!(edge_cut.cut_fraction(&net) <= rr.cut_fraction(&net) + 1e-12);
            }
        }
    }
}
