//! The relation table: typed, weighted links between nodes.
//!
//! SNAP-1's relation table provides **16 outgoing relation slots per
//! node** (adequate for most linguistic concepts). Nodes with fanout
//! greater than 16 are divided into *subnodes* by a preprocessor when the
//! knowledge base is created. This module reproduces that design as a
//! chain of 16-slot *segments* per node: the first segment is the node's
//! own relation-table row and each additional segment models one overflow
//! subnode reached through the reserved subnode link. Marker state is
//! never attached to subnodes; propagation engines charge one extra table
//! lookup per segment traversed (see `segments`).
//!
//! # Storage layout
//!
//! Links live in one contiguous CSR (compressed sparse row) array sorted
//! by `(node, relation, insertion rank)`: `offsets` gives each node's
//! range, and because a node's range is relation-sorted, the links of one
//! `(node, relation)` pair are a contiguous sub-slice found by binary
//! search ([`RelationTable::relation_run`]). A parallel `ranks` array
//! records each link's insertion rank within its node, and a per-node
//! rank-sorted permutation (`by_rank`) drives insertion-order iteration,
//! so the public accessors behave exactly like the historical
//! nested-segment representation (see `reference::NestedRelationTable`).
//!
//! Mutation is staged: `add_link` appends to a small `pending` buffer
//! (merged into the CSR arrays geometrically, so construction stays
//! amortized O(E log E)); [`RelationTable::flush`] forces the merge.
//! Engines flush before entering the propagation hot path so every
//! expansion is pure slice arithmetic.

use crate::error::KbError;
use crate::ids::{NodeId, RelationType};
use serde::{Deserialize, Serialize};

/// Number of outgoing relation slots in one relation-table row.
pub const SLOTS_PER_NODE: usize = 16;

/// One outgoing link: relation type, destination, and floating-point
/// weight (the cost added to a complex marker's value when traversed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Relation (link) type.
    pub relation: RelationType,
    /// Destination node.
    pub destination: NodeId,
    /// Link weight added along propagation.
    pub weight: f32,
}

/// The relation table of a semantic network.
///
/// # Examples
///
/// ```
/// use snap_kb::{Link, NodeId, RelationTable, RelationType};
/// let mut table = RelationTable::new();
/// table.ensure_node(NodeId(1));
/// table.add_link(NodeId(0), RelationType(3), 0.5, NodeId(1))?;
/// assert_eq!(table.links(NodeId(0)).count(), 1);
/// # Ok::<(), snap_kb::KbError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RelationTable {
    /// All links, contiguous, sorted by `(node, relation, rank)`.
    links: Vec<Link>,
    /// Insertion rank of each link within its node (parallel to `links`).
    ranks: Vec<u32>,
    /// Node `n` owns `links[offsets[n]..offsets[n + 1]]`. Empty table has
    /// an empty offset array; otherwise `offsets.len() == len() + 1`.
    offsets: Vec<u32>,
    /// Global link positions grouped per node and sorted by rank within
    /// each node: drives insertion-order iteration.
    by_rank: Vec<u32>,
    /// Next insertion rank per node. Monotone — never reused after a
    /// removal, so relative order of surviving links is stable.
    next_rank: Vec<u32>,
    /// Staged `(node, rank, link)` additions not yet merged into the CSR
    /// arrays.
    pending: Vec<(NodeId, u32, Link)>,
    /// Staged link count per node (keeps `fanout` O(1) while staged).
    pending_per_node: Vec<u32>,
}

impl RelationTable {
    /// Creates an empty relation table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of node rows currently allocated.
    pub fn len(&self) -> usize {
        self.next_rank.len()
    }

    /// Returns `true` if no node rows are allocated.
    pub fn is_empty(&self) -> bool {
        self.next_rank.is_empty()
    }

    /// Extends the table so that `node` has a row.
    pub fn ensure_node(&mut self, node: NodeId) {
        let n = node.index() + 1;
        if self.next_rank.len() < n {
            if self.offsets.is_empty() {
                self.offsets.push(0);
            }
            let last = *self.offsets.last().expect("offsets seeded above");
            self.offsets.resize(n + 1, last);
            self.next_rank.resize(n, 0);
            self.pending_per_node.resize(n, 0);
        }
    }

    /// CSR range of `node`, or `None` for an unallocated row.
    fn node_range(&self, node: NodeId) -> Option<std::ops::Range<usize>> {
        let n = node.index();
        if n < self.len() {
            Some(self.offsets[n] as usize..self.offsets[n + 1] as usize)
        } else {
            None
        }
    }

    /// Adds an outgoing link from `source`. Overflowing the 16-slot row
    /// transparently allocates an overflow subnode segment, exactly like
    /// the paper's preprocessor.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::ReservedRelation`] if `relation` is the internal
    /// subnode relation.
    pub fn add_link(
        &mut self,
        source: NodeId,
        relation: RelationType,
        weight: f32,
        destination: NodeId,
    ) -> Result<(), KbError> {
        if relation.is_subnode() {
            return Err(KbError::ReservedRelation(relation));
        }
        self.ensure_node(source);
        self.ensure_node(destination);
        let rank = self.next_rank[source.index()];
        self.next_rank[source.index()] = rank + 1;
        self.pending.push((
            source,
            rank,
            Link {
                relation,
                destination,
                weight,
            },
        ));
        self.pending_per_node[source.index()] += 1;
        if self.pending.len() > 64.max(self.links.len() / 8) {
            self.flush();
        }
        Ok(())
    }

    /// Merges all staged additions into the CSR arrays. Idempotent; a
    /// no-op when nothing is staged. Engines call this before entering
    /// the propagation hot path so expansions read pure slices.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.pending);
        pending.sort_by_key(|&(node, rank, link)| (node.0, link.relation.0, rank));
        let nodes = self.len();
        let total = self.links.len() + pending.len();
        let mut links = Vec::with_capacity(total);
        let mut ranks = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(nodes + 1);
        offsets.push(0u32);
        let mut p = 0;
        for node in 0..nodes {
            let mut i = self.offsets[node] as usize;
            let end = self.offsets[node + 1] as usize;
            while p < pending.len() && pending[p].0.index() == node {
                let key = (pending[p].2.relation.0, pending[p].1);
                while i < end && (self.links[i].relation.0, self.ranks[i]) < key {
                    links.push(self.links[i]);
                    ranks.push(self.ranks[i]);
                    i += 1;
                }
                links.push(pending[p].2);
                ranks.push(pending[p].1);
                p += 1;
            }
            while i < end {
                links.push(self.links[i]);
                ranks.push(self.ranks[i]);
                i += 1;
            }
            offsets.push(links.len() as u32);
        }
        self.links = links;
        self.ranks = ranks;
        self.offsets = offsets;
        self.pending_per_node.iter_mut().for_each(|c| *c = 0);
        self.rebuild_by_rank();
    }

    /// Number of staged (not yet merged) links. The propagation fast path
    /// requires this to be zero.
    pub fn staged_links(&self) -> usize {
        self.pending.len()
    }

    /// Rebuilds the per-node insertion-order permutation from `ranks`.
    fn rebuild_by_rank(&mut self) {
        self.by_rank.clear();
        self.by_rank.extend(0..self.links.len() as u32);
        for node in 0..self.len() {
            let (s, e) = (self.offsets[node] as usize, self.offsets[node + 1] as usize);
            self.by_rank[s..e].sort_by_key(|&i| self.ranks[i as usize]);
        }
    }

    /// Removes the first link matching `(source, relation, destination)`.
    /// Later links shift down so segment chains stay dense.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::LinkNotFound`] if no such link exists.
    pub fn remove_link(
        &mut self,
        source: NodeId,
        relation: RelationType,
        destination: NodeId,
    ) -> Result<(), KbError> {
        if source.index() >= self.len() {
            return Err(KbError::UnknownNode(source));
        }
        self.flush();
        let range = self.node_range(source).expect("row checked above");
        // "First" means first in insertion order: the minimum-rank match.
        let pos = range
            .filter(|&i| {
                self.links[i].relation == relation && self.links[i].destination == destination
            })
            .min_by_key(|&i| self.ranks[i])
            .ok_or(KbError::LinkNotFound {
                source,
                relation,
                destination,
            })?;
        self.links.remove(pos);
        self.ranks.remove(pos);
        for off in &mut self.offsets[source.index() + 1..] {
            *off -= 1;
        }
        self.rebuild_by_rank();
        Ok(())
    }

    /// Iterates every outgoing link of `node`, in insertion order,
    /// transparently crossing subnode segments.
    pub fn links(&self, node: NodeId) -> impl Iterator<Item = &Link> {
        let order = self
            .node_range(node)
            .map_or(&[] as &[u32], |r| &self.by_rank[r]);
        order.iter().map(move |&i| &self.links[i as usize]).chain(
            self.pending
                .iter()
                .filter(move |(n, _, _)| *n == node)
                .map(|(_, _, l)| l),
        )
    }

    /// Iterates the outgoing links of `node` with the given relation type,
    /// in insertion order.
    pub fn links_by(&self, node: NodeId, relation: RelationType) -> impl Iterator<Item = &Link> {
        self.relation_run(node, relation).iter().chain(
            self.pending
                .iter()
                .filter(move |(n, _, l)| *n == node && l.relation == relation)
                .map(|(_, _, l)| l),
        )
    }

    /// The contiguous CSR sub-slice of `node`'s links with relation type
    /// `relation`, in insertion order — the hot-path lookup. Excludes
    /// staged links (see [`RelationTable::staged_links`]).
    pub fn relation_run(&self, node: NodeId, relation: RelationType) -> &[Link] {
        self.ranked_run(node, relation).0
    }

    /// Like [`RelationTable::relation_run`], also returning the parallel
    /// insertion-rank slice (used to merge multiple relation runs back
    /// into global insertion order).
    pub fn ranked_run(&self, node: NodeId, relation: RelationType) -> (&[Link], &[u32]) {
        let Some(range) = self.node_range(node) else {
            return (&[], &[]);
        };
        let row = &self.links[range.clone()];
        let lo = row.partition_point(|l| l.relation.0 < relation.0);
        let hi = row.partition_point(|l| l.relation.0 <= relation.0);
        let (s, e) = (range.start + lo, range.start + hi);
        (&self.links[s..e], &self.ranks[s..e])
    }

    /// Fused hot-path accessor: the propagation cost units — segment
    /// count and total fanout, exactly as [`RelationTable::segments`]
    /// and [`RelationTable::fanout`] report them — plus the ranked
    /// relation run, all derived from a single row lookup. Wave kernels
    /// call this once per task instead of paying three separate
    /// offset-array probes.
    pub fn ranked_run_with_cost(
        &self,
        node: NodeId,
        relation: RelationType,
    ) -> (usize, usize, &[Link], &[u32]) {
        let Some(range) = self.node_range(node) else {
            return (0, 0, &[], &[]);
        };
        let fanout = range.len() + self.pending_per_node[node.index()] as usize;
        let segments = if fanout == 0 {
            1
        } else {
            fanout.div_ceil(SLOTS_PER_NODE)
        };
        let row = &self.links[range.clone()];
        // Rows are sorted by (relation, rank). Single-segment rows — the
        // overwhelmingly common case — are cheaper to scan linearly than
        // to binary-search twice.
        let (lo, hi) = if row.len() <= SLOTS_PER_NODE {
            let mut lo = 0;
            while lo < row.len() && row[lo].relation.0 < relation.0 {
                lo += 1;
            }
            let mut hi = lo;
            while hi < row.len() && row[hi].relation.0 == relation.0 {
                hi += 1;
            }
            (lo, hi)
        } else {
            (
                row.partition_point(|l| l.relation.0 < relation.0),
                row.partition_point(|l| l.relation.0 <= relation.0),
            )
        };
        let (s, e) = (range.start + lo, range.start + hi);
        (segments, fanout, &self.links[s..e], &self.ranks[s..e])
    }

    /// Number of relation-table segments (1 + overflow subnodes) backing
    /// `node`. Each segment beyond the first costs one extra lookup during
    /// propagation.
    pub fn segments(&self, node: NodeId) -> usize {
        if node.index() >= self.len() {
            return 0;
        }
        let fanout = self.fanout(node);
        if fanout == 0 {
            1
        } else {
            fanout.div_ceil(SLOTS_PER_NODE)
        }
    }

    /// Total outgoing fanout of `node`.
    pub fn fanout(&self, node: NodeId) -> usize {
        match self.node_range(node) {
            Some(r) => r.len() + self.pending_per_node[node.index()] as usize,
            None => 0,
        }
    }

    /// Total number of links in the table.
    pub fn link_count(&self) -> usize {
        self.links.len() + self.pending.len()
    }

    /// Builds the reverse CSR: every link of the table grouped by its
    /// *destination* node (a stable counting sort, O(E + N)). Within one
    /// destination the incoming links keep the forward table's
    /// `(source, relation, rank)` order. Pull-direction propagation
    /// kernels build this lazily per run to gather arrivals instead of
    /// scattering them.
    ///
    /// # Panics
    ///
    /// Panics if additions are still staged — call
    /// [`RelationTable::flush`] first (engines flush at run entry).
    pub fn build_reverse(&self) -> ReverseTable {
        assert!(
            self.pending.is_empty(),
            "flush the relation table before building its reverse"
        );
        let nodes = self.len();
        let mut offsets = vec![0u32; nodes + 1];
        for l in &self.links {
            offsets[l.destination.index() + 1] += 1;
        }
        for i in 1..=nodes {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut rev = vec![
            RevLink {
                source: NodeId(0),
                relation: RelationType(0),
                weight: 0.0,
                rank: 0,
            };
            self.links.len()
        ];
        for node in 0..nodes {
            for i in self.offsets[node] as usize..self.offsets[node + 1] as usize {
                let l = self.links[i];
                let slot = cursor[l.destination.index()] as usize;
                cursor[l.destination.index()] += 1;
                rev[slot] = RevLink {
                    source: NodeId(node as u32),
                    relation: l.relation,
                    weight: l.weight,
                    rank: self.ranks[i],
                };
            }
        }
        ReverseTable { rev, offsets }
    }
}

/// One incoming link, as seen from its destination node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevLink {
    /// Source node the link leaves from.
    pub source: NodeId,
    /// Relation (link) type.
    pub relation: RelationType,
    /// Link weight added along propagation.
    pub weight: f32,
    /// The link's insertion rank within `source` — its scan position in
    /// the forward table. Pull kernels sort gathered arrivals by it to
    /// reproduce the forward (push) emission order exactly.
    pub rank: u32,
}

/// Reverse (incoming-link) CSR view of a [`RelationTable`], built by
/// [`RelationTable::build_reverse`].
#[derive(Debug, Clone, Default)]
pub struct ReverseTable {
    /// All links grouped by destination node.
    rev: Vec<RevLink>,
    /// Node `n`'s incoming links are `rev[offsets[n]..offsets[n + 1]]`.
    offsets: Vec<u32>,
}

impl ReverseTable {
    /// Incoming links of `node`, in the forward table's
    /// `(source, relation, rank)` order.
    pub fn incoming(&self, node: NodeId) -> &[RevLink] {
        let n = node.index();
        if n + 1 < self.offsets.len() {
            &self.rev[self.offsets[n] as usize..self.offsets[n + 1] as usize]
        } else {
            &[]
        }
    }

    /// Number of node rows covered.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` when no node rows are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of links.
    pub fn link_count(&self) -> usize {
        self.rev.len()
    }
}

impl PartialEq for RelationTable {
    /// Logical equality: same node rows with the same links in the same
    /// insertion order, regardless of how many additions are still
    /// staged.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && (0..self.len() as u32).all(|n| self.links(NodeId(n)).eq(other.links(NodeId(n))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel(r: u16) -> RelationType {
        RelationType(r)
    }

    #[test]
    fn add_and_iterate_links() {
        let mut t = RelationTable::new();
        t.add_link(NodeId(0), rel(1), 0.5, NodeId(1)).unwrap();
        t.add_link(NodeId(0), rel(2), 1.0, NodeId(2)).unwrap();
        let links: Vec<_> = t.links(NodeId(0)).collect();
        assert_eq!(links.len(), 2);
        assert_eq!(links[0].destination, NodeId(1));
        assert_eq!(links[1].weight, 1.0);
        assert_eq!(t.fanout(NodeId(0)), 2);
        assert_eq!(t.segments(NodeId(0)), 1);
    }

    #[test]
    fn fanout_over_16_spills_into_subnode_segments() {
        let mut t = RelationTable::new();
        for i in 0..40u32 {
            t.add_link(NodeId(0), rel(7), 1.0, NodeId(i + 1)).unwrap();
        }
        assert_eq!(t.fanout(NodeId(0)), 40);
        assert_eq!(t.segments(NodeId(0)), 3); // 16 + 16 + 8
                                              // Iteration is still flat and ordered.
        let dests: Vec<u32> = t.links(NodeId(0)).map(|l| l.destination.0).collect();
        assert_eq!(dests, (1..=40).collect::<Vec<_>>());
    }

    #[test]
    fn links_by_filters_relation() {
        let mut t = RelationTable::new();
        t.add_link(NodeId(0), rel(1), 0.0, NodeId(1)).unwrap();
        t.add_link(NodeId(0), rel(2), 0.0, NodeId(2)).unwrap();
        t.add_link(NodeId(0), rel(1), 0.0, NodeId(3)).unwrap();
        let dests: Vec<u32> = t
            .links_by(NodeId(0), rel(1))
            .map(|l| l.destination.0)
            .collect();
        assert_eq!(dests, vec![1, 3]);
    }

    #[test]
    fn relation_run_is_a_flushed_slice_in_insertion_order() {
        let mut t = RelationTable::new();
        t.add_link(NodeId(0), rel(2), 0.0, NodeId(9)).unwrap();
        t.add_link(NodeId(0), rel(1), 0.0, NodeId(1)).unwrap();
        t.add_link(NodeId(0), rel(1), 0.0, NodeId(3)).unwrap();
        t.add_link(NodeId(0), rel(3), 0.0, NodeId(4)).unwrap();
        t.flush();
        assert_eq!(t.staged_links(), 0);
        let run = t.relation_run(NodeId(0), rel(1));
        assert_eq!(
            run.iter().map(|l| l.destination.0).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert!(t.relation_run(NodeId(0), rel(5)).is_empty());
        assert!(t.relation_run(NodeId(7), rel(1)).is_empty());
        let (links, ranks) = t.ranked_run(NodeId(0), rel(1));
        assert_eq!(links.len(), ranks.len());
        assert_eq!(ranks, &[1, 2], "ranks are node-wide insertion indices");
    }

    #[test]
    fn staged_and_flushed_reads_agree() {
        let mut t = RelationTable::new();
        for i in 0..10u32 {
            t.add_link(NodeId(0), rel((i % 3) as u16), i as f32, NodeId(i + 1))
                .unwrap();
        }
        assert!(t.staged_links() > 0, "small batches stay staged");
        let staged: Vec<Link> = t.links(NodeId(0)).copied().collect();
        let staged_by: Vec<Link> = t.links_by(NodeId(0), rel(1)).copied().collect();
        let (fanout, segs, count) = (t.fanout(NodeId(0)), t.segments(NodeId(0)), t.link_count());
        t.flush();
        assert_eq!(t.links(NodeId(0)).copied().collect::<Vec<_>>(), staged);
        assert_eq!(
            t.links_by(NodeId(0), rel(1)).copied().collect::<Vec<_>>(),
            staged_by
        );
        assert_eq!(t.fanout(NodeId(0)), fanout);
        assert_eq!(t.segments(NodeId(0)), segs);
        assert_eq!(t.link_count(), count);
    }

    #[test]
    fn subnode_relation_rejected() {
        let mut t = RelationTable::new();
        let err = t
            .add_link(NodeId(0), RelationType::SUBNODE, 0.0, NodeId(1))
            .unwrap_err();
        assert_eq!(err, KbError::ReservedRelation(RelationType::SUBNODE));
    }

    #[test]
    fn remove_link_repacks_segments() {
        let mut t = RelationTable::new();
        for i in 0..17u32 {
            t.add_link(NodeId(0), rel(1), 0.0, NodeId(i + 1)).unwrap();
        }
        assert_eq!(t.segments(NodeId(0)), 2);
        t.remove_link(NodeId(0), rel(1), NodeId(1)).unwrap();
        assert_eq!(t.fanout(NodeId(0)), 16);
        assert_eq!(t.segments(NodeId(0)), 1, "removal repacks into one segment");
        let err = t.remove_link(NodeId(0), rel(1), NodeId(1)).unwrap_err();
        assert!(matches!(err, KbError::LinkNotFound { .. }));
    }

    #[test]
    fn ensure_node_allocates_destination_rows() {
        let mut t = RelationTable::new();
        t.add_link(NodeId(2), rel(0), 0.0, NodeId(9)).unwrap();
        assert_eq!(t.len(), 10);
        assert_eq!(t.fanout(NodeId(9)), 0);
    }

    #[test]
    fn reverse_table_groups_links_by_destination() {
        let mut t = RelationTable::new();
        t.add_link(NodeId(0), rel(1), 0.5, NodeId(2)).unwrap();
        t.add_link(NodeId(1), rel(2), 1.5, NodeId(2)).unwrap();
        t.add_link(NodeId(0), rel(1), 2.5, NodeId(1)).unwrap();
        t.add_link(NodeId(2), rel(1), 3.5, NodeId(0)).unwrap();
        t.flush();
        let rev = t.build_reverse();
        assert_eq!(rev.len(), 3);
        assert_eq!(rev.link_count(), 4);
        let into2 = rev.incoming(NodeId(2));
        assert_eq!(into2.len(), 2);
        assert_eq!(
            (
                into2[0].source,
                into2[0].relation,
                into2[0].weight,
                into2[0].rank
            ),
            (NodeId(0), rel(1), 0.5, 0)
        );
        assert_eq!((into2[1].source, into2[1].weight), (NodeId(1), 1.5));
        assert_eq!(rev.incoming(NodeId(1)).len(), 1);
        assert_eq!(
            rev.incoming(NodeId(1))[0].rank,
            1,
            "node-wide insertion rank carried over"
        );
        assert!(
            rev.incoming(NodeId(9)).is_empty(),
            "out-of-range reads as empty"
        );
    }

    #[test]
    #[should_panic(expected = "flush the relation table")]
    fn reverse_table_requires_flush() {
        let mut t = RelationTable::new();
        t.add_link(NodeId(0), rel(1), 0.0, NodeId(1)).unwrap();
        let _ = t.build_reverse();
    }

    proptest! {
        #[test]
        fn prop_reverse_is_an_exact_link_transpose(
            edges in proptest::collection::vec((0u32..20, 0u16..4, 0u32..20), 0..80),
        ) {
            let mut t = RelationTable::new();
            for &(s, r, d) in &edges {
                t.add_link(NodeId(s), rel(r), (s + d) as f32, NodeId(d)).unwrap();
            }
            t.flush();
            let rev = t.build_reverse();
            prop_assert_eq!(rev.link_count(), t.link_count());
            // Every forward link appears exactly once under its destination,
            // carrying the same relation/weight/rank.
            let mut forward: Vec<(u32, u32, u16, u32)> = Vec::new();
            for n in 0..t.len() as u32 {
                let (run_links, run_ranks) = {
                    let mut v = Vec::new();
                    for r in 0u16..4 {
                        let (ls, rs) = t.ranked_run(NodeId(n), rel(r));
                        for (l, &rk) in ls.iter().zip(rs) {
                            v.push((*l, rk));
                        }
                    }
                    (v.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
                     v.iter().map(|(_, rk)| *rk).collect::<Vec<_>>())
                };
                for (l, rk) in run_links.iter().zip(run_ranks) {
                    forward.push((n, l.destination.0, l.relation.0, rk));
                }
            }
            let mut reversed: Vec<(u32, u32, u16, u32)> = Vec::new();
            for n in 0..rev.len() as u32 {
                for rl in rev.incoming(NodeId(n)) {
                    reversed.push((rl.source.0, n, rl.relation.0, rl.rank));
                }
            }
            forward.sort_unstable();
            reversed.sort_unstable();
            prop_assert_eq!(forward, reversed);
        }

        #[test]
        fn prop_segments_match_ceiling_of_fanout(fanout in 0usize..100) {
            let mut t = RelationTable::new();
            t.ensure_node(NodeId(0));
            for i in 0..fanout {
                t.add_link(NodeId(0), rel(1), 0.0, NodeId(i as u32 + 1)).unwrap();
            }
            let expect = if fanout == 0 { 1 } else { fanout.div_ceil(SLOTS_PER_NODE) };
            prop_assert_eq!(t.segments(NodeId(0)), expect);
            prop_assert_eq!(t.fanout(NodeId(0)), fanout);
        }

        #[test]
        fn prop_remove_preserves_other_links(
            n in 1usize..60,
            victim in 0usize..60,
        ) {
            prop_assume!(victim < n);
            let mut t = RelationTable::new();
            for i in 0..n {
                t.add_link(NodeId(0), rel(1), i as f32, NodeId(i as u32 + 1)).unwrap();
            }
            t.remove_link(NodeId(0), rel(1), NodeId(victim as u32 + 1)).unwrap();
            let dests: Vec<u32> = t.links(NodeId(0)).map(|l| l.destination.0).collect();
            let expect: Vec<u32> =
                (1..=n as u32).filter(|&d| d != victim as u32 + 1).collect();
            prop_assert_eq!(dests, expect);
        }
    }
}
