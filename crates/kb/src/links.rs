//! The relation table: typed, weighted links between nodes.
//!
//! SNAP-1's relation table provides **16 outgoing relation slots per
//! node** (adequate for most linguistic concepts). Nodes with fanout
//! greater than 16 are divided into *subnodes* by a preprocessor when the
//! knowledge base is created. This module reproduces that design as a
//! chain of 16-slot *segments* per node: the first segment is the node's
//! own relation-table row and each additional segment models one overflow
//! subnode reached through the reserved subnode link. Marker state is
//! never attached to subnodes; propagation engines charge one extra table
//! lookup per segment traversed (see `segments`).

use crate::error::KbError;
use crate::ids::{NodeId, RelationType};
use serde::{Deserialize, Serialize};

/// Number of outgoing relation slots in one relation-table row.
pub const SLOTS_PER_NODE: usize = 16;

/// One outgoing link: relation type, destination, and floating-point
/// weight (the cost added to a complex marker's value when traversed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Relation (link) type.
    pub relation: RelationType,
    /// Destination node.
    pub destination: NodeId,
    /// Link weight added along propagation.
    pub weight: f32,
}

/// The relation table of a semantic network.
///
/// # Examples
///
/// ```
/// use snap_kb::{Link, NodeId, RelationTable, RelationType};
/// let mut table = RelationTable::new();
/// table.ensure_node(NodeId(1));
/// table.add_link(NodeId(0), RelationType(3), 0.5, NodeId(1))?;
/// assert_eq!(table.links(NodeId(0)).count(), 1);
/// # Ok::<(), snap_kb::KbError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RelationTable {
    /// Per node: chain of 16-slot segments. `rows[n][0]` is node `n`'s own
    /// relation row; later segments are overflow subnodes.
    rows: Vec<Vec<Vec<Link>>>,
}

impl RelationTable {
    /// Creates an empty relation table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of node rows currently allocated.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no node rows are allocated.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Extends the table so that `node` has a row.
    pub fn ensure_node(&mut self, node: NodeId) {
        if node.index() >= self.rows.len() {
            self.rows.resize(node.index() + 1, vec![Vec::new()]);
        }
    }

    /// Adds an outgoing link from `source`. Overflowing the 16-slot row
    /// transparently allocates an overflow subnode segment, exactly like
    /// the paper's preprocessor.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::ReservedRelation`] if `relation` is the internal
    /// subnode relation.
    pub fn add_link(
        &mut self,
        source: NodeId,
        relation: RelationType,
        weight: f32,
        destination: NodeId,
    ) -> Result<(), KbError> {
        if relation.is_subnode() {
            return Err(KbError::ReservedRelation(relation));
        }
        self.ensure_node(source);
        self.ensure_node(destination);
        let segments = &mut self.rows[source.index()];
        let last = segments.last_mut().expect("node row always has a segment");
        if last.len() < SLOTS_PER_NODE {
            last.push(Link {
                relation,
                destination,
                weight,
            });
        } else {
            segments.push(vec![Link {
                relation,
                destination,
                weight,
            }]);
        }
        Ok(())
    }

    /// Removes the first link matching `(source, relation, destination)`.
    /// Later links shift down so segment chains stay dense.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::LinkNotFound`] if no such link exists.
    pub fn remove_link(
        &mut self,
        source: NodeId,
        relation: RelationType,
        destination: NodeId,
    ) -> Result<(), KbError> {
        let row = self
            .rows
            .get_mut(source.index())
            .ok_or(KbError::UnknownNode(source))?;
        let mut flat: Vec<Link> = row.iter().flatten().copied().collect();
        let pos = flat
            .iter()
            .position(|l| l.relation == relation && l.destination == destination)
            .ok_or(KbError::LinkNotFound {
                source,
                relation,
                destination,
            })?;
        flat.remove(pos);
        *row = repack(flat);
        Ok(())
    }

    /// Iterates every outgoing link of `node`, in insertion order,
    /// transparently crossing subnode segments.
    pub fn links(&self, node: NodeId) -> impl Iterator<Item = &Link> {
        self.rows
            .get(node.index())
            .into_iter()
            .flat_map(|segments| segments.iter().flatten())
    }

    /// Iterates the outgoing links of `node` with the given relation type.
    pub fn links_by(&self, node: NodeId, relation: RelationType) -> impl Iterator<Item = &Link> {
        self.links(node).filter(move |l| l.relation == relation)
    }

    /// Number of relation-table segments (1 + overflow subnodes) backing
    /// `node`. Each segment beyond the first costs one extra lookup during
    /// propagation.
    pub fn segments(&self, node: NodeId) -> usize {
        self.rows.get(node.index()).map_or(0, |s| s.len())
    }

    /// Total outgoing fanout of `node`.
    pub fn fanout(&self, node: NodeId) -> usize {
        self.rows
            .get(node.index())
            .map_or(0, |s| s.iter().map(Vec::len).sum())
    }

    /// Total number of links in the table.
    pub fn link_count(&self) -> usize {
        self.rows
            .iter()
            .map(|s| s.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

/// Packs a flat link list back into dense 16-slot segments.
fn repack(flat: Vec<Link>) -> Vec<Vec<Link>> {
    if flat.is_empty() {
        return vec![Vec::new()];
    }
    flat.chunks(SLOTS_PER_NODE).map(<[Link]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel(r: u16) -> RelationType {
        RelationType(r)
    }

    #[test]
    fn add_and_iterate_links() {
        let mut t = RelationTable::new();
        t.add_link(NodeId(0), rel(1), 0.5, NodeId(1)).unwrap();
        t.add_link(NodeId(0), rel(2), 1.0, NodeId(2)).unwrap();
        let links: Vec<_> = t.links(NodeId(0)).collect();
        assert_eq!(links.len(), 2);
        assert_eq!(links[0].destination, NodeId(1));
        assert_eq!(links[1].weight, 1.0);
        assert_eq!(t.fanout(NodeId(0)), 2);
        assert_eq!(t.segments(NodeId(0)), 1);
    }

    #[test]
    fn fanout_over_16_spills_into_subnode_segments() {
        let mut t = RelationTable::new();
        for i in 0..40u32 {
            t.add_link(NodeId(0), rel(7), 1.0, NodeId(i + 1)).unwrap();
        }
        assert_eq!(t.fanout(NodeId(0)), 40);
        assert_eq!(t.segments(NodeId(0)), 3); // 16 + 16 + 8
                                              // Iteration is still flat and ordered.
        let dests: Vec<u32> = t.links(NodeId(0)).map(|l| l.destination.0).collect();
        assert_eq!(dests, (1..=40).collect::<Vec<_>>());
    }

    #[test]
    fn links_by_filters_relation() {
        let mut t = RelationTable::new();
        t.add_link(NodeId(0), rel(1), 0.0, NodeId(1)).unwrap();
        t.add_link(NodeId(0), rel(2), 0.0, NodeId(2)).unwrap();
        t.add_link(NodeId(0), rel(1), 0.0, NodeId(3)).unwrap();
        let dests: Vec<u32> = t
            .links_by(NodeId(0), rel(1))
            .map(|l| l.destination.0)
            .collect();
        assert_eq!(dests, vec![1, 3]);
    }

    #[test]
    fn subnode_relation_rejected() {
        let mut t = RelationTable::new();
        let err = t
            .add_link(NodeId(0), RelationType::SUBNODE, 0.0, NodeId(1))
            .unwrap_err();
        assert_eq!(err, KbError::ReservedRelation(RelationType::SUBNODE));
    }

    #[test]
    fn remove_link_repacks_segments() {
        let mut t = RelationTable::new();
        for i in 0..17u32 {
            t.add_link(NodeId(0), rel(1), 0.0, NodeId(i + 1)).unwrap();
        }
        assert_eq!(t.segments(NodeId(0)), 2);
        t.remove_link(NodeId(0), rel(1), NodeId(1)).unwrap();
        assert_eq!(t.fanout(NodeId(0)), 16);
        assert_eq!(t.segments(NodeId(0)), 1, "removal repacks into one segment");
        let err = t.remove_link(NodeId(0), rel(1), NodeId(1)).unwrap_err();
        assert!(matches!(err, KbError::LinkNotFound { .. }));
    }

    #[test]
    fn ensure_node_allocates_destination_rows() {
        let mut t = RelationTable::new();
        t.add_link(NodeId(2), rel(0), 0.0, NodeId(9)).unwrap();
        assert_eq!(t.len(), 10);
        assert_eq!(t.fanout(NodeId(9)), 0);
    }

    proptest! {
        #[test]
        fn prop_segments_match_ceiling_of_fanout(fanout in 0usize..100) {
            let mut t = RelationTable::new();
            t.ensure_node(NodeId(0));
            for i in 0..fanout {
                t.add_link(NodeId(0), rel(1), 0.0, NodeId(i as u32 + 1)).unwrap();
            }
            let expect = if fanout == 0 { 1 } else { fanout.div_ceil(SLOTS_PER_NODE) };
            prop_assert_eq!(t.segments(NodeId(0)), expect);
            prop_assert_eq!(t.fanout(NodeId(0)), fanout);
        }

        #[test]
        fn prop_remove_preserves_other_links(
            n in 1usize..60,
            victim in 0usize..60,
        ) {
            prop_assume!(victim < n);
            let mut t = RelationTable::new();
            for i in 0..n {
                t.add_link(NodeId(0), rel(1), i as f32, NodeId(i as u32 + 1)).unwrap();
            }
            t.remove_link(NodeId(0), rel(1), NodeId(victim as u32 + 1)).unwrap();
            let dests: Vec<u32> = t.links(NodeId(0)).map(|l| l.destination.0).collect();
            let expect: Vec<u32> =
                (1..=n as u32).filter(|&d| d != victim as u32 + 1).collect();
            prop_assert_eq!(dests, expect);
        }
    }
}
