//! Knowledge-base serialization: a line-oriented text format.
//!
//! The host toolchain loads knowledge bases onto the machine at startup
//! (the paper's preprocessor emits `CREATE` streams). This module
//! provides the equivalent developer-facing format: one `node` or
//! `link` declaration per line, suitable for versioning knowledge bases
//! alongside programs.
//!
//! ```text
//! # comment
//! node 0 color=1 name=we
//! node 1 color=2
//! link 0 -r0/0.1-> 1
//! ```

use crate::error::KbError;
use crate::ids::{Color, NodeId, RelationType};
use crate::network::{NetworkConfig, SemanticNetwork};
use core::fmt;

/// Errors raised while parsing the text format.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseNetworkError {
    /// 1-based line number of the offending declaration.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseNetworkError {}

impl From<(usize, KbError)> for ParseNetworkError {
    fn from((line, e): (usize, KbError)) -> Self {
        ParseNetworkError {
            line,
            message: e.to_string(),
        }
    }
}

impl SemanticNetwork {
    /// Renders the network in the line-oriented text format. Node IDs
    /// are stable, so `parse_text` reconstructs an identical network.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# snap-kb network: {} nodes, {} links\n",
            self.node_count(),
            self.link_count()
        ));
        for node in self.nodes() {
            let color = self.color(node).expect("iterating own nodes");
            match self.name(node) {
                Some(name) => out.push_str(&format!(
                    "node {} color={} name={}\n",
                    node.0, color.0, name
                )),
                None => out.push_str(&format!("node {} color={}\n", node.0, color.0)),
            }
        }
        for node in self.nodes() {
            for link in self.links(node) {
                out.push_str(&format!(
                    "link {} -r{}/{}-> {}\n",
                    node.0, link.relation.0, link.weight, link.destination.0
                ));
            }
        }
        out
    }

    /// Parses the text format produced by [`SemanticNetwork::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseNetworkError`] naming the first malformed line.
    /// Node declarations must appear in ID order before any link that
    /// uses them.
    pub fn parse_text(text: &str, config: NetworkConfig) -> Result<Self, ParseNetworkError> {
        let mut net = SemanticNetwork::new(config);
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| ParseNetworkError {
                line: line_no,
                message,
            };
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("node") => {
                    let id: u32 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("missing node id".into()))?;
                    if id as usize != net.node_count() {
                        return Err(err(format!(
                            "node {} out of order (expected {})",
                            id,
                            net.node_count()
                        )));
                    }
                    let mut color = Color(0);
                    let mut name: Option<&str> = None;
                    for attr in parts {
                        if let Some(v) = attr.strip_prefix("color=") {
                            color = Color(v.parse().map_err(|_| err(format!("bad color `{v}`")))?);
                        } else if let Some(v) = attr.strip_prefix("name=") {
                            name = Some(v);
                        } else {
                            return Err(err(format!("unknown attribute `{attr}`")));
                        }
                    }
                    let added = match name {
                        Some(n) => net.add_named_node(n, color),
                        None => net.add_node(color),
                    };
                    added.map_err(|e| ParseNetworkError::from((line_no, e)))?;
                }
                Some("link") => {
                    // link <src> -r<rel>/<weight>-> <dst>
                    let src: u32 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("missing link source".into()))?;
                    let arrow = parts
                        .next()
                        .ok_or_else(|| err("missing link arrow".into()))?;
                    let body = arrow
                        .strip_prefix("-r")
                        .and_then(|s| s.strip_suffix("->"))
                        .ok_or_else(|| err(format!("malformed arrow `{arrow}`")))?;
                    let (rel, weight) = body
                        .split_once('/')
                        .ok_or_else(|| err(format!("malformed arrow `{arrow}`")))?;
                    let rel: u16 = rel
                        .parse()
                        .map_err(|_| err(format!("bad relation `{rel}`")))?;
                    let weight: f32 = weight
                        .parse()
                        .map_err(|_| err(format!("bad weight `{weight}`")))?;
                    let dst: u32 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("missing link destination".into()))?;
                    net.add_link(NodeId(src), RelationType(rel), weight, NodeId(dst))
                        .map_err(|e| ParseNetworkError::from((line_no, e)))?;
                }
                Some(other) => return Err(err(format!("unknown declaration `{other}`"))),
                None => unreachable!("blank lines skipped"),
            }
        }
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> SemanticNetwork {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let a = net.add_named_node("we", Color(1)).unwrap();
        let b = net.add_node(Color(2)).unwrap();
        net.add_link(a, RelationType(3), 0.25, b).unwrap();
        net.add_link(b, RelationType(4), 1.5, a).unwrap();
        net
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let net = sample();
        let text = net.to_text();
        let parsed = SemanticNetwork::parse_text(&text, NetworkConfig::default()).unwrap();
        assert_eq!(parsed.node_count(), net.node_count());
        assert_eq!(parsed.link_count(), net.link_count());
        assert_eq!(parsed.lookup("we"), net.lookup("we"));
        assert_eq!(parsed.color(NodeId(1)).unwrap(), Color(2));
        let link = parsed.links(NodeId(0)).next().unwrap();
        assert_eq!(link.relation, RelationType(3));
        assert_eq!(link.weight, 0.25);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = SemanticNetwork::parse_text("node 0 color=1\nbogus x\n", NetworkConfig::default())
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
        let e =
            SemanticNetwork::parse_text("node 5 color=1\n", NetworkConfig::default()).unwrap_err();
        assert!(e.message.contains("out of order"));
        let e = SemanticNetwork::parse_text(
            "node 0 color=1\nlink 0 -r1/x-> 0\n",
            NetworkConfig::default(),
        )
        .unwrap_err();
        assert!(e.message.contains("bad weight"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let net = SemanticNetwork::parse_text(
            "# header\n\nnode 0 color=7\n   \n# trailing\n",
            NetworkConfig::default(),
        )
        .unwrap();
        assert_eq!(net.node_count(), 1);
        assert_eq!(net.color(NodeId(0)).unwrap(), Color(7));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_random_networks(
            n in 1usize..40,
            links in proptest::collection::vec((0u32..40, 0u16..10, 0u32..1000, 0u32..40), 0..80),
        ) {
            let mut net = SemanticNetwork::new(NetworkConfig::default());
            for i in 0..n {
                if i % 3 == 0 {
                    net.add_named_node(format!("w{i}"), Color((i % 7) as u8)).unwrap();
                } else {
                    net.add_node(Color((i % 7) as u8)).unwrap();
                }
            }
            for (s, r, w, d) in links {
                if (s as usize) < n && (d as usize) < n {
                    net.add_link(NodeId(s), RelationType(r), w as f32 / 8.0, NodeId(d)).unwrap();
                }
            }
            let parsed =
                SemanticNetwork::parse_text(&net.to_text(), NetworkConfig::default()).unwrap();
            prop_assert_eq!(parsed.node_count(), net.node_count());
            prop_assert_eq!(parsed.link_count(), net.link_count());
            for node in net.nodes() {
                prop_assert_eq!(parsed.color(node).unwrap(), net.color(node).unwrap());
                prop_assert_eq!(parsed.name(node), net.name(node));
                let a: Vec<_> = parsed.links(node).collect();
                let b: Vec<_> = net.links(node).collect();
                prop_assert_eq!(a, b);
            }
        }
    }
}
