//! Bit-packed marker status table.
//!
//! SNAP-1 stores the active/inactive state of every marker in a *marker
//! status table*: one row per marker, each row holding `N / W` status
//! words, where `W` is the CPU word length (32 bits on the TMS320C30).
//! A set bit means the marker is active at the corresponding node. Global
//! boolean and set/clear instructions are executed **word-at-a-time**, so a
//! marker unit updates the status of 32 nodes per memory access — this is
//! what makes `AND-MARKER` and friends cheap relative to `PROPAGATE`.

use crate::ids::NodeId;

/// Word length of the marker units, in bits (the TMS320C30 is a 32-bit CPU).
pub const WORD_BITS: usize = 32;

/// One row of the marker status table: the activation bitmap of a single
/// marker across all nodes of a region.
///
/// # Examples
///
/// ```
/// use snap_kb::{NodeId, StatusRow};
/// let mut row = StatusRow::new(100);
/// row.set(NodeId(42));
/// assert!(row.test(NodeId(42)));
/// assert_eq!(row.count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusRow {
    words: Vec<u32>,
    nodes: usize,
}

impl StatusRow {
    /// Creates an all-clear row covering `nodes` node slots.
    pub fn new(nodes: usize) -> Self {
        StatusRow {
            words: vec![0; nodes.div_ceil(WORD_BITS)],
            nodes,
        }
    }

    /// Number of node slots covered by this row.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of status words in the row (`ceil(N / W)`).
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Sets the marker bit for `node`. Returns `true` if the bit was
    /// previously clear (i.e. the marker was newly activated).
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the row.
    #[inline]
    pub fn set(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.nodes,
            "node {i} outside status row of {}",
            self.nodes
        );
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Clears the marker bit for `node`. Returns `true` if the bit was set.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the row.
    #[inline]
    pub fn clear(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.nodes,
            "node {i} outside status row of {}",
            self.nodes
        );
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Tests the marker bit for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the row.
    #[inline]
    pub fn test(&self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.nodes,
            "node {i} outside status row of {}",
            self.nodes
        );
        self.words[i / WORD_BITS] & (1 << (i % WORD_BITS)) != 0
    }

    /// Clears every bit in the row. Returns the number of words touched,
    /// which is the unit the cost model charges for set/clear instructions.
    pub fn clear_all(&mut self) -> usize {
        for w in &mut self.words {
            *w = 0;
        }
        self.words.len()
    }

    /// Sets the bit for every node slot in the row, respecting the tail.
    /// Returns the number of words touched.
    pub fn set_all(&mut self) -> usize {
        let n = self.words.len();
        for w in &mut self.words {
            *w = u32::MAX;
        }
        self.mask_tail();
        n
    }

    /// Number of active bits in the row.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Word-parallel `self = a AND b`. All three rows must be the same
    /// length. Returns the number of words processed.
    ///
    /// # Panics
    ///
    /// Panics if the rows cover different node counts.
    pub fn assign_and(&mut self, a: &StatusRow, b: &StatusRow) -> usize {
        self.zip_assign(a, b, |x, y| x & y)
    }

    /// Word-parallel `self = a OR b`. Returns the number of words processed.
    ///
    /// # Panics
    ///
    /// Panics if the rows cover different node counts.
    pub fn assign_or(&mut self, a: &StatusRow, b: &StatusRow) -> usize {
        self.zip_assign(a, b, |x, y| x | y)
    }

    /// Word-parallel `self = a AND NOT b` (set difference). Returns the
    /// number of words processed.
    ///
    /// # Panics
    ///
    /// Panics if the rows cover different node counts.
    pub fn assign_and_not(&mut self, a: &StatusRow, b: &StatusRow) -> usize {
        self.zip_assign(a, b, |x, y| x & !y)
    }

    /// Word-parallel `self = NOT a`, masked to the valid node slots.
    /// Returns the number of words processed.
    ///
    /// # Panics
    ///
    /// Panics if the rows cover different node counts.
    pub fn assign_not(&mut self, a: &StatusRow) -> usize {
        assert_eq!(
            self.nodes, a.nodes,
            "status rows cover different node counts"
        );
        for (d, s) in self.words.iter_mut().zip(&a.words) {
            *d = !s;
        }
        self.mask_tail();
        self.words.len()
    }

    /// Copies `a` into `self`. Returns the number of words processed.
    ///
    /// # Panics
    ///
    /// Panics if the rows cover different node counts.
    pub fn assign(&mut self, a: &StatusRow) -> usize {
        assert_eq!(
            self.nodes, a.nodes,
            "status rows cover different node counts"
        );
        self.words.copy_from_slice(&a.words);
        self.words.len()
    }

    fn zip_assign(&mut self, a: &StatusRow, b: &StatusRow, f: impl Fn(u32, u32) -> u32) -> usize {
        assert_eq!(a.nodes, b.nodes, "status rows cover different node counts");
        assert_eq!(
            self.nodes, a.nodes,
            "status rows cover different node counts"
        );
        for (d, (x, y)) in self.words.iter_mut().zip(a.words.iter().zip(&b.words)) {
            *d = f(*x, *y);
        }
        self.words.len()
    }

    /// Iterates over the nodes whose bit is set, in ascending order.
    ///
    /// This mirrors the MU's `PROPAGATE` scan: fetch each status word, skip
    /// zero words, and decode node IDs from the set bits of non-zero words.
    pub fn iter(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            nodes: self.nodes,
        }
    }

    /// Zeroes the bits beyond `self.nodes` in the final partial word.
    fn mask_tail(&mut self) {
        let rem = self.nodes % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u32 << rem) - 1;
            }
        }
    }
}

/// Iterator over the set bits of a [`StatusRow`], yielding [`NodeId`]s.
#[derive(Debug, Clone)]
pub struct SetBits<'a> {
    words: &'a [u32],
    word_idx: usize,
    current: u32,
    nodes: usize,
}

impl Iterator for SetBits<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * WORD_BITS + bit;
                if idx < self.nodes {
                    return Some(NodeId(idx as u32));
                }
            } else {
                self.word_idx += 1;
                if self.word_idx >= self.words.len() {
                    return None;
                }
                self.current = self.words[self.word_idx];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_test_clear_roundtrip() {
        let mut row = StatusRow::new(70);
        assert!(!row.test(NodeId(69)));
        assert!(row.set(NodeId(69)));
        assert!(!row.set(NodeId(69)), "second set reports already-active");
        assert!(row.test(NodeId(69)));
        assert!(row.clear(NodeId(69)));
        assert!(!row.clear(NodeId(69)));
        assert!(row.is_empty());
    }

    #[test]
    fn word_count_matches_ceiling_division() {
        assert_eq!(StatusRow::new(0).word_count(), 0);
        assert_eq!(StatusRow::new(1).word_count(), 1);
        assert_eq!(StatusRow::new(32).word_count(), 1);
        assert_eq!(StatusRow::new(33).word_count(), 2);
        assert_eq!(StatusRow::new(32768).word_count(), 1024);
    }

    #[test]
    fn set_all_respects_tail() {
        let mut row = StatusRow::new(40);
        row.set_all();
        assert_eq!(row.count(), 40);
        assert_eq!(row.iter().count(), 40);
    }

    #[test]
    fn boolean_ops_match_set_semantics() {
        let n = 100;
        let mut a = StatusRow::new(n);
        let mut b = StatusRow::new(n);
        for i in (0..n).step_by(2) {
            a.set(NodeId(i as u32));
        }
        for i in (0..n).step_by(3) {
            b.set(NodeId(i as u32));
        }
        let mut and = StatusRow::new(n);
        let mut or = StatusRow::new(n);
        let mut diff = StatusRow::new(n);
        let mut not = StatusRow::new(n);
        and.assign_and(&a, &b);
        or.assign_or(&a, &b);
        diff.assign_and_not(&a, &b);
        not.assign_not(&a);
        for i in 0..n {
            let node = NodeId(i as u32);
            assert_eq!(and.test(node), i % 2 == 0 && i % 3 == 0);
            assert_eq!(or.test(node), i % 2 == 0 || i % 3 == 0);
            assert_eq!(diff.test(node), i % 2 == 0 && i % 3 != 0);
            assert_eq!(not.test(node), i % 2 != 0);
        }
    }

    #[test]
    fn iter_yields_ascending_node_ids() {
        let mut row = StatusRow::new(200);
        for &i in &[0u32, 31, 32, 63, 64, 150, 199] {
            row.set(NodeId(i));
        }
        let got: Vec<u32> = row.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![0, 31, 32, 63, 64, 150, 199]);
    }

    #[test]
    #[should_panic(expected = "outside status row")]
    fn out_of_range_set_panics() {
        StatusRow::new(10).set(NodeId(10));
    }

    proptest! {
        #[test]
        fn prop_count_matches_inserted_set(
            nodes in 1usize..512,
            picks in proptest::collection::btree_set(0u32..512, 0..64),
        ) {
            let mut row = StatusRow::new(nodes);
            let valid: Vec<u32> =
                picks.iter().copied().filter(|&p| (p as usize) < nodes).collect();
            for &p in &valid {
                row.set(NodeId(p));
            }
            prop_assert_eq!(row.count(), valid.len());
            let iterated: Vec<u32> = row.iter().map(|n| n.0).collect();
            prop_assert_eq!(iterated, valid);
        }

        #[test]
        fn prop_demorgan(
            nodes in 1usize..300,
            xs in proptest::collection::vec(0u32..300, 0..40),
            ys in proptest::collection::vec(0u32..300, 0..40),
        ) {
            let mut a = StatusRow::new(nodes);
            let mut b = StatusRow::new(nodes);
            for x in xs.iter().filter(|&&x| (x as usize) < nodes) {
                a.set(NodeId(*x));
            }
            for y in ys.iter().filter(|&&y| (y as usize) < nodes) {
                b.set(NodeId(*y));
            }
            // NOT (a OR b) == (NOT a) AND (NOT b)
            let mut or = StatusRow::new(nodes);
            or.assign_or(&a, &b);
            let mut lhs = StatusRow::new(nodes);
            lhs.assign_not(&or);
            let mut na = StatusRow::new(nodes);
            let mut nb = StatusRow::new(nodes);
            na.assign_not(&a);
            nb.assign_not(&b);
            let mut rhs = StatusRow::new(nodes);
            rhs.assign_and(&na, &nb);
            prop_assert_eq!(lhs, rhs);
        }
    }
}
