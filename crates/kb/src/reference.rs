//! Reference nested-segment relation table.
//!
//! This is the historical `Vec<Vec<Vec<Link>>>` representation the CSR
//! [`RelationTable`](crate::RelationTable) replaced: per node, a chain of
//! dense 16-slot segments in insertion order. It is kept as an executable
//! specification — the property tests drive random operation sequences
//! through both tables and require every accessor to agree — and as the
//! baseline datapath for the `hotpath` wall-clock benchmark.

use crate::error::KbError;
use crate::ids::{NodeId, RelationType};
use crate::links::{Link, SLOTS_PER_NODE};

/// The pre-CSR relation table: per node, a chain of 16-slot segments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NestedRelationTable {
    /// Per node: chain of 16-slot segments. `rows[n][0]` is node `n`'s own
    /// relation row; later segments are overflow subnodes.
    rows: Vec<Vec<Vec<Link>>>,
}

impl NestedRelationTable {
    /// Creates an empty relation table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of node rows currently allocated.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no node rows are allocated.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Extends the table so that `node` has a row.
    pub fn ensure_node(&mut self, node: NodeId) {
        if node.index() >= self.rows.len() {
            self.rows.resize(node.index() + 1, vec![Vec::new()]);
        }
    }

    /// Adds an outgoing link from `source`, spilling into overflow
    /// segments past 16 slots.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::ReservedRelation`] if `relation` is the internal
    /// subnode relation.
    pub fn add_link(
        &mut self,
        source: NodeId,
        relation: RelationType,
        weight: f32,
        destination: NodeId,
    ) -> Result<(), KbError> {
        if relation.is_subnode() {
            return Err(KbError::ReservedRelation(relation));
        }
        self.ensure_node(source);
        self.ensure_node(destination);
        let segments = &mut self.rows[source.index()];
        let last = segments.last_mut().expect("node row always has a segment");
        let link = Link {
            relation,
            destination,
            weight,
        };
        if last.len() < SLOTS_PER_NODE {
            last.push(link);
        } else {
            segments.push(vec![link]);
        }
        Ok(())
    }

    /// Removes the first link matching `(source, relation, destination)`
    /// and repacks the segment chain dense.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::LinkNotFound`] if no such link exists.
    pub fn remove_link(
        &mut self,
        source: NodeId,
        relation: RelationType,
        destination: NodeId,
    ) -> Result<(), KbError> {
        let row = self
            .rows
            .get_mut(source.index())
            .ok_or(KbError::UnknownNode(source))?;
        let mut flat: Vec<Link> = row.iter().flatten().copied().collect();
        let pos = flat
            .iter()
            .position(|l| l.relation == relation && l.destination == destination)
            .ok_or(KbError::LinkNotFound {
                source,
                relation,
                destination,
            })?;
        flat.remove(pos);
        *row = if flat.is_empty() {
            vec![Vec::new()]
        } else {
            flat.chunks(SLOTS_PER_NODE).map(<[Link]>::to_vec).collect()
        };
        Ok(())
    }

    /// Iterates every outgoing link of `node`, in insertion order.
    pub fn links(&self, node: NodeId) -> impl Iterator<Item = &Link> {
        self.rows
            .get(node.index())
            .into_iter()
            .flat_map(|segments| segments.iter().flatten())
    }

    /// Iterates the outgoing links of `node` with the given relation type.
    pub fn links_by(&self, node: NodeId, relation: RelationType) -> impl Iterator<Item = &Link> {
        self.links(node).filter(move |l| l.relation == relation)
    }

    /// Number of relation-table segments backing `node`.
    pub fn segments(&self, node: NodeId) -> usize {
        self.rows.get(node.index()).map_or(0, |s| s.len())
    }

    /// Total outgoing fanout of `node`.
    pub fn fanout(&self, node: NodeId) -> usize {
        self.rows
            .get(node.index())
            .map_or(0, |s| s.iter().map(Vec::len).sum())
    }

    /// Total number of links in the table.
    pub fn link_count(&self) -> usize {
        self.rows
            .iter()
            .map(|s| s.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RelationTable;
    use proptest::prelude::*;

    /// One randomized table operation.
    #[derive(Debug, Clone)]
    enum Op {
        Add {
            source: u32,
            relation: u16,
            destination: u32,
            weight: f32,
        },
        Remove {
            source: u32,
            relation: u16,
            destination: u32,
        },
        Flush,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // kind 0..=5: add (weighted dominant), 6..=7: remove, 8: flush.
        (0u8..9, 0u32..24, 0u16..5, 0u32..24, 0u8..8).prop_map(
            |(kind, source, relation, destination, weight)| match kind {
                0..=5 => Op::Add {
                    source,
                    relation,
                    destination,
                    weight: weight as f32,
                },
                6 | 7 => Op::Remove {
                    source,
                    relation,
                    destination,
                },
                _ => Op::Flush,
            },
        )
    }

    fn assert_tables_agree(csr: &RelationTable, reference: &NestedRelationTable) {
        assert_eq!(csr.len(), reference.len());
        assert_eq!(csr.link_count(), reference.link_count());
        for n in 0..csr.len() as u32 {
            let node = NodeId(n);
            assert_eq!(
                csr.fanout(node),
                reference.fanout(node),
                "fanout of {node:?}"
            );
            assert_eq!(
                csr.segments(node),
                reference.segments(node),
                "segments of {node:?}"
            );
            let a: Vec<Link> = csr.links(node).copied().collect();
            let b: Vec<Link> = reference.links(node).copied().collect();
            assert_eq!(a, b, "links of {node:?}");
            for r in 0..6u16 {
                let relation = RelationType(r);
                let a: Vec<Link> = csr.links_by(node, relation).copied().collect();
                let b: Vec<Link> = reference.links_by(node, relation).copied().collect();
                assert_eq!(a, b, "links_by of {node:?} {relation:?}");
            }
        }
    }

    proptest! {
        /// The CSR table and the nested reference model agree on every
        /// accessor after any operation sequence, both while additions
        /// are staged and after an explicit flush.
        #[test]
        fn prop_csr_matches_nested_reference(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let mut csr = RelationTable::new();
            let mut reference = NestedRelationTable::new();
            for op in ops {
                match op {
                    Op::Add { source, relation, destination, weight } => {
                        let a = csr.add_link(NodeId(source), RelationType(relation), weight, NodeId(destination));
                        let b = reference.add_link(NodeId(source), RelationType(relation), weight, NodeId(destination));
                        prop_assert_eq!(a, b);
                    }
                    Op::Remove { source, relation, destination } => {
                        let a = csr.remove_link(NodeId(source), RelationType(relation), NodeId(destination));
                        let b = reference.remove_link(NodeId(source), RelationType(relation), NodeId(destination));
                        prop_assert_eq!(a, b);
                    }
                    Op::Flush => csr.flush(),
                }
                assert_tables_agree(&csr, &reference);
            }
            csr.flush();
            prop_assert_eq!(csr.staged_links(), 0);
            assert_tables_agree(&csr, &reference);
        }
    }
}
