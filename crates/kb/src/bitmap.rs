//! Word-addressable `u64` bitmaps for the frontier propagation kernel.
//!
//! [`StatusRow`](crate::StatusRow) models the *hardware* marker status
//! table and is deliberately pinned to the TMS320C30's 32-bit word. The
//! propagation kernel, by contrast, is a host-side optimisation: it wants
//! the widest word the host handles natively. [`Bitmap`] is that type —
//! one bit per node over the CSR node arena, packed into `u64` blocks, with
//! the word array exposed so the kernel can AND/OR/scan a word at a time.

use crate::ids::NodeId;

/// Bits per bitmap word.
pub const BITMAP_WORD_BITS: usize = 64;

/// A dense one-bit-per-node map over the node arena, packed into `u64`
/// words.
///
/// Unlike [`StatusRow`](crate::StatusRow) this type grows on demand past
/// its declared capacity (mirroring the dense `VisitedMap` tables, which
/// tolerate nodes added after the capacity hint was taken) and exposes its
/// word array for word-at-a-time kernels.
///
/// # Examples
///
/// ```
/// use snap_kb::{Bitmap, NodeId};
/// let mut map = Bitmap::new(100);
/// assert!(map.set(NodeId(42)));
/// assert!(!map.set(NodeId(42)), "second set reports already-present");
/// assert!(map.test(NodeId(42)));
/// assert_eq!(map.count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates an all-clear bitmap sized for `nodes` node slots.
    pub fn new(nodes: usize) -> Self {
        Bitmap {
            words: vec![0; nodes.div_ceil(BITMAP_WORD_BITS)],
        }
    }

    /// Ensures the bitmap covers `node`, growing with zero words if needed.
    #[inline]
    fn ensure(&mut self, node: NodeId) -> (usize, usize) {
        let i = node.index();
        let (w, b) = (i / BITMAP_WORD_BITS, i % BITMAP_WORD_BITS);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        (w, b)
    }

    /// Sets the bit for `node`, growing the map if needed. Returns `true`
    /// if the bit was previously clear.
    #[inline]
    pub fn set(&mut self, node: NodeId) -> bool {
        let (w, b) = self.ensure(node);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Clears the bit for `node`. Returns `true` if the bit was set.
    #[inline]
    pub fn unset(&mut self, node: NodeId) -> bool {
        let i = node.index();
        let (w, b) = (i / BITMAP_WORD_BITS, i % BITMAP_WORD_BITS);
        match self.words.get_mut(w) {
            Some(word) => {
                let was = *word & (1 << b) != 0;
                *word &= !(1 << b);
                was
            }
            None => false,
        }
    }

    /// Tests the bit for `node`. Out-of-range nodes read as clear.
    #[inline]
    pub fn test(&self, node: NodeId) -> bool {
        let i = node.index();
        self.words
            .get(i / BITMAP_WORD_BITS)
            .is_some_and(|w| w & (1 << (i % BITMAP_WORD_BITS)) != 0)
    }

    /// Number of set bits (hardware popcount per word).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears every bit without releasing storage.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place reset for per-query reuse: clears every bit, keeping the
    /// word allocation at its current capacity. Alias of
    /// [`Bitmap::clear_all`], named for the pooled-context protocol where
    /// every reusable structure exposes `reset()`.
    #[inline]
    pub fn reset(&mut self) {
        self.clear_all();
    }

    /// The packed word array (read side of word-at-a-time kernels).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word-parallel `self |= other`, growing to cover `other`.
    pub fn union_with(&mut self, other: &Bitmap) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            *d |= s;
        }
    }

    /// Iterates over the set bits in ascending node order.
    pub fn iter(&self) -> BitmapBits<'_> {
        BitmapBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// The lane-major transposition of up to [`BITMAP_WORD_BITS`] per-lane
/// [`Bitmap`]s: one K-bit lane-mask word per *slot* (a node, or a
/// `(state, node)` site flattened by the caller), bit `k` of
/// `word(slot)` meaning "lane `k` has touched this slot".
///
/// Where a batch of K lanes would otherwise probe K separate bitmaps, a
/// plane answers "which lanes have seen this slot?" with one load and
/// records first touches for *all* lanes with one OR — the word-at-a-
/// time check-and-set behind the bit-sliced multi-query kernel.
///
/// Clearing is proportional to the slots actually touched, not the
/// arena size: [`LanePlane::or`] logs each slot on its `0 → nonzero`
/// transition and [`LanePlane::reset`] zeroes only that log, so pooled
/// planes reset in O(frontier), keeping steady-state serving
/// allocation- and sweep-free.
///
/// # Examples
///
/// ```
/// use snap_kb::LanePlane;
/// let mut plane = LanePlane::new();
/// plane.ensure(100);
/// // Lanes 0 and 3 arrive at slot 42 together: one word op.
/// assert_eq!(plane.or(42, 0b1001), 0, "no lane had seen slot 42");
/// // Lane 3 again plus lane 1: the returned word says lane 3 is stale.
/// assert_eq!(plane.or(42, 0b1010), 0b1001);
/// plane.reset();
/// assert_eq!(plane.word(42), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LanePlane {
    words: Vec<u64>,
    /// Slots whose word went `0 → nonzero` since the last reset; each
    /// nonzero word appears here exactly once.
    touched: Vec<u32>,
}

impl LanePlane {
    /// Creates an empty plane; [`LanePlane::ensure`] sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the plane to cover `slots` slots (never shrinks).
    pub fn ensure(&mut self, slots: usize) {
        if slots > self.words.len() {
            self.words.resize(slots, 0);
        }
    }

    /// ORs `mask` into `slot`'s lane word and returns the word as it
    /// was **before** the OR — `!prev & mask` are the lanes whose touch
    /// is a guaranteed first visit. Grows past the ensured size on
    /// demand, like [`Bitmap`].
    #[inline]
    pub fn or(&mut self, slot: usize, mask: u64) -> u64 {
        if slot >= self.words.len() {
            self.words.resize(slot + 1, 0);
        }
        let prev = self.words[slot];
        if prev == 0 && mask != 0 {
            self.touched.push(slot as u32);
        }
        self.words[slot] = prev | mask;
        prev
    }

    /// Reads `slot`'s lane word. Out-of-range slots read as all-clear.
    #[inline]
    pub fn word(&self, slot: usize) -> u64 {
        self.words.get(slot).copied().unwrap_or(0)
    }

    /// The slots holding a nonzero lane word, in first-touch order.
    #[inline]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Clears the plane in O(touched slots), keeping storage.
    pub fn reset(&mut self) {
        for &slot in &self.touched {
            self.words[slot as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Iterator over the set bits of a [`Bitmap`], yielding [`NodeId`]s.
#[derive(Debug, Clone)]
pub struct BitmapBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitmapBits<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(NodeId((self.word_idx * BITMAP_WORD_BITS + bit) as u32));
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_test_unset_roundtrip() {
        let mut map = Bitmap::new(70);
        assert!(!map.test(NodeId(69)));
        assert!(map.set(NodeId(69)));
        assert!(!map.set(NodeId(69)), "second set reports already-present");
        assert!(map.test(NodeId(69)));
        assert!(map.unset(NodeId(69)));
        assert!(!map.unset(NodeId(69)));
        assert!(map.is_empty());
    }

    #[test]
    fn grows_past_declared_capacity() {
        let mut map = Bitmap::new(2);
        assert!(!map.test(NodeId(900)));
        assert!(map.set(NodeId(900)));
        assert!(map.test(NodeId(900)));
        assert_eq!(map.count(), 1);
        assert_eq!(map.iter().collect::<Vec<_>>(), vec![NodeId(900)]);
    }

    #[test]
    fn iter_yields_ascending_node_ids() {
        let mut map = Bitmap::new(200);
        for &i in &[0u32, 63, 64, 127, 128, 150, 199] {
            map.set(NodeId(i));
        }
        let got: Vec<u32> = map.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![0, 63, 64, 127, 128, 150, 199]);
    }

    #[test]
    fn union_grows_and_merges() {
        let mut a = Bitmap::new(10);
        a.set(NodeId(3));
        let mut b = Bitmap::new(300);
        b.set(NodeId(3));
        b.set(NodeId(250));
        a.union_with(&b);
        assert_eq!(a.count(), 2);
        assert!(a.test(NodeId(250)));
        a.clear_all();
        assert!(a.is_empty());
        assert!(a.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn reset_clears_without_shrinking() {
        let mut map = Bitmap::new(10);
        map.set(NodeId(500));
        let words_before = map.words().len();
        map.reset();
        assert!(map.is_empty());
        assert_eq!(map.words().len(), words_before, "capacity kept");
        assert!(map.set(NodeId(500)), "reusable after reset");
    }

    #[test]
    fn lane_plane_first_touch_and_reset() {
        let mut plane = LanePlane::new();
        plane.ensure(4);
        assert_eq!(plane.or(2, 0b01), 0);
        assert_eq!(plane.or(2, 0b10), 0b01, "prev word exposes stale lanes");
        assert_eq!(plane.or(9, 1 << 63), 0, "grows past ensured size");
        assert_eq!(plane.word(2), 0b11);
        assert_eq!(plane.touched(), &[2, 9]);
        assert_eq!(plane.or(3, 0), 0, "zero mask never logs a touch");
        plane.reset();
        assert_eq!(plane.word(2), 0);
        assert_eq!(plane.word(9), 0);
        assert!(plane.touched().is_empty());
        // Reusable after reset: touches log again from scratch.
        assert_eq!(plane.or(9, 1), 0);
        assert_eq!(plane.touched(), &[9]);
    }

    proptest! {
        #[test]
        fn prop_lane_plane_matches_per_lane_bitmaps(
            ops in proptest::collection::vec((0usize..256, 0u8..8), 0..128),
        ) {
            // One plane vs 8 independent bitmaps: or() must report
            // exactly the lanes each slot had already seen.
            let mut plane = LanePlane::new();
            let mut maps: Vec<Bitmap> = (0..8).map(|_| Bitmap::new(256)).collect();
            for &(slot, lane) in &ops {
                let prev = plane.or(slot, 1 << lane);
                for (k, map) in maps.iter().enumerate() {
                    prop_assert_eq!(
                        prev & (1 << k) != 0,
                        map.test(NodeId(slot as u32)),
                        "slot {} lane {}", slot, k
                    );
                }
                maps[lane as usize].set(NodeId(slot as u32));
            }
            for &(slot, _) in &ops {
                for (k, map) in maps.iter().enumerate() {
                    prop_assert_eq!(
                        plane.word(slot) & (1 << k) != 0,
                        map.test(NodeId(slot as u32))
                    );
                }
            }
            plane.reset();
            prop_assert!((0..256).all(|s| plane.word(s) == 0));
        }

        #[test]
        fn prop_matches_reference_set(
            nodes in 1usize..512,
            picks in proptest::collection::btree_set(0u32..2048, 0..64),
        ) {
            let mut map = Bitmap::new(nodes);
            for &p in &picks {
                prop_assert!(map.set(NodeId(p)));
            }
            prop_assert_eq!(map.count(), picks.len());
            let iterated: Vec<u32> = map.iter().map(|n| n.0).collect();
            let expect: Vec<u32> = picks.iter().copied().collect();
            prop_assert_eq!(iterated, expect);
            for p in 0..2048u32 {
                prop_assert_eq!(map.test(NodeId(p)), picks.contains(&p));
            }
        }
    }
}
