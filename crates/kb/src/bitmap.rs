//! Word-addressable `u64` bitmaps for the frontier propagation kernel.
//!
//! [`StatusRow`](crate::StatusRow) models the *hardware* marker status
//! table and is deliberately pinned to the TMS320C30's 32-bit word. The
//! propagation kernel, by contrast, is a host-side optimisation: it wants
//! the widest word the host handles natively. [`Bitmap`] is that type —
//! one bit per node over the CSR node arena, packed into `u64` blocks, with
//! the word array exposed so the kernel can AND/OR/scan a word at a time.

use crate::ids::NodeId;

/// Bits per bitmap word.
pub const BITMAP_WORD_BITS: usize = 64;

/// A dense one-bit-per-node map over the node arena, packed into `u64`
/// words.
///
/// Unlike [`StatusRow`](crate::StatusRow) this type grows on demand past
/// its declared capacity (mirroring the dense `VisitedMap` tables, which
/// tolerate nodes added after the capacity hint was taken) and exposes its
/// word array for word-at-a-time kernels.
///
/// # Examples
///
/// ```
/// use snap_kb::{Bitmap, NodeId};
/// let mut map = Bitmap::new(100);
/// assert!(map.set(NodeId(42)));
/// assert!(!map.set(NodeId(42)), "second set reports already-present");
/// assert!(map.test(NodeId(42)));
/// assert_eq!(map.count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates an all-clear bitmap sized for `nodes` node slots.
    pub fn new(nodes: usize) -> Self {
        Bitmap {
            words: vec![0; nodes.div_ceil(BITMAP_WORD_BITS)],
        }
    }

    /// Ensures the bitmap covers `node`, growing with zero words if needed.
    #[inline]
    fn ensure(&mut self, node: NodeId) -> (usize, usize) {
        let i = node.index();
        let (w, b) = (i / BITMAP_WORD_BITS, i % BITMAP_WORD_BITS);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        (w, b)
    }

    /// Sets the bit for `node`, growing the map if needed. Returns `true`
    /// if the bit was previously clear.
    #[inline]
    pub fn set(&mut self, node: NodeId) -> bool {
        let (w, b) = self.ensure(node);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Clears the bit for `node`. Returns `true` if the bit was set.
    #[inline]
    pub fn unset(&mut self, node: NodeId) -> bool {
        let i = node.index();
        let (w, b) = (i / BITMAP_WORD_BITS, i % BITMAP_WORD_BITS);
        match self.words.get_mut(w) {
            Some(word) => {
                let was = *word & (1 << b) != 0;
                *word &= !(1 << b);
                was
            }
            None => false,
        }
    }

    /// Tests the bit for `node`. Out-of-range nodes read as clear.
    #[inline]
    pub fn test(&self, node: NodeId) -> bool {
        let i = node.index();
        self.words
            .get(i / BITMAP_WORD_BITS)
            .is_some_and(|w| w & (1 << (i % BITMAP_WORD_BITS)) != 0)
    }

    /// Number of set bits (hardware popcount per word).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears every bit without releasing storage.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place reset for per-query reuse: clears every bit, keeping the
    /// word allocation at its current capacity. Alias of
    /// [`Bitmap::clear_all`], named for the pooled-context protocol where
    /// every reusable structure exposes `reset()`.
    #[inline]
    pub fn reset(&mut self) {
        self.clear_all();
    }

    /// The packed word array (read side of word-at-a-time kernels).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word-parallel `self |= other`, growing to cover `other`.
    pub fn union_with(&mut self, other: &Bitmap) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            *d |= s;
        }
    }

    /// Iterates over the set bits in ascending node order.
    pub fn iter(&self) -> BitmapBits<'_> {
        BitmapBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the set bits of a [`Bitmap`], yielding [`NodeId`]s.
#[derive(Debug, Clone)]
pub struct BitmapBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitmapBits<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(NodeId((self.word_idx * BITMAP_WORD_BITS + bit) as u32));
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_test_unset_roundtrip() {
        let mut map = Bitmap::new(70);
        assert!(!map.test(NodeId(69)));
        assert!(map.set(NodeId(69)));
        assert!(!map.set(NodeId(69)), "second set reports already-present");
        assert!(map.test(NodeId(69)));
        assert!(map.unset(NodeId(69)));
        assert!(!map.unset(NodeId(69)));
        assert!(map.is_empty());
    }

    #[test]
    fn grows_past_declared_capacity() {
        let mut map = Bitmap::new(2);
        assert!(!map.test(NodeId(900)));
        assert!(map.set(NodeId(900)));
        assert!(map.test(NodeId(900)));
        assert_eq!(map.count(), 1);
        assert_eq!(map.iter().collect::<Vec<_>>(), vec![NodeId(900)]);
    }

    #[test]
    fn iter_yields_ascending_node_ids() {
        let mut map = Bitmap::new(200);
        for &i in &[0u32, 63, 64, 127, 128, 150, 199] {
            map.set(NodeId(i));
        }
        let got: Vec<u32> = map.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![0, 63, 64, 127, 128, 150, 199]);
    }

    #[test]
    fn union_grows_and_merges() {
        let mut a = Bitmap::new(10);
        a.set(NodeId(3));
        let mut b = Bitmap::new(300);
        b.set(NodeId(3));
        b.set(NodeId(250));
        a.union_with(&b);
        assert_eq!(a.count(), 2);
        assert!(a.test(NodeId(250)));
        a.clear_all();
        assert!(a.is_empty());
        assert!(a.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn reset_clears_without_shrinking() {
        let mut map = Bitmap::new(10);
        map.set(NodeId(500));
        let words_before = map.words().len();
        map.reset();
        assert!(map.is_empty());
        assert_eq!(map.words().len(), words_before, "capacity kept");
        assert!(map.set(NodeId(500)), "reusable after reset");
    }

    proptest! {
        #[test]
        fn prop_matches_reference_set(
            nodes in 1usize..512,
            picks in proptest::collection::btree_set(0u32..2048, 0..64),
        ) {
            let mut map = Bitmap::new(nodes);
            for &p in &picks {
                prop_assert!(map.set(NodeId(p)));
            }
            prop_assert_eq!(map.count(), picks.len());
            let iterated: Vec<u32> = map.iter().map(|n| n.0).collect();
            let expect: Vec<u32> = picks.iter().copied().collect();
            prop_assert_eq!(iterated, expect);
            for p in 0..2048u32 {
                prop_assert_eq!(map.test(NodeId(p)), picks.contains(&p));
            }
        }
    }
}
