//! Synthetic knowledge-base topologies for benchmarks and property tests.
//!
//! These generators started life inside the partitioner's proptests; they
//! are public so the scaling benchmark can sweep topologies beyond the
//! line/grid-like parse KBs: power-law hub structure (what real semantic
//! networks look like), the hub-and-spoke worst case for balanced
//! partitioning, and bridged communities with an obvious minimum cut.
//! All generators are deterministic — the random ones take an explicit
//! seed and use a self-contained LCG, so the same call always produces
//! the same network.

use crate::ids::{Color, NodeId, RelationType};
use crate::network::{NetworkConfig, SemanticNetwork};

/// Deterministic LCG over `seed` (Knuth's MMIX multiplier), yielding
/// usize samples from the top bits.
fn lcg(seed: u64) -> impl FnMut() -> usize {
    let mut state = seed | 1;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    }
}

/// A simple line: `n` nodes chained by `RelationType(0)` links.
pub fn line_network(n: usize) -> SemanticNetwork {
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    let mut prev = None;
    for _ in 0..n {
        let id = net.add_node(Color(0)).unwrap();
        if let Some(p) = prev {
            net.add_link(p, RelationType(0), 0.0, id).unwrap();
        }
        prev = Some(id);
    }
    net
}

/// Line graph plus `chords` pseudo-random `RelationType(2)` chords:
/// connected, locality present but not trivial.
pub fn chorded_network(n: usize, chords: usize, seed: u64) -> SemanticNetwork {
    let mut net = line_network(n);
    let mut next = lcg(seed);
    for _ in 0..chords {
        let a = next() % n;
        let b = next() % n;
        if a != b {
            net.add_link(NodeId(a as u32), RelationType(2), 0.0, NodeId(b as u32))
                .unwrap();
        }
    }
    net
}

/// Preferential-attachment (Barabási–Albert) network: each node past the
/// seed chain links to `m` distinct earlier nodes drawn proportional to
/// degree via endpoint-list sampling, producing the power-law hub
/// structure of a real knowledge base. All links are `RelationType(0)`
/// and point from newer nodes to older ones.
///
/// # Panics
///
/// Panics unless `n > m >= 1`.
pub fn scale_free_network(n: usize, m: usize, seed: u64) -> SemanticNetwork {
    assert!(n > m && m >= 1, "need more nodes than attachments");
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(net.add_node(Color(0)).unwrap());
    }
    let mut next = lcg(seed);
    // Every link endpoint lands on this list, so sampling it uniformly is
    // sampling nodes proportional to degree.
    let mut endpoints: Vec<usize> = Vec::new();
    for v in 1..=m {
        net.add_link(ids[v - 1], RelationType(0), 0.0, ids[v])
            .unwrap();
        endpoints.push(v - 1);
        endpoints.push(v);
    }
    for v in (m + 1)..n {
        let mut targets: Vec<usize> = Vec::new();
        while targets.len() < m {
            let t = endpoints[next() % endpoints.len()];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            net.add_link(ids[v], RelationType(0), 0.0, ids[t]).unwrap();
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    net
}

/// One hub (node 0) fanning out to `leaves` spokes over `RelationType(0)`
/// links: the worst case for balanced partitioning — a `p`-way balanced
/// split must cut every spoke leaving the hub's cluster.
pub fn star_network(leaves: usize) -> SemanticNetwork {
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    let hub = net.add_node(Color(0)).unwrap();
    for _ in 0..leaves {
        let leaf = net.add_node(Color(0)).unwrap();
        net.add_link(hub, RelationType(0), 0.0, leaf).unwrap();
    }
    net
}

/// `communities` chorded line segments of `size` nodes (line links
/// `RelationType(0)`, skip-chords `RelationType(1)`), consecutive
/// segments joined by a single `RelationType(2)` bridge link: the minimum
/// balanced cut at `clusters == communities` is exactly the bridges.
///
/// # Panics
///
/// Panics if `size < 2`.
pub fn bridge_network(communities: usize, size: usize) -> SemanticNetwork {
    assert!(size >= 2, "a community needs at least two nodes");
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    let mut ids = Vec::with_capacity(communities * size);
    for _ in 0..communities * size {
        ids.push(net.add_node(Color(0)).unwrap());
    }
    for c in 0..communities {
        let base = c * size;
        for i in 0..size - 1 {
            net.add_link(ids[base + i], RelationType(0), 0.0, ids[base + i + 1])
                .unwrap();
            if i + 2 < size {
                net.add_link(ids[base + i], RelationType(1), 0.0, ids[base + i + 2])
                    .unwrap();
            }
        }
        if c + 1 < communities {
            net.add_link(ids[base + size - 1], RelationType(2), 0.0, ids[base + size])
                .unwrap();
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_sized() {
        let a = scale_free_network(50, 2, 7);
        let b = scale_free_network(50, 2, 7);
        assert_eq!(a.node_count(), 50);
        assert_eq!(a.link_count(), b.link_count());
        // Seed chain contributes m links, every later node m more.
        assert_eq!(a.link_count(), 2 + (50 - 3) * 2);

        let star = star_network(10);
        assert_eq!(star.node_count(), 11);
        assert_eq!(star.link_count(), 10);
        assert_eq!(star.links(NodeId(0)).count(), 10);

        let bridge = bridge_network(3, 4);
        assert_eq!(bridge.node_count(), 12);
        // Per community: 3 line + 2 chords; plus 2 bridges.
        assert_eq!(bridge.link_count(), 3 * 5 + 2);

        let chorded = chorded_network(20, 5, 3);
        assert!(chorded.link_count() >= 19);
        assert_eq!(line_network(8).link_count(), 7);
    }

    #[test]
    fn scale_free_grows_hubs() {
        let net = scale_free_network(120, 2, 42);
        let mut degree = vec![0usize; 120];
        for node in net.nodes() {
            for link in net.links(node) {
                degree[node.index()] += 1;
                degree[link.destination.index()] += 1;
            }
        }
        assert!(degree.iter().copied().max().unwrap() >= 6);
    }
}
