//! Typed identifiers for the SNAP-1 knowledge base.
//!
//! The paper's hardware tables use binary-encoded fields: a 15-bit node
//! address, 8-bit colors (256 node types), and 16-bit relation types
//! (64K distinct link types). Newtypes keep those namespaces statically
//! distinct ([C-NEWTYPE]).

use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of a semantic-network node.
///
/// Nodes represent concepts; a `NodeId` indexes the node, relation, and
/// marker-status tables. The SNAP-1 design point is `N = 32K` nodes.
///
/// # Examples
///
/// ```
/// use snap_kb::NodeId;
/// let n = NodeId(7);
/// assert_eq!(n.index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node's table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifier of a processing cluster (0..32 in the full prototype).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterId(pub u8);

impl ClusterId {
    /// Returns the cluster's array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A node color: the concept type or class a node belongs to.
///
/// SNAP-1 provides 256 colors; the node table stores one per node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Color(pub u8);

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "color{}", self.0)
    }
}

/// A relation (link) type, e.g. `is-a`, `agent`, `first`, `last`.
///
/// SNAP-1 supports `R = 64K` distinct relation types, so this is a 16-bit
/// value. The topmost type is reserved for internal subnode chaining (see
/// [`RelationType::SUBNODE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelationType(pub u16);

impl RelationType {
    /// Reserved relation used by the fanout preprocessor to chain a node to
    /// its overflow subnodes. Never visible to propagation rules.
    pub const SUBNODE: RelationType = RelationType(u16::MAX);

    /// Returns `true` if this is the reserved internal subnode relation.
    #[inline]
    pub fn is_subnode(self) -> bool {
        self == Self::SUBNODE
    }
}

impl fmt::Display for RelationType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_subnode() {
            write!(f, "<subnode>")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl From<u16> for RelationType {
    fn from(v: u16) -> Self {
        RelationType(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(42).to_string(), "n42");
        assert_eq!(NodeId(42).index(), 42);
        assert_eq!(NodeId::from(3u32), NodeId(3));
    }

    #[test]
    fn subnode_relation_is_reserved() {
        assert!(RelationType::SUBNODE.is_subnode());
        assert!(!RelationType(0).is_subnode());
        assert_eq!(RelationType::SUBNODE.to_string(), "<subnode>");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(ClusterId(0) < ClusterId(31));
        assert!(RelationType(5) < RelationType::SUBNODE);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ClusterId(7).to_string(), "c7");
        assert_eq!(Color(9).to_string(), "color9");
        assert_eq!(RelationType(11).to_string(), "r11");
    }
}
