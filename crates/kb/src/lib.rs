//! # snap-kb — semantic-network knowledge base for the SNAP-1 reproduction
//!
//! This crate provides the storage substrate of the Semantic Network Array
//! Processor (SNAP-1): the semantic network itself (nodes, colors, typed
//! weighted links), the bit-packed marker status tables that make global
//! boolean marker operations word-parallel, the per-node marker register
//! files (64 complex + 64 binary markers), and the partitioning functions
//! that distribute the network across processing clusters.
//!
//! The data layout follows Fig. 4 of the paper:
//!
//! * **node table** — color and per-node function for each of up to 32K
//!   nodes ([`SemanticNetwork`]);
//! * **marker status table** — one bit per (marker, node), packed into
//!   32-bit status words ([`StatusRow`], [`MarkerState`]);
//! * **relation table** — up to 16 outgoing typed links per node, with
//!   higher fanout split into subnode segments ([`RelationTable`]).
//!
//! # Examples
//!
//! Build the miniature knowledge base of the paper's Fig. 1 and mark a
//! node:
//!
//! ```
//! use snap_kb::{Color, Marker, MarkerState, NetworkConfig, RelationType, SemanticNetwork};
//!
//! let mut net = SemanticNetwork::new(NetworkConfig::default());
//! let is_a = RelationType(0);
//! let we = net.add_named_node("we", Color(1))?;
//! let animate = net.add_named_node("animate", Color(2))?;
//! net.add_link(we, is_a, 0.0, animate)?;
//!
//! let mut markers = MarkerState::new(net.node_count(), 64, 64);
//! markers.set(Marker::binary(0), we)?;
//! assert!(markers.test(Marker::binary(0), we));
//! # Ok::<(), snap_kb::KbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
mod error;
mod ids;
mod io;
mod links;
mod marker;
mod network;
mod partition;
pub mod reference;
mod status;
pub mod synth;

pub use bitmap::{Bitmap, BitmapBits, LanePlane, BITMAP_WORD_BITS};
pub use error::KbError;
pub use ids::{ClusterId, Color, NodeId, RelationType};
pub use io::ParseNetworkError;
pub use links::{Link, RelationTable, RevLink, ReverseTable, SLOTS_PER_NODE};
pub use marker::{Marker, MarkerKind, MarkerState, MarkerValue};
pub use network::{NetworkConfig, SemanticNetwork};
pub use partition::{
    ClusterLinks, Partition, PartitionScheme, PartitionStats, MAX_CLUSTERS, MAX_NODES_PER_CLUSTER,
};
pub use status::{SetBits, StatusRow, WORD_BITS};
