//! Linguistic knowledge-base construction.
//!
//! The SNAP knowledge base for linguistic processing is structured
//! hierarchically into layers: the **lexical layer** at the bottom (all
//! the words in the vocabulary), **semantic and syntactic constraints**
//! in the middle, and **concept sequences** at the top. The full SNAP
//! knowledge base had a 10 000-word lexicon and over 20 000 nonlexical
//! concepts, composed of roughly 75% basic concept sequences, 15%
//! concept-type hierarchy, 5% syntactic patterns, and 5% auxiliary
//! storage. The MUC-4 evaluation knowledge base ("terrorism in Latin
//! America") had about 12 000 nodes and 48 000 links.
//!
//! The original corpus and knowledge base are not available, so
//! [`DomainSpec::build`] generates a synthetic equivalent,
//! deterministically from a seed, with the same layer composition and
//! the structural statistics the evaluation depends on (fanout, path
//! lengths, and distractor sequences that grow with knowledge-base
//! size).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snap_isa::SymbolTable;
use snap_kb::{KbError, NetworkConfig, NodeId, SemanticNetwork};
use std::collections::HashMap;

/// Relation types of the linguistic knowledge base.
pub mod rel {
    use snap_kb::RelationType;

    /// Subsumption upward: word → category, category → supercategory.
    pub const IS_A: RelationType = RelationType(0);
    /// Subsumption downward (the inverse of [`IS_A`]).
    pub const SUBSUMES: RelationType = RelationType(1);
    /// Semantic constraint: category → concept-sequence element it can
    /// fill.
    pub const ELEM_OF: RelationType = RelationType(2);
    /// Concept-sequence structure: element → its root.
    pub const PART_OF: RelationType = RelationType(3);
    /// Root → element (used to propagate cancel markers downward).
    pub const HAS_ELEM: RelationType = RelationType(4);
    /// Root → auxiliary concept-sequence storage.
    pub const AUX_OF: RelationType = RelationType(5);
    /// Sequence element → the category that can fill it (the inverse of
    /// [`ELEM_OF`]), used to extract template fillers from accepted
    /// sequences.
    pub const FILLER: RelationType = RelationType(6);
}

/// Node colors of the linguistic knowledge base.
pub mod color {
    use snap_kb::Color;

    /// Lexical-layer word node.
    pub const WORD: Color = Color(1);
    /// Concept-type hierarchy category.
    pub const CATEGORY: Color = Color(2);
    /// Syntactic-pattern node.
    pub const SYNTAX: Color = Color(3);
    /// Concept-sequence element.
    pub const SEQ_ELEM: Color = Color(4);
    /// Concept-sequence root.
    pub const SEQ_ROOT: Color = Color(5);
    /// Auxiliary concept-sequence storage.
    pub const AUX: Color = Color(6);
    /// Leaf category (bottom of the hierarchy).
    pub const LEAF_CATEGORY: Color = Color(7);
}

/// Syntactic part of speech a word belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartOfSpeech {
    /// Nouns (fill agent/object/place roles).
    Noun,
    /// Verbs (fill action roles).
    Verb,
    /// Determiners.
    Determiner,
    /// Adjectives.
    Adjective,
    /// Prepositions.
    Preposition,
}

/// Base vocabulary of the terrorism-domain analogue, per part of speech.
const NOUNS: &[&str] = &[
    "guerrilla",
    "terrorist",
    "soldier",
    "mayor",
    "judge",
    "priest",
    "peasant",
    "journalist",
    "embassy",
    "ministry",
    "station",
    "pipeline",
    "bridge",
    "barracks",
    "village",
    "capital",
    "bomb",
    "rifle",
    "grenade",
    "mortar",
    "vehicle",
    "convoy",
    "hostage",
    "ransom",
];
const VERBS: &[&str] = &[
    "attacked",
    "bombed",
    "kidnapped",
    "ambushed",
    "murdered",
    "destroyed",
    "seized",
    "threatened",
    "claimed",
    "reported",
    "released",
    "detonated",
];
const DETERMINERS: &[&str] = &["the", "a", "this", "that", "several", "three"];
const ADJECTIVES: &[&str] = &[
    "armed",
    "unknown",
    "masked",
    "military",
    "urban",
    "rural",
    "responsible",
    "wounded",
];
const PREPOSITIONS: &[&str] = &["in", "near", "against", "with", "during", "from"];

/// Sizing of a synthetic linguistic knowledge base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSpec {
    /// Total target node count (lexicon + nonlexical concepts).
    pub total_nodes: usize,
    /// Random seed (everything is deterministic given the seed).
    pub seed: u64,
    /// Elements per concept sequence (the paper's sequences have a root
    /// plus a handful of elements).
    pub elements_per_sequence: usize,
}

impl DomainSpec {
    /// The MUC-4-like evaluation knowledge base (~12K nodes).
    pub fn muc4() -> Self {
        DomainSpec {
            total_nodes: 12_000,
            seed: 0x5AA9_1991,
            elements_per_sequence: 4,
        }
    }

    /// A knowledge base scaled to `total_nodes` with the paper's layer
    /// composition.
    pub fn sized(total_nodes: usize) -> Self {
        DomainSpec {
            total_nodes,
            ..Self::muc4()
        }
    }

    /// Builds the knowledge base.
    ///
    /// # Errors
    ///
    /// Returns [`KbError`] if `total_nodes` exceeds the 32K node
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `total_nodes` is too small to hold the base vocabulary
    /// (a few hundred nodes).
    pub fn build(&self) -> Result<LinguisticKb, KbError> {
        assert!(
            self.total_nodes >= 300,
            "domain needs at least 300 nodes, got {}",
            self.total_nodes
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let mut symbols = SymbolTable::new();
        symbols
            .relation("is-a", rel::IS_A)
            .relation("subsumes", rel::SUBSUMES)
            .relation("elem-of", rel::ELEM_OF)
            .relation("part-of", rel::PART_OF)
            .relation("has-elem", rel::HAS_ELEM)
            .relation("aux-of", rel::AUX_OF)
            .relation("filler", rel::FILLER);
        symbols
            .color("word", color::WORD)
            .color("category", color::CATEGORY)
            .color("syntax", color::SYNTAX)
            .color("seq-elem", color::SEQ_ELEM)
            .color("seq-root", color::SEQ_ROOT)
            .color("aux", color::AUX)
            .color("leaf-category", color::LEAF_CATEGORY);

        // Layer budget: 75% concept sequences, 15% hierarchy, 5% syntax,
        // 5% auxiliary — after the lexicon, which scales with the rest.
        let lexicon_target = (self.total_nodes / 6).clamp(60, 10_000);
        let nonlex = self.total_nodes - lexicon_target;
        let seq_budget = nonlex * 75 / 100;
        let hier_budget = (nonlex * 15 / 100).max(20);
        let syntax_budget = (nonlex * 5 / 100).max(8);
        let aux_budget = nonlex - seq_budget - hier_budget - syntax_budget;

        // --- syntactic patterns ---
        let mut syntax_nodes = HashMap::new();
        for (name, _) in [
            ("noun-phrase", PartOfSpeech::Noun),
            ("verb-phrase", PartOfSpeech::Verb),
            ("determiner", PartOfSpeech::Determiner),
            ("adjective-phrase", PartOfSpeech::Adjective),
            ("prep-phrase", PartOfSpeech::Preposition),
        ] {
            let id = net.add_named_node(name, color::SYNTAX)?;
            syntax_nodes.insert(name.to_string(), id);
        }
        for i in syntax_nodes.len()..syntax_budget {
            net.add_named_node(format!("syntax-pattern-{i}"), color::SYNTAX)?;
        }

        // --- concept-type hierarchy: a rooted tree, branching 3 (deep
        // enough that climbs run ~10 levels on the 12K KB, matching the
        // paper's 10–15 step propagation paths) ---
        let root = net.add_named_node("entity", color::CATEGORY)?;
        let mut categories = vec![root];
        let mut frontier = vec![root];
        while categories.len() < hier_budget {
            let parent = frontier.remove(0);
            let mut children = Vec::new();
            for _ in 0..3 {
                if categories.len() >= hier_budget {
                    break;
                }
                let idx = categories.len();
                let child = net.add_named_node(format!("category-{idx}"), color::CATEGORY)?;
                net.add_link(child, rel::IS_A, 0.1, parent)?;
                net.add_link(parent, rel::SUBSUMES, 0.1, child)?;
                categories.push(child);
                children.push(child);
            }
            frontier.extend(children);
            if frontier.is_empty() {
                break;
            }
        }
        // The current frontier is the set of leaf categories; recolor
        // them so leaf searches are one color scan.
        let leaves: Vec<NodeId> = frontier;
        for &leaf in &leaves {
            net.set_color(leaf, color::LEAF_CATEGORY)?;
        }
        let attach_points: &[NodeId] = if leaves.is_empty() {
            &categories
        } else {
            &leaves
        };

        // --- lexical layer ---
        let mut lexicon: HashMap<String, NodeId> = HashMap::new();
        let mut words_by_pos: HashMap<PartOfSpeech, Vec<String>> = HashMap::new();
        let add_word = |net: &mut SemanticNetwork,
                        rng: &mut StdRng,
                        word: String,
                        pos: PartOfSpeech,
                        lexicon: &mut HashMap<String, NodeId>,
                        words_by_pos: &mut HashMap<PartOfSpeech, Vec<String>>|
         -> Result<(), KbError> {
            if lexicon.contains_key(&word) {
                return Ok(());
            }
            let id = net.add_named_node(word.clone(), color::WORD)?;
            // Syntactic membership.
            let syn = match pos {
                PartOfSpeech::Noun => "noun-phrase",
                PartOfSpeech::Verb => "verb-phrase",
                PartOfSpeech::Determiner => "determiner",
                PartOfSpeech::Adjective => "adjective-phrase",
                PartOfSpeech::Preposition => "prep-phrase",
            };
            net.add_link(id, rel::IS_A, 0.05, syntax_nodes[syn])?;
            // Semantic membership: content words attach to a category.
            if matches!(pos, PartOfSpeech::Noun | PartOfSpeech::Verb) {
                let cat = attach_points[rng.gen_range(0..attach_points.len())];
                net.add_link(id, rel::IS_A, 0.1, cat)?;
                net.add_link(cat, rel::SUBSUMES, 0.1, id)?;
            }
            lexicon.insert(word.clone(), id);
            words_by_pos.entry(pos).or_default().push(word);
            Ok(())
        };

        let base: [(PartOfSpeech, &[&str]); 5] = [
            (PartOfSpeech::Noun, NOUNS),
            (PartOfSpeech::Verb, VERBS),
            (PartOfSpeech::Determiner, DETERMINERS),
            (PartOfSpeech::Adjective, ADJECTIVES),
            (PartOfSpeech::Preposition, PREPOSITIONS),
        ];
        for (pos, list) in base {
            for w in list {
                add_word(
                    &mut net,
                    &mut rng,
                    (*w).to_string(),
                    pos,
                    &mut lexicon,
                    &mut words_by_pos,
                )?;
            }
        }
        // Synthesize derived vocabulary to hit the lexicon budget
        // (numbered variants of nouns/verbs, like domain-specific
        // vocabulary in the real 10K lexicon).
        let mut k = 0usize;
        while lexicon.len() < lexicon_target {
            let (pos, stem) = if k.is_multiple_of(3) {
                (PartOfSpeech::Verb, VERBS[k / 3 % VERBS.len()])
            } else {
                (PartOfSpeech::Noun, NOUNS[k % NOUNS.len()])
            };
            add_word(
                &mut net,
                &mut rng,
                format!("{stem}-{k}"),
                pos,
                &mut lexicon,
                &mut words_by_pos,
            )?;
            k += 1;
        }

        // --- concept sequences ---
        // Each sequence is a root plus `elements_per_sequence` elements;
        // each element is constrained by one category. Relevant
        // sequences constrain leaf categories of common nouns/verbs;
        // distractor share grows with KB size (bigger domains contain
        // more sequences that partially match any given sentence).
        let per_seq = 1 + self.elements_per_sequence;
        let n_sequences = seq_budget / per_seq;
        let mut sequences = Vec::with_capacity(n_sequences);
        for s in 0..n_sequences {
            if net.node_count() + per_seq > self.total_nodes {
                break;
            }
            let root = net.add_named_node(format!("seq-{s}"), color::SEQ_ROOT)?;
            let mut element_cats = Vec::new();
            for e in 0..self.elements_per_sequence {
                let elem = net.add_named_node(format!("seq-{s}-e{e}"), color::SEQ_ELEM)?;
                net.add_link(elem, rel::PART_OF, 0.2, root)?;
                net.add_link(root, rel::HAS_ELEM, 0.2, elem)?;
                // Constraints live at every level of the hierarchy, so a
                // word's upward climb activates candidate elements all
                // the way up — the distractor fan that grows with
                // knowledge-base size.
                let cat = categories[rng.gen_range(0..categories.len())];
                net.add_link(cat, rel::ELEM_OF, 0.3, elem)?;
                net.add_link(elem, rel::FILLER, 0.3, cat)?;
                element_cats.push(cat);
            }
            sequences.push(ConceptSequence {
                root,
                element_categories: element_cats,
            });
        }

        // Guarantee every element constraint is satisfiable: each
        // constraining category must subsume at least one noun (or verb
        // for the action element) so the sentence generator can realize
        // it. Words may carry several semantic memberships, like the
        // real lexicon.
        let has_pos = |net: &SemanticNetwork,
                       cat: NodeId,
                       pool: &[String],
                       lexicon: &HashMap<String, NodeId>| {
            net.links_by(cat, rel::SUBSUMES).any(|l| {
                net.name(l.destination)
                    .is_some_and(|n| pool.iter().any(|w| w == n) && lexicon.contains_key(n))
            })
        };
        for seq in &sequences {
            for (e, &cat) in seq.element_categories.iter().enumerate() {
                let pos = if e == 1 {
                    PartOfSpeech::Verb
                } else {
                    PartOfSpeech::Noun
                };
                let pool = words_by_pos.get(&pos).cloned().unwrap_or_default();
                if !has_pos(&net, cat, &pool, &lexicon) {
                    let word = &pool[rng.gen_range(0..pool.len())];
                    let id = lexicon[word];
                    net.add_link(id, rel::IS_A, 0.1, cat)?;
                    net.add_link(cat, rel::SUBSUMES, 0.1, id)?;
                }
            }
        }

        // --- auxiliary storage ---
        let mut added_aux = 0;
        while added_aux < aux_budget && net.node_count() < self.total_nodes {
            let aux = net.add_named_node(format!("aux-{added_aux}"), color::AUX)?;
            if let Some(seq) = sequences.get(added_aux % sequences.len().max(1)) {
                net.add_link(seq.root, rel::AUX_OF, 0.1, aux)?;
            }
            added_aux += 1;
        }

        for (name, id) in &lexicon {
            symbols.node(name.clone(), *id);
        }

        Ok(LinguisticKb {
            network: net,
            symbols,
            lexicon,
            words_by_pos,
            categories,
            leaves,
            sequences,
            hierarchy_root: root,
        })
    }
}

/// One concept sequence: a root and the categories constraining its
/// elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConceptSequence {
    /// The sequence root node.
    pub root: NodeId,
    /// Category constraining each element, in element order.
    pub element_categories: Vec<NodeId>,
}

/// A generated linguistic knowledge base.
#[derive(Debug, Clone)]
pub struct LinguisticKb {
    /// The semantic network itself.
    pub network: SemanticNetwork,
    /// Symbol table for the assembler/disassembler.
    pub symbols: SymbolTable,
    /// Word → lexical node.
    pub lexicon: HashMap<String, NodeId>,
    /// Words grouped by part of speech (for sentence generation).
    pub words_by_pos: HashMap<PartOfSpeech, Vec<String>>,
    /// All hierarchy categories (index 0 is the root).
    pub categories: Vec<NodeId>,
    /// Leaf categories.
    pub leaves: Vec<NodeId>,
    /// All concept sequences.
    pub sequences: Vec<ConceptSequence>,
    /// Root of the concept-type hierarchy.
    pub hierarchy_root: NodeId,
}

impl LinguisticKb {
    /// The lexical node of `word`, if in the vocabulary.
    pub fn word(&self, word: &str) -> Option<NodeId> {
        self.lexicon.get(word).copied()
    }

    /// Words of the given part of speech.
    pub fn words(&self, pos: PartOfSpeech) -> &[String] {
        self.words_by_pos.get(&pos).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_at_target_size_with_layer_composition() {
        let kb = DomainSpec::sized(3000).build().unwrap();
        let n = kb.network.node_count();
        assert!((2500..=3000).contains(&n), "got {n} nodes");
        // Concept sequences dominate the nonlexical layers.
        let seq_nodes = kb.sequences.len() * 5;
        assert!(
            seq_nodes * 2 > n,
            "sequences are the bulk: {seq_nodes} of {n}"
        );
        assert!(!kb.leaves.is_empty());
        assert!(kb.network.link_count() > n, "links outnumber nodes");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = DomainSpec::sized(1000).build().unwrap();
        let b = DomainSpec::sized(1000).build().unwrap();
        assert_eq!(a.network.node_count(), b.network.node_count());
        assert_eq!(a.network.link_count(), b.network.link_count());
        assert_eq!(a.word("guerrilla"), b.word("guerrilla"));
        assert_eq!(a.sequences.len(), b.sequences.len());
    }

    #[test]
    fn words_connect_to_syntax_and_semantics() {
        let kb = DomainSpec::sized(1000).build().unwrap();
        let w = kb.word("bomb").unwrap();
        let links: Vec<_> = kb.network.links_by(w, rel::IS_A).collect();
        assert!(links.len() >= 2, "syntax + at least one semantic is-a link");
        let det = kb.word("the").unwrap();
        assert_eq!(
            kb.network.links_by(det, rel::IS_A).count(),
            1,
            "function words have only syntactic membership"
        );
    }

    #[test]
    fn sequences_constrained_by_categories() {
        let kb = DomainSpec::sized(2000).build().unwrap();
        let seq = &kb.sequences[0];
        assert_eq!(seq.element_categories.len(), 4);
        // Every element category reaches the element via ELEM_OF.
        let elems: Vec<NodeId> = kb
            .network
            .links_by(seq.root, rel::HAS_ELEM)
            .map(|l| l.destination)
            .collect();
        assert_eq!(elems.len(), 4);
        for (cat, elem) in seq.element_categories.iter().zip(&elems) {
            assert!(kb
                .network
                .links_by(*cat, rel::ELEM_OF)
                .any(|l| l.destination == *elem));
        }
    }

    #[test]
    fn bigger_domains_have_more_sequences() {
        let small = DomainSpec::sized(1000).build().unwrap();
        let large = DomainSpec::sized(8000).build().unwrap();
        assert!(large.sequences.len() > small.sequences.len() * 4);
    }

    #[test]
    fn hierarchy_reaches_root() {
        let kb = DomainSpec::sized(1000).build().unwrap();
        // Walk up from a leaf: must reach `entity`.
        let mut node = kb.leaves[0];
        for _ in 0..32 {
            if node == kb.hierarchy_root {
                break;
            }
            node = kb
                .network
                .links_by(node, rel::IS_A)
                .next()
                .expect("leaf category connects upward")
                .destination;
        }
        assert_eq!(node, kb.hierarchy_root);
    }
}
