//! Concept classification: find the concepts satisfying a feature set.
//!
//! Classification was one of the applications used to validate the SNAP
//! instruction set: markers propagate down from each feature category
//! and the concepts reached by **every** feature marker are the
//! classification result (a global set intersection — `AND-MARKER` —
//! after the propagation phase).

use crate::kb::rel;
use snap_isa::{CombineFunc, Program, PropRule, StepFunc};
use snap_kb::{Marker, NodeId};

/// Maximum features per classification query (marker budget).
pub const MAX_FEATURES: usize = 16;

/// Builds the classification program for the given feature categories:
/// concepts subsumed by all of them are collected with their total
/// subsumption cost.
///
/// # Panics
///
/// Panics if `features` is empty or longer than [`MAX_FEATURES`].
pub fn classification_program(features: &[NodeId]) -> Program {
    assert!(
        !features.is_empty() && features.len() <= MAX_FEATURES,
        "1..={MAX_FEATURES} features required"
    );
    let mut b = Program::builder();
    // Configuration + propagation: one marker pair per feature.
    for (i, &feature) in features.iter().enumerate() {
        let seed = Marker::binary(i as u8);
        let reach = Marker::complex(i as u8);
        b = b
            .clear_marker(seed)
            .clear_marker(reach)
            .search_node(feature, seed, 0.0)
            .propagate(
                seed,
                reach,
                PropRule::Star(rel::SUBSUMES),
                StepFunc::AddWeight,
            );
    }
    // Accumulation: intersect all reach sets.
    let result = Marker::complex(60);
    b = b.clear_marker(result);
    if features.len() == 1 {
        b = b.or_marker(
            Marker::complex(0),
            Marker::complex(0),
            result,
            CombineFunc::Left,
        );
    } else {
        b = b.and_marker(
            Marker::complex(0),
            Marker::complex(1),
            result,
            CombineFunc::Add,
        );
        for i in 2..features.len() {
            b = b.and_marker(result, Marker::complex(i as u8), result, CombineFunc::Add);
        }
    }
    b.collect_marker(result).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inheritance::hierarchy;
    use crate::kb::{color, DomainSpec};
    use snap_core::{EngineKind, Snap1};
    use snap_kb::SemanticNetwork;

    fn machine() -> Snap1 {
        Snap1::builder().clusters(4).engine(EngineKind::Des).build()
    }

    fn descendants(net: &SemanticNetwork, from: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            for l in net.links_by(n, rel::SUBSUMES) {
                out.push(l.destination);
                stack.push(l.destination);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn intersection_of_two_feature_subtrees() {
        let mut w = hierarchy(50, 3).unwrap();
        // Features: two siblings → their subtrees are disjoint, so
        // classifying on both yields nothing; classifying on an
        // ancestor/descendant pair yields the descendant's subtree.
        let net = &w.network;
        let child = net
            .links_by(w.root, rel::SUBSUMES)
            .next()
            .unwrap()
            .destination;
        let expected = descendants(net, child);
        let program = classification_program(&[w.root, child]);
        let report = machine().run(&mut w.network, &program).unwrap();
        assert_eq!(report.collects[0].node_ids(), expected);
    }

    #[test]
    fn disjoint_features_classify_to_nothing() {
        let mut w = hierarchy(50, 3).unwrap();
        let siblings: Vec<NodeId> = w
            .network
            .links_by(w.root, rel::SUBSUMES)
            .map(|l| l.destination)
            .collect();
        let program = classification_program(&[siblings[0], siblings[1]]);
        let report = machine().run(&mut w.network, &program).unwrap();
        assert!(report.collects[0].is_empty());
    }

    #[test]
    fn classification_over_domain_kb_finds_words() {
        let mut kb = DomainSpec::sized(1500).build().unwrap();
        // Classify on a leaf category: every word it subsumes appears.
        let leaf = kb.leaves[0];
        let program = classification_program(&[leaf]);
        let report = machine().run(&mut kb.network, &program).unwrap();
        let ids = report.collects[0].node_ids();
        for id in &ids {
            let c = kb.network.color(*id).unwrap();
            assert!(c == color::WORD || c == color::CATEGORY || c == color::LEAF_CATEGORY);
        }
    }

    #[test]
    #[should_panic(expected = "features required")]
    fn empty_features_rejected() {
        classification_program(&[]);
    }
}
