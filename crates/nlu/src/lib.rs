//! # snap-nlu — natural-language understanding on SNAP-1
//!
//! The application layer of the reproduction: everything the paper's
//! evaluation runs on top of the machine.
//!
//! * [`DomainSpec`] / [`LinguisticKb`] — synthetic linguistic knowledge
//!   bases with the paper's layer composition (lexicon, concept-type
//!   hierarchy, syntactic patterns, concept sequences, auxiliary
//!   storage) for the "terrorism in Latin America" MUC-4 analogue;
//! * [`SentenceGenerator`] — deterministic newswire-like sentences;
//! * [`PhrasalParser`] — the serial, controller-resident chunker
//!   (Table IV's "P.P. time");
//! * [`MemoryBasedParser`] — compiles clauses to SNAP marker programs
//!   and runs them on a [`snap_core::Snap1`] machine (Table IV's "M.B.
//!   time"), including the cancel-marker hypothesis-resolution phase;
//! * [`hierarchy`] / [`inheritance_program`] — the property-inheritance
//!   workload of Fig. 15;
//! * [`classification_program`] — the concept-classification workload;
//! * [`qa`] — role queries over accepted events (the information-
//!   extraction output of the MUC-4 task), compiled to marker programs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod inheritance;
pub mod kb;
pub mod parser;
pub mod phrasal;
pub mod qa;
pub mod sentence;

pub use classify::classification_program;
pub use inheritance::{hierarchy, inheritance_program, InheritanceWorkload};
pub use kb::{ConceptSequence, DomainSpec, LinguisticKb, PartOfSpeech};
pub use parser::{
    ClauseResult, EventTemplate, MemoryBasedParser, ParsePlan, ParseResult, RoleFiller,
};
pub use phrasal::{Clause, PhrasalParse, PhrasalParser, Phrase, PhraseKind};
pub use qa::{answer_template, ask_role, role_query_program, RoleAnswer, RoleQuery};
pub use sentence::{Sentence, SentenceGenerator};
