//! The phrasal parser.
//!
//! The phrasal parser is a **serial** program that executes on the
//! controller; its processing time is therefore independent of the
//! knowledge-base size (the "P.P. time" column of Table IV). Its role is
//! to break the input sentence into subparts — clauses of noun, verb,
//! and prepositional phrases — which the memory-based parser then
//! resolves against the semantic network.

use crate::kb::{LinguisticKb, PartOfSpeech};
use snap_mem::SimTime;
use std::collections::HashMap;

/// Controller time to process one token (serial chunker on the 32 MHz
/// controller).
pub const PER_TOKEN_NS: SimTime = 2_200_000;

/// Fixed controller setup time per sentence.
pub const SENTENCE_BASE_NS: SimTime = 4_000_000;

/// Kinds of phrase the chunker produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhraseKind {
    /// Noun phrase (`det adj* noun`).
    Noun,
    /// Verb phrase.
    Verb,
    /// Prepositional phrase (`prep det adj* noun`).
    Prepositional,
}

/// One chunked phrase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phrase {
    /// The phrase kind.
    pub kind: PhraseKind,
    /// The content (head) word.
    pub head: String,
    /// All words of the phrase, in order.
    pub words: Vec<String>,
}

/// One clause: the phrases between (and including) successive verb
/// phrases — the unit handed to the memory-based parser.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Clause {
    /// Phrases of the clause, in order.
    pub phrases: Vec<Phrase>,
}

/// Output of the phrasal parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhrasalParse {
    /// The clauses, in order.
    pub clauses: Vec<Clause>,
    /// Modelled serial controller time (ns) — the Table IV "P.P. time".
    pub pp_time_ns: SimTime,
}

/// The serial phrasal parser.
#[derive(Debug)]
pub struct PhrasalParser {
    pos_of: HashMap<String, PartOfSpeech>,
}

impl PhrasalParser {
    /// Builds the parser's part-of-speech lookup from the lexicon.
    pub fn new(kb: &LinguisticKb) -> Self {
        let mut pos_of = HashMap::new();
        for pos in [
            PartOfSpeech::Noun,
            PartOfSpeech::Verb,
            PartOfSpeech::Determiner,
            PartOfSpeech::Adjective,
            PartOfSpeech::Preposition,
        ] {
            for w in kb.words(pos) {
                pos_of.insert(w.clone(), pos);
            }
        }
        PhrasalParser { pos_of }
    }

    /// The part of speech of `word`, if known.
    pub fn pos(&self, word: &str) -> Option<PartOfSpeech> {
        self.pos_of.get(word).copied()
    }

    /// Chunks `words` into clauses of phrases. Unknown words are
    /// skipped (but still cost controller time).
    pub fn parse(&self, words: &[String]) -> PhrasalParse {
        let mut clauses = vec![Clause::default()];
        let mut pending: Vec<String> = Vec::new(); // det/adj/prep prefix
        let mut pending_prep = false;

        let flush_head = |clauses: &mut Vec<Clause>,
                          pending: &mut Vec<String>,
                          pending_prep: &mut bool,
                          head: &str,
                          kind: PhraseKind| {
            let kind = if *pending_prep && kind == PhraseKind::Noun {
                PhraseKind::Prepositional
            } else {
                kind
            };
            let mut phrase_words = std::mem::take(pending);
            phrase_words.push(head.to_string());
            *pending_prep = false;
            // A verb phrase — or a new plain noun phrase (the next
            // clause's subject) — after a completed clause core starts a
            // new clause. Prepositional phrases always attach to the
            // current clause.
            if kind != PhraseKind::Prepositional {
                let has_verb = clauses
                    .last()
                    .is_some_and(|c| c.phrases.iter().any(|p| p.kind == PhraseKind::Verb));
                let has_object = clauses.last().is_some_and(|c| {
                    c.phrases
                        .iter()
                        .filter(|p| p.kind != PhraseKind::Verb)
                        .count()
                        >= 2
                });
                if has_verb && has_object {
                    clauses.push(Clause::default());
                }
            }
            clauses
                .last_mut()
                .expect("clauses never empty")
                .phrases
                .push(Phrase {
                    kind,
                    head: head.to_string(),
                    words: phrase_words,
                });
        };

        for word in words {
            match self.pos(word) {
                Some(PartOfSpeech::Determiner) | Some(PartOfSpeech::Adjective) => {
                    pending.push(word.clone());
                }
                Some(PartOfSpeech::Preposition) => {
                    pending.push(word.clone());
                    pending_prep = true;
                }
                Some(PartOfSpeech::Noun) => {
                    flush_head(
                        &mut clauses,
                        &mut pending,
                        &mut pending_prep,
                        word,
                        PhraseKind::Noun,
                    );
                }
                Some(PartOfSpeech::Verb) => {
                    flush_head(
                        &mut clauses,
                        &mut pending,
                        &mut pending_prep,
                        word,
                        PhraseKind::Verb,
                    );
                }
                None => {}
            }
        }
        clauses.retain(|c| !c.phrases.is_empty());
        PhrasalParse {
            clauses,
            pp_time_ns: SENTENCE_BASE_NS + words.len() as SimTime * PER_TOKEN_NS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::DomainSpec;
    use crate::sentence::SentenceGenerator;

    fn words(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn chunks_basic_clause() {
        let kb = DomainSpec::sized(1000).build().unwrap();
        let parser = PhrasalParser::new(&kb);
        let parse = parser.parse(&words(
            "the armed guerrilla attacked the embassy in the village",
        ));
        assert_eq!(parse.clauses.len(), 1);
        let kinds: Vec<PhraseKind> = parse.clauses[0].phrases.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PhraseKind::Noun,
                PhraseKind::Verb,
                PhraseKind::Noun,
                PhraseKind::Prepositional
            ]
        );
        assert_eq!(parse.clauses[0].phrases[0].head, "guerrilla");
        assert_eq!(
            parse.clauses[0].phrases[0].words,
            words("the armed guerrilla")
        );
        assert_eq!(parse.clauses[0].phrases[3].head, "village");
    }

    #[test]
    fn second_verb_starts_new_clause() {
        let kb = DomainSpec::sized(1000).build().unwrap();
        let parser = PhrasalParser::new(&kb);
        let parse = parser.parse(&words(
            "the guerrilla attacked the embassy the soldier seized the bridge",
        ));
        assert_eq!(parse.clauses.len(), 2);
        assert_eq!(parse.clauses[1].phrases[0].head, "soldier");
        assert_eq!(parse.clauses[1].phrases[1].head, "seized");
        assert_eq!(parse.clauses[1].phrases[2].head, "bridge");
    }

    #[test]
    fn pp_time_depends_only_on_length() {
        let kb_small = DomainSpec::sized(1000).build().unwrap();
        let kb_large = DomainSpec::sized(6000).build().unwrap();
        let sentence = words("the guerrilla attacked the embassy");
        let a = PhrasalParser::new(&kb_small).parse(&sentence).pp_time_ns;
        let b = PhrasalParser::new(&kb_large).parse(&sentence).pp_time_ns;
        assert_eq!(a, b, "serial controller time is KB-independent");
        assert_eq!(a, SENTENCE_BASE_NS + 5 * PER_TOKEN_NS);
    }

    #[test]
    fn generated_sentences_chunk_into_clauses() {
        let kb = DomainSpec::sized(3000).build().unwrap();
        let mut generator = SentenceGenerator::new(&kb, 11);
        let parser = PhrasalParser::new(&kb);
        for min_len in [9, 18, 27] {
            let s = generator.generate(min_len);
            let parse = parser.parse(&s.words);
            assert!(!parse.clauses.is_empty());
            assert!(
                parse.clauses.len() >= s.target_sequences.len(),
                "roughly one clause per target"
            );
            for clause in &parse.clauses {
                assert!(clause.phrases.len() <= 6);
            }
        }
    }

    #[test]
    fn unknown_words_are_skipped() {
        let kb = DomainSpec::sized(1000).build().unwrap();
        let parser = PhrasalParser::new(&kb);
        let parse = parser.parse(&words("zzz the guerrilla qqq attacked"));
        assert_eq!(parse.clauses.len(), 1);
        assert_eq!(parse.clauses[0].phrases.len(), 2);
    }
}
