//! Question answering over parsed events.
//!
//! The point of the MUC-4 task is information extraction: after the
//! memory-based parser accepts an event's concept sequence, downstream
//! components query the knowledge base about it ("who was the agent?",
//! "what kind of target?"). This module compiles such role queries to
//! marker programs — the same inferencing machinery the paper's
//! applications are built from — and interprets the collected results.

use crate::kb::{color, rel};
use crate::parser::EventTemplate;
use snap_core::{CollectOutput, CoreError, Snap1};
use snap_isa::{CombineFunc, Program, PropRule, StepFunc};
use snap_kb::{Marker, NodeId, SemanticNetwork};

/// A role query: which concepts can fill element `element_index` of the
/// accepted sequence, optionally restricted to concepts mentioned in
/// the sentence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleQuery {
    /// Root of the accepted concept sequence.
    pub root: NodeId,
    /// Element position within the sequence (0-based).
    pub element_index: usize,
    /// Restrict answers to these mentioned concepts (e.g. the sentence's
    /// word nodes). Empty = no restriction.
    pub mentioned: Vec<NodeId>,
}

/// Compiles a role query to a SNAP program:
///
/// 1. mark the sequence root and walk `has-elem → filler → subsumes*`
///    to reach every concept that can fill the role (restricted to the
///    queried element by seeding it directly);
/// 2. mark the mentioned concepts;
/// 3. intersect and collect.
///
/// # Panics
///
/// Panics if the query's mentioned set exceeds 32 concepts (marker
/// budget for the seed phase).
pub fn role_query_program(network: &SemanticNetwork, query: &RoleQuery) -> Option<Program> {
    assert!(query.mentioned.len() <= 32, "too many mentioned concepts");
    // Resolve the element node at the queried position.
    let element = network
        .links_by(query.root, rel::HAS_ELEM)
        .nth(query.element_index)?
        .destination;
    let seed = Marker::binary(0);
    let reach = Marker::complex(1);
    let mention = Marker::binary(2);
    let answer = Marker::complex(3);
    let mut b = Program::builder()
        .clear_marker(seed)
        .clear_marker(reach)
        .clear_marker(mention)
        .clear_marker(answer)
        .search_node(element, seed, 0.0)
        // filler → category, then the subsumption closure downward.
        .propagate(
            seed,
            reach,
            PropRule::Spread(rel::FILLER, rel::SUBSUMES),
            StepFunc::AddWeight,
        );
    if query.mentioned.is_empty() {
        b = b.or_marker(reach, reach, answer, CombineFunc::Left);
    } else {
        for &node in &query.mentioned {
            b = b.search_node(node, mention, 0.0);
        }
        b = b.and_marker(reach, mention, answer, CombineFunc::Left);
    }
    Some(b.collect_marker(answer).build())
}

/// The interpreted answer to a role query.
#[derive(Debug, Clone, PartialEq)]
pub struct RoleAnswer {
    /// The element node queried.
    pub element: NodeId,
    /// Word-level answers (mentioned concepts or vocabulary), with the
    /// subsumption cost from the role's category, cheapest first.
    pub answers: Vec<(NodeId, f32)>,
}

/// Runs a role query on `machine` and interprets the result.
///
/// # Errors
///
/// Returns [`CoreError`] if the compiled query fails. Returns
/// `Ok(None)` when the sequence has no element at the queried position.
pub fn ask_role(
    network: &mut SemanticNetwork,
    machine: &Snap1,
    query: &RoleQuery,
) -> Result<Option<RoleAnswer>, CoreError> {
    let Some(program) = role_query_program(network, query) else {
        return Ok(None);
    };
    let element = network
        .links_by(query.root, rel::HAS_ELEM)
        .nth(query.element_index)
        .expect("checked by role_query_program")
        .destination;
    let report = machine.run(network, &program)?;
    let CollectOutput::Nodes(nodes) = &report.collects[0] else {
        unreachable!("collect-marker returns nodes");
    };
    let mut answers: Vec<(NodeId, f32)> = nodes
        .iter()
        .filter(|(n, _)| network.color(*n).is_ok_and(|c| c == color::WORD))
        .map(|(n, v)| (*n, v.map_or(0.0, |v| v.value)))
        .collect();
    answers.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    Ok(Some(RoleAnswer { element, answers }))
}

/// Answers every role of an extracted [`EventTemplate`], restricted to
/// the given mentioned concepts.
///
/// # Errors
///
/// Returns [`CoreError`] if a query program fails.
pub fn answer_template(
    network: &mut SemanticNetwork,
    machine: &Snap1,
    template: &EventTemplate,
    mentioned: &[NodeId],
) -> Result<Vec<RoleAnswer>, CoreError> {
    let mut out = Vec::new();
    for i in 0..template.roles.len() {
        let query = RoleQuery {
            root: template.root,
            element_index: i,
            mentioned: mentioned.to_vec(),
        };
        if let Some(answer) = ask_role(network, machine, &query)? {
            out.push(answer);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::DomainSpec;
    use crate::parser::MemoryBasedParser;
    use crate::sentence::SentenceGenerator;
    use snap_core::EngineKind;

    fn machine() -> Snap1 {
        Snap1::builder().clusters(4).engine(EngineKind::Des).build()
    }

    #[test]
    fn role_query_finds_fillers() {
        let mut kb = DomainSpec::sized(1_500).build().unwrap();
        let seq = kb.sequences[0].clone();
        let query = RoleQuery {
            root: seq.root,
            element_index: 0,
            mentioned: Vec::new(),
        };
        let answer = ask_role(&mut kb.network, &machine(), &query)
            .unwrap()
            .expect("element 0 exists");
        assert!(!answer.answers.is_empty(), "role has vocabulary fillers");
        // Every answer is a word subsumed (transitively) by the element's
        // constraining category.
        for (node, _) in &answer.answers {
            assert_eq!(kb.network.color(*node).unwrap(), color::WORD);
        }
    }

    #[test]
    fn mentioned_restriction_filters_answers() {
        let mut kb = DomainSpec::sized(1_500).build().unwrap();
        let kb_ro = kb.clone();
        let mut generator = SentenceGenerator::new(&kb_ro, 31);
        let sentence = generator.generate(9);
        let parser = MemoryBasedParser::new(&kb_ro);
        let result = parser
            .parse(&mut kb.network, &machine(), &sentence)
            .unwrap();
        let template = result.templates[0].as_ref().expect("winning template");
        let mentioned: Vec<NodeId> = sentence
            .words
            .iter()
            .filter_map(|w| kb_ro.word(w))
            .collect();
        let answers = answer_template(&mut kb.network, &machine(), template, &mentioned).unwrap();
        assert_eq!(answers.len(), template.roles.len());
        // Restricted answers only contain mentioned concepts, and at
        // least one role is answered by a sentence word.
        let total: usize = answers.iter().map(|a| a.answers.len()).sum();
        assert!(total > 0, "some role answered from the sentence");
        for a in &answers {
            for (node, _) in &a.answers {
                assert!(mentioned.contains(node));
            }
        }
    }

    #[test]
    fn out_of_range_element_is_none() {
        let mut kb = DomainSpec::sized(1_000).build().unwrap();
        let seq = kb.sequences[0].clone();
        let query = RoleQuery {
            root: seq.root,
            element_index: 99,
            mentioned: Vec::new(),
        };
        assert!(ask_role(&mut kb.network, &machine(), &query)
            .unwrap()
            .is_none());
    }
}
