//! Property inheritance: the Fig. 15 workload.
//!
//! Inheritance of attributes from concepts in the knowledge-base
//! hierarchy is a basic inferencing operation: a property marked at the
//! hierarchy root is propagated down the subsumption links until every
//! leaf inherits it. The paper measures this root-to-leaf inheritance on
//! SNAP-1 versus the CM-2 for knowledge bases up to 6.4K nodes.

use crate::kb::{color, rel};
use snap_isa::{CombineFunc, Program, PropRule, StepFunc};
use snap_kb::{KbError, Marker, NetworkConfig, NodeId, SemanticNetwork};

/// A generated inheritance hierarchy.
#[derive(Debug, Clone)]
pub struct InheritanceWorkload {
    /// The hierarchy network (categories with `is-a`/`subsumes` links).
    pub network: SemanticNetwork,
    /// The root concept.
    pub root: NodeId,
    /// The leaf concepts.
    pub leaves: Vec<NodeId>,
    /// Tree depth (root-to-leaf path length).
    pub depth: usize,
}

/// Builds a balanced concept hierarchy with `nodes` nodes and the given
/// branching factor.
///
/// # Errors
///
/// Returns [`KbError`] if `nodes` exceeds the network capacity.
///
/// # Panics
///
/// Panics if `nodes` is zero or `branching` is less than two.
pub fn hierarchy(nodes: usize, branching: usize) -> Result<InheritanceWorkload, KbError> {
    assert!(nodes > 0, "hierarchy needs at least one node");
    assert!(branching >= 2, "branching must be at least two");
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    let root = net.add_named_node("concept-0", color::CATEGORY)?;
    let mut all = vec![root];
    let mut depth_of = vec![0usize];
    let mut next_parent = 0usize;
    while all.len() < nodes {
        let parent = all[next_parent];
        let mut filled = true;
        for _ in 0..branching {
            if all.len() >= nodes {
                filled = false;
                break;
            }
            let idx = all.len();
            let child = net.add_named_node(format!("concept-{idx}"), color::CATEGORY)?;
            net.add_link(child, rel::IS_A, 0.1, parent)?;
            net.add_link(parent, rel::SUBSUMES, 0.1, child)?;
            all.push(child);
            depth_of.push(depth_of[next_parent] + 1);
        }
        if filled {
            next_parent += 1;
        } else {
            break;
        }
    }
    // Leaves: nodes with no subsumes links.
    let leaves: Vec<NodeId> = all
        .iter()
        .copied()
        .filter(|&n| net.links_by(n, rel::SUBSUMES).next().is_none())
        .collect();
    for &leaf in &leaves {
        net.set_color(leaf, color::LEAF_CATEGORY)?;
    }
    let depth = depth_of.iter().copied().max().unwrap_or(0);
    Ok(InheritanceWorkload {
        network: net,
        root,
        leaves,
        depth,
    })
}

/// The root-to-leaf inheritance program: mark the property at `root`,
/// propagate it down every subsumption chain, and collect the leaves
/// that inherited it.
pub fn inheritance_program(root: NodeId) -> Program {
    let property = Marker::binary(0);
    let inherited = Marker::complex(1);
    let leaf = Marker::binary(2);
    let result = Marker::complex(3);
    Program::builder()
        .clear_marker(property)
        .clear_marker(inherited)
        .clear_marker(leaf)
        .clear_marker(result)
        .search_node(root, property, 0.0)
        .propagate(
            property,
            inherited,
            PropRule::Star(rel::SUBSUMES),
            StepFunc::AddWeight,
        )
        .search_color(color::LEAF_CATEGORY, leaf, 0.0)
        .and_marker(inherited, leaf, result, CombineFunc::Left)
        .collect_marker(result)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_core::{EngineKind, Snap1};

    #[test]
    fn hierarchy_shape() {
        let w = hierarchy(100, 4).unwrap();
        assert_eq!(w.network.node_count(), 100);
        assert!(!w.leaves.is_empty());
        assert!(w.depth >= 3, "100 nodes at branching 4 → depth ≥ 3");
        // Link count: every non-root node has is-a + subsumes.
        assert_eq!(w.network.link_count(), 2 * 99);
    }

    #[test]
    fn every_leaf_inherits_the_property() {
        let mut w = hierarchy(200, 4).unwrap();
        let program = inheritance_program(w.root);
        let machine = Snap1::builder().clusters(4).engine(EngineKind::Des).build();
        let report = machine.run(&mut w.network, &program).unwrap();
        let collected = report.collects[0].node_ids();
        assert_eq!(collected, w.leaves, "all leaves inherit");
    }

    #[test]
    fn inheritance_cost_tracks_depth() {
        let mut w = hierarchy(85, 4).unwrap(); // perfect-ish tree of depth 3
        let program = inheritance_program(w.root);
        let machine = Snap1::builder()
            .clusters(2)
            .engine(EngineKind::Sequential)
            .build();
        let report = machine.run(&mut w.network, &program).unwrap();
        assert_eq!(report.max_propagation_depth as usize, w.depth);
        // Inherited cost = 0.1 per level.
        let snap_core::CollectOutput::Nodes(nodes) = &report.collects[0] else {
            panic!("expected nodes");
        };
        for (node, value) in nodes {
            let v = value.unwrap();
            assert!(
                (v.value - 0.1 * w.depth as f32).abs() < 1e-4,
                "leaf {node} cost {}",
                v.value
            );
        }
    }
}
