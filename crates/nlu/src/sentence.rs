//! Deterministic sentence generation for the MUC-4-like workload.
//!
//! The original evaluation parsed newswire sentences about terrorism in
//! Latin America. The corpus is unavailable, so sentences are generated
//! from clause templates over the synthetic domain vocabulary, each
//! clause targeted at a concept sequence in the knowledge base so that a
//! correct parse exists. Sentence length scales by appending clauses and
//! prepositional attachments, which is what drives the paper's "time
//! roughly proportional to sentence length" behaviour.

use crate::kb::{rel, LinguisticKb, PartOfSpeech};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snap_kb::NodeId;

/// A generated sentence with its intended interpretations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// The words, in order. Every content word is in the lexicon.
    pub words: Vec<String>,
    /// Indices (into [`LinguisticKb::sequences`]) of the concept
    /// sequences each clause was generated from.
    pub target_sequences: Vec<usize>,
}

impl Sentence {
    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` for an empty sentence.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The sentence as a display string.
    pub fn text(&self) -> String {
        self.words.join(" ")
    }
}

/// Deterministic sentence generator over a knowledge base.
#[derive(Debug)]
pub struct SentenceGenerator<'kb> {
    kb: &'kb LinguisticKb,
    rng: StdRng,
}

impl<'kb> SentenceGenerator<'kb> {
    /// Creates a generator with the given seed.
    pub fn new(kb: &'kb LinguisticKb, seed: u64) -> Self {
        SentenceGenerator {
            kb,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A word of the given part of speech subsumed by `category`, or any
    /// word of that part of speech when the category has no vocabulary.
    fn word_in(&mut self, category: NodeId, pos: PartOfSpeech) -> String {
        let candidates: Vec<&str> = self
            .kb
            .network
            .links_by(category, rel::SUBSUMES)
            .filter_map(|l| self.kb.network.name(l.destination))
            .filter(|name| self.kb.words(pos).iter().any(|w| w == name))
            .collect();
        if candidates.is_empty() {
            let pool = self.kb.words(pos);
            pool[self.rng.gen_range(0..pool.len())].to_string()
        } else {
            candidates[self.rng.gen_range(0..candidates.len())].to_string()
        }
    }

    fn any(&mut self, pos: PartOfSpeech) -> String {
        let pool = self.kb.words(pos);
        pool[self.rng.gen_range(0..pool.len())].to_string()
    }

    /// Generates one clause targeted at concept sequence `seq_idx`:
    /// `det [adj] noun verb det noun prep det noun`.
    fn clause(&mut self, seq_idx: usize, with_adjective: bool) -> Vec<String> {
        let seq = &self.kb.sequences[seq_idx];
        let cats = &seq.element_categories;
        let mut words = Vec::new();
        words.push(self.any(PartOfSpeech::Determiner));
        if with_adjective {
            words.push(self.any(PartOfSpeech::Adjective));
        }
        words.push(self.word_in(cats[0], PartOfSpeech::Noun));
        words.push(self.word_in(cats[1 % cats.len()], PartOfSpeech::Verb));
        words.push(self.any(PartOfSpeech::Determiner));
        words.push(self.word_in(cats[2 % cats.len()], PartOfSpeech::Noun));
        words.push(self.any(PartOfSpeech::Preposition));
        words.push(self.any(PartOfSpeech::Determiner));
        words.push(self.word_in(cats[3 % cats.len()], PartOfSpeech::Noun));
        words
    }

    /// Generates a sentence of at least `min_words` words by appending
    /// clauses.
    pub fn generate(&mut self, min_words: usize) -> Sentence {
        let mut words = Vec::new();
        let mut targets = Vec::new();
        while words.len() < min_words {
            let seq_idx = self.rng.gen_range(0..self.kb.sequences.len());
            targets.push(seq_idx);
            let with_adj = words.len() + 9 < min_words;
            words.extend(self.clause(seq_idx, with_adj));
        }
        Sentence {
            words,
            target_sequences: targets,
        }
    }

    /// The four evaluation sentences S1–S4 of increasing length (the
    /// shape of Table IV).
    pub fn evaluation_set(&mut self) -> Vec<Sentence> {
        [8, 14, 20, 27].iter().map(|&n| self.generate(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::DomainSpec;

    #[test]
    fn sentences_use_lexicon_words_only() {
        let kb = DomainSpec::sized(2000).build().unwrap();
        let mut generator = SentenceGenerator::new(&kb, 7);
        let s = generator.generate(12);
        assert!(s.len() >= 12);
        for w in &s.words {
            assert!(kb.word(w).is_some(), "word `{w}` missing from lexicon");
        }
        assert!(!s.target_sequences.is_empty());
        assert!(!s.text().is_empty());
    }

    #[test]
    fn evaluation_set_has_increasing_lengths() {
        let kb = DomainSpec::sized(2000).build().unwrap();
        let mut generator = SentenceGenerator::new(&kb, 7);
        let set = generator.evaluation_set();
        assert_eq!(set.len(), 4);
        for pair in set.windows(2) {
            assert!(pair[1].len() > pair[0].len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let kb = DomainSpec::sized(2000).build().unwrap();
        let a = SentenceGenerator::new(&kb, 42).generate(15);
        let b = SentenceGenerator::new(&kb, 42).generate(15);
        assert_eq!(a, b);
        let c = SentenceGenerator::new(&kb, 43).generate(15);
        assert_ne!(a, c, "different seeds vary");
    }
}
