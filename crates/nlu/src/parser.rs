//! The memory-based parser: compiling clauses to SNAP programs.
//!
//! Parsing on SNAP-1 works by passing markers through the knowledge
//! base: as input words are read, markers are set on the corresponding
//! lexical nodes, propagated upward through the semantic and syntactic
//! layers performing constraint checks, and the suitable concept
//! sequences are activated. After propagation, hypotheses with
//! incomplete support are removed by propagating **cancel markers** (the
//! multiple-hypothesis-resolution phase whose cost grows with knowledge
//! base size — Fig. 20), the surviving costs are thresholded, and the
//! winners are collected.

use crate::kb::{color, rel, LinguisticKb};
use crate::phrasal::{PhrasalParse, PhrasalParser};
use crate::sentence::Sentence;
use snap_core::{CollectOutput, CoreError, RunReport, Snap1};
use snap_isa::{
    Cmp, CombineFunc, Program, PropRule, RuleArc, RuleProgram, RuleState, StepFunc, ValueFunc,
};
use snap_kb::{Marker, NodeId};
use snap_mem::SimTime;

/// Maximum content phrases compiled per sentence (marker-register
/// budget).
pub const MAX_PHRASES: usize = 16;

/// Maximum clauses compiled per sentence.
pub const MAX_CLAUSES: usize = 8;

/// Hypotheses costlier than this are discarded during resolution.
pub const COST_THRESHOLD: f32 = 6.0;

/// The marker assignment used by compiled parse programs.
#[derive(Debug, Clone, Copy)]
struct Registers;

impl Registers {
    fn word(g: usize) -> Marker {
        Marker::binary(g as u8)
    }
    fn climb(g: usize) -> Marker {
        Marker::complex(g as u8)
    }
    fn root(g: usize) -> Marker {
        Marker::complex(16 + g as u8)
    }
    fn winner(c: usize) -> Marker {
        Marker::complex(40 + c as u8)
    }
    fn candidate(c: usize) -> Marker {
        Marker::complex(48 + c as u8)
    }
    fn cancel(c: usize) -> Marker {
        Marker::complex(56 + c as u8)
    }
    fn not_winner(c: usize) -> Marker {
        Marker::binary(32 + c as u8)
    }
    fn cancel_down(c: usize) -> Marker {
        Marker::binary(40 + c as u8)
    }
    fn fillers(c: usize) -> Marker {
        Marker::binary(48 + c as u8)
    }
}

/// A compiled parse: the SNAP program plus bookkeeping.
#[derive(Debug, Clone)]
pub struct ParsePlan {
    /// The compiled marker-propagation program.
    pub program: Program,
    /// Winner marker per clause (its `COLLECT-MARKER` output appears in
    /// the same order in the run report).
    pub winner_markers: Vec<Marker>,
    /// Content phrases compiled, per clause.
    pub phrases_per_clause: Vec<usize>,
}

/// One clause's accepted interpretations.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseResult {
    /// Accepted concept-sequence roots with their costs, cheapest first.
    pub winners: Vec<(NodeId, f32)>,
}

/// One role of an extracted event template: a concept-sequence element,
/// the category constraining it, and the concepts that can fill it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleFiller {
    /// The concept-sequence element node.
    pub element: NodeId,
    /// The category constraining the element (via the `filler` link).
    pub category: NodeId,
    /// Word-level concepts subsumed by the category, ascending.
    pub fillers: Vec<NodeId>,
}

/// An instantiated event template — the MUC-4-style extraction output
/// for one accepted concept sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTemplate {
    /// The accepted concept-sequence root.
    pub root: NodeId,
    /// One entry per sequence element, in element order.
    pub roles: Vec<RoleFiller>,
}

/// A full parse result.
#[derive(Debug, Clone)]
pub struct ParseResult {
    /// Per-clause interpretations.
    pub clauses: Vec<ClauseResult>,
    /// The event template of each clause's best interpretation (host-side
    /// retrieval over the filler markers the program propagated).
    pub templates: Vec<Option<EventTemplate>>,
    /// Serial phrasal-parser time (KB-independent).
    pub pp_time_ns: SimTime,
    /// Memory-based parser time (the machine's simulated run time).
    pub mb_time_ns: SimTime,
    /// The machine's full measurement report.
    pub report: RunReport,
}

impl ParseResult {
    /// Total parse time: phrasal + memory-based.
    pub fn total_ns(&self) -> SimTime {
        self.pp_time_ns + self.mb_time_ns
    }
}

/// The memory-based parser.
///
/// Owns its lexicon snapshot, so the knowledge base's network can be
/// borrowed mutably while parsing.
#[derive(Debug)]
pub struct MemoryBasedParser {
    lexicon: std::collections::HashMap<String, NodeId>,
    phrasal: PhrasalParser,
}

impl MemoryBasedParser {
    /// Creates a parser over `kb`.
    pub fn new(kb: &LinguisticKb) -> Self {
        MemoryBasedParser {
            lexicon: kb.lexicon.clone(),
            phrasal: PhrasalParser::new(kb),
        }
    }

    /// The phrasal front end.
    pub fn phrasal(&self) -> &PhrasalParser {
        &self.phrasal
    }

    /// Compiles the chunked sentence into a SNAP program.
    pub fn compile(&self, parse: &PhrasalParse) -> ParsePlan {
        // Sentences are processed incrementally, clause by clause, as
        // the words are read; within each clause the program follows the
        // paper's three phases — configuration (clears + searches),
        // propagation (the clause's climbs overlap, β-parallelism), and
        // accumulation/resolution.
        let mut winner_markers = Vec::new();
        let mut phrases_per_clause = Vec::new();
        let mut b = Program::builder();
        let mut g = 0usize; // global phrase register index

        for (c, clause) in parse.clauses.iter().take(MAX_CLAUSES).enumerate() {
            // Gather the clause's content phrases and their lexical nodes.
            let mut regs: Vec<usize> = Vec::new();
            let mut nodes_of: Vec<Vec<snap_kb::NodeId>> = Vec::new();
            for phrase in &clause.phrases {
                if g + regs.len() >= MAX_PHRASES {
                    break;
                }
                let nodes: Vec<snap_kb::NodeId> = phrase
                    .words
                    .iter()
                    .filter(|w| **w == phrase.head)
                    .filter_map(|w| self.lexicon.get(w).copied())
                    .collect();
                if nodes.is_empty() {
                    continue;
                }
                regs.push(g + regs.len());
                nodes_of.push(nodes);
            }
            if regs.is_empty() {
                continue;
            }
            g += regs.len();

            // ----- configuration phase -----
            for (&r, nodes) in regs.iter().zip(&nodes_of) {
                b = b
                    .clear_marker(Registers::word(r))
                    .clear_marker(Registers::climb(r))
                    .clear_marker(Registers::root(r));
                for &node in nodes {
                    b = b.search_node(node, Registers::word(r), 0.0);
                }
            }
            let winner = Registers::winner(c);
            let candidate = Registers::candidate(c);
            b = b
                .clear_marker(winner)
                .clear_marker(candidate)
                .clear_marker(Registers::cancel(c))
                .clear_marker(Registers::cancel_down(c))
                .clear_marker(Registers::fillers(c));

            // ----- propagation phase: the clause's climbs overlap -----
            for &r in &regs {
                b = b.propagate(
                    Registers::word(r),
                    Registers::climb(r),
                    PropRule::Spread(rel::IS_A, rel::ELEM_OF),
                    StepFunc::AddWeight,
                );
            }
            for &r in &regs {
                b = b.propagate(
                    Registers::climb(r),
                    Registers::root(r),
                    PropRule::Once(rel::PART_OF),
                    StepFunc::AddWeight,
                );
            }

            // ----- accumulation phase -----
            // Winners: roots supported by every phrase; candidates: any
            // partial activation.
            let first = Registers::root(regs[0]);
            if regs.len() == 1 {
                b = b.or_marker(first, first, winner, CombineFunc::Left);
            } else {
                b = b.and_marker(first, Registers::root(regs[1]), winner, CombineFunc::Add);
                for &j in &regs[2..] {
                    b = b.and_marker(winner, Registers::root(j), winner, CombineFunc::Add);
                }
            }
            b = b.or_marker(first, first, candidate, CombineFunc::Left);
            for &j in &regs[1..] {
                b = b.or_marker(candidate, Registers::root(j), candidate, CombineFunc::Add);
            }

            // Multiple-hypothesis resolution: cancel markers sweep down
            // through the elements and auxiliary storage of the losing
            // candidates, then the surviving costs are thresholded.
            b = b
                .not_marker(winner, Registers::not_winner(c))
                .and_marker(
                    candidate,
                    Registers::not_winner(c),
                    Registers::cancel(c),
                    CombineFunc::Left,
                )
                .propagate(
                    Registers::cancel(c),
                    Registers::cancel_down(c),
                    PropRule::Union(rel::HAS_ELEM, rel::AUX_OF),
                    StepFunc::Identity,
                )
                .func_marker(winner, ValueFunc::ClearIf(Cmp::Gt, COST_THRESHOLD));

            // Template extraction: from the accepted sequences, walk down
            // to each element, across to its filler category, and through
            // the subsumption closure to every concept that can
            // instantiate the role — the wide, data-parallel propagation
            // that fills the MUC-4 event template.
            b = b
                .propagate(
                    winner,
                    Registers::fillers(c),
                    PropRule::Custom(RuleProgram::from_states(vec![
                        RuleState::new(vec![RuleArc::new(rel::HAS_ELEM, 1)]),
                        RuleState::new(vec![RuleArc::new(rel::FILLER, 2)]),
                        RuleState::new(vec![RuleArc::new(rel::SUBSUMES, 2)]),
                    ])),
                    StepFunc::Identity,
                )
                .collect_marker(winner);
            winner_markers.push(winner);
            phrases_per_clause.push(regs.len());
        }
        ParsePlan {
            program: b.build(),
            winner_markers,
            phrases_per_clause,
        }
    }

    /// Extracts the event template of an accepted concept sequence by
    /// reading the network the filler markers were propagated over:
    /// `root → has-elem → element → filler → category → subsumes* words`.
    pub fn extract_template(network: &snap_kb::SemanticNetwork, root: NodeId) -> EventTemplate {
        let mut roles = Vec::new();
        for elem_link in network.links_by(root, rel::HAS_ELEM) {
            let element = elem_link.destination;
            for filler_link in network.links_by(element, rel::FILLER) {
                let category = filler_link.destination;
                // Word-level concepts in the category's subsumption
                // closure.
                let mut fillers = Vec::new();
                let mut stack = vec![category];
                let mut seen = std::collections::HashSet::new();
                while let Some(cat) = stack.pop() {
                    for l in network.links_by(cat, rel::SUBSUMES) {
                        if !seen.insert(l.destination) {
                            continue;
                        }
                        if network.color(l.destination).is_ok_and(|c| c == color::WORD) {
                            fillers.push(l.destination);
                        } else {
                            stack.push(l.destination);
                        }
                    }
                }
                fillers.sort_unstable();
                roles.push(RoleFiller {
                    element,
                    category,
                    fillers,
                });
            }
        }
        EventTemplate { root, roles }
    }

    /// Parses `sentence` on `machine`: phrasal chunking on the
    /// controller, then the compiled marker program on the array.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the compiled program fails (e.g. the
    /// knowledge base was externally modified).
    pub fn parse(
        &self,
        network: &mut snap_kb::SemanticNetwork,
        machine: &Snap1,
        sentence: &Sentence,
    ) -> Result<ParseResult, CoreError> {
        let phrasal = self.phrasal.parse(&sentence.words);
        let plan = self.compile(&phrasal);
        let report = machine.run(network, &plan.program)?;
        let clauses = plan
            .winner_markers
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let mut winners: Vec<(NodeId, f32)> = match &report.collects[i] {
                    CollectOutput::Nodes(nodes) => nodes
                        .iter()
                        .filter(|(n, _)| {
                            // Only sequence roots are valid interpretations.
                            network.color(*n).is_ok_and(|col| col == color::SEQ_ROOT)
                        })
                        .map(|(n, v)| (*n, v.map_or(0.0, |v| v.value)))
                        .collect(),
                    _ => Vec::new(),
                };
                winners.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                ClauseResult { winners }
            })
            .collect::<Vec<ClauseResult>>();
        let templates = clauses
            .iter()
            .map(|c: &ClauseResult| {
                c.winners
                    .first()
                    .map(|&(root, _)| Self::extract_template(network, root))
            })
            .collect();
        Ok(ParseResult {
            clauses,
            templates,
            pp_time_ns: phrasal.pp_time_ns,
            mb_time_ns: report.total_ns,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::DomainSpec;
    use crate::sentence::SentenceGenerator;
    use snap_core::EngineKind;

    fn machine() -> Snap1 {
        Snap1::builder().clusters(4).engine(EngineKind::Des).build()
    }

    #[test]
    fn parse_finds_target_sequence() {
        let mut kb = DomainSpec::sized(2000).build().unwrap();
        let mut generator = SentenceGenerator::new(&kb, 3);
        let sentence = generator.generate(9); // one clause
        let targets: Vec<NodeId> = sentence
            .target_sequences
            .iter()
            .map(|&i| kb.sequences[i].root)
            .collect();
        let parser = MemoryBasedParser::new(&kb);
        let result = parser
            .parse(&mut kb.network, &machine(), &sentence)
            .unwrap();
        assert!(!result.clauses.is_empty());
        let winners: Vec<NodeId> = result.clauses[0].winners.iter().map(|w| w.0).collect();
        assert!(
            winners.contains(&targets[0]),
            "clause 0 should accept its target {:?}; winners {:?} for {:?}",
            targets[0],
            winners,
            sentence.text(),
        );
    }

    #[test]
    fn longer_sentences_compile_to_more_instructions() {
        let kb = DomainSpec::sized(2000).build().unwrap();
        let mut generator = SentenceGenerator::new(&kb, 5);
        let parser = MemoryBasedParser::new(&kb);
        let short = parser.compile(&parser.phrasal().parse(&generator.generate(9).words));
        let long = parser.compile(&parser.phrasal().parse(&generator.generate(27).words));
        assert!(long.program.len() > short.program.len());
        assert!(long.winner_markers.len() > short.winner_markers.len());
    }

    #[test]
    fn parse_time_has_both_components() {
        let mut kb = DomainSpec::sized(2000).build().unwrap();
        let mut generator = SentenceGenerator::new(&kb, 9);
        let sentence = generator.generate(12);
        let parser = MemoryBasedParser::new(&kb);
        let result = parser
            .parse(&mut kb.network, &machine(), &sentence)
            .unwrap();
        assert!(result.pp_time_ns > 0);
        assert!(result.mb_time_ns > 0);
        assert_eq!(result.total_ns(), result.pp_time_ns + result.mb_time_ns);
        // Real-time: comfortably under a second of simulated time.
        assert!(
            result.total_ns() < 1_000_000_000,
            "got {} ns",
            result.total_ns()
        );
    }

    #[test]
    fn winners_respect_cost_threshold() {
        let mut kb = DomainSpec::sized(3000).build().unwrap();
        let mut generator = SentenceGenerator::new(&kb, 13);
        let sentence = generator.generate(18);
        let parser = MemoryBasedParser::new(&kb);
        let result = parser
            .parse(&mut kb.network, &machine(), &sentence)
            .unwrap();
        for clause in &result.clauses {
            for &(_, cost) in &clause.winners {
                assert!(cost <= COST_THRESHOLD);
            }
        }
    }

    #[test]
    fn templates_extracted_for_winning_clauses() {
        let mut kb = DomainSpec::sized(2000).build().unwrap();
        let mut generator = SentenceGenerator::new(&kb, 21);
        let sentence = generator.generate(9);
        let parser = MemoryBasedParser::new(&kb);
        let result = parser
            .parse(&mut kb.network, &machine(), &sentence)
            .unwrap();
        assert_eq!(result.templates.len(), result.clauses.len());
        let template = result.templates[0]
            .as_ref()
            .expect("winning clause yields a template");
        assert_eq!(template.roles.len(), 4, "one role per sequence element");
        // Each role's fillers are word nodes subsumed by its category,
        // and the sentence's own content words appear among them.
        let all_fillers: std::collections::HashSet<NodeId> = template
            .roles
            .iter()
            .flat_map(|r| r.fillers.iter().copied())
            .collect();
        assert!(!all_fillers.is_empty());
        let head_nodes: Vec<NodeId> = sentence.words.iter().filter_map(|w| kb.word(w)).collect();
        assert!(
            head_nodes.iter().any(|n| all_fillers.contains(n)),
            "sentence words instantiate the template"
        );
    }

    #[test]
    fn cancel_phase_produces_propagations() {
        let mut kb = DomainSpec::sized(3000).build().unwrap();
        let mut generator = SentenceGenerator::new(&kb, 17);
        let sentence = generator.generate(9);
        let parser = MemoryBasedParser::new(&kb);
        let result = parser
            .parse(&mut kb.network, &machine(), &sentence)
            .unwrap();
        // The program includes one cancel propagation per clause plus
        // two per phrase.
        let props = result.report.count_of(snap_isa::InstrClass::Propagate);
        assert!(props >= 3);
        assert!(result.report.expansions > 0);
    }
}
