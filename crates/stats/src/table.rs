//! Fixed-width ASCII table rendering for regenerated paper tables.

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use snap_stats::Table;
/// let mut t = Table::new(vec!["input", "words", "time (ms)"]);
/// t.row(vec!["S1".into(), "8".into(), "210".into()]);
/// let text = t.render();
/// assert!(text.contains("S1"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than there are headers.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        assert!(
            cells.len() <= self.headers.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.headers.len()
        );
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with a header underline, columns padded to the
    /// widest cell.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as tab-separated values (for `results/*.tsv`).
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22222".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert!(lines[1].starts_with("-----"));
        assert_eq!(lines[2], "alpha  1");
        assert_eq!(lines[3], "b      22222");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.row_count(), 1);
        assert!(t.render().contains('1'));
    }

    #[test]
    #[should_panic(expected = "row has 3 cells")]
    fn long_rows_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
    }

    #[test]
    fn tsv_output() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_tsv(), "x\ty\n1\t2\n");
    }
}
