//! Summary statistics, histograms, and labelled series.

use serde::{Deserialize, Serialize};

/// Running summary of a sample set.
///
/// # Examples
///
/// ```
/// use snap_stats::Summary;
/// let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation; 0 for fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / n;
        var.max(0.0).sqrt()
    }

    /// Smallest sample; 0 for an empty summary.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; 0 for an empty summary.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let w = (self.hi - self.lo) / n as f64;
            let idx = (((x - self.lo) / w) as usize).min(n - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range top.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// A labelled (x, y) series — one line of a paper figure.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series label (legend entry).
    pub label: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Renders the series as tab-separated `x<TAB>y` lines, suitable for
    /// redirecting into a plotting tool.
    pub fn to_tsv(&self) -> String {
        let mut out = format!("# {}\n", self.label);
        for (x, y) in &self.points {
            out.push_str(&format!("{x}\t{y}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1] {
            h.add(x);
        }
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn series_tsv_format() {
        let mut s = Series::new("snap-1");
        s.push(1.0, 2.0);
        s.push(2.0, 4.0);
        assert_eq!(s.to_tsv(), "# snap-1\n1\t2\n2\t4\n");
    }
}
