//! # snap-stats — measurement utilities for the SNAP-1 reproduction
//!
//! Small, dependency-light helpers shared by the execution engines and
//! the benchmark harness: summary statistics, histograms, labelled time
//! series, and fixed-width ASCII table rendering for the regenerated
//! tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod summary;
mod table;

pub use summary::{Histogram, Series, Summary};
pub use table::Table;
