//! The fused batch executor: one controller plan walked for `K` queries
//! at once.
//!
//! Non-propagate instructions execute per query through the shared
//! read-only semantics ([`exec_single_shared_into`]); every `PROPAGATE`
//! runs as one fused multi-query wave. The default kernel is the
//! bit-sliced sweep ([`propagate_multi_wave_sliced`]): per-lane visited
//! state lives in lane-major bit-planes, so the first-touch
//! check-and-set for all `K ≤ 64` lanes is one AND/OR per site and only
//! improvement comparisons replay per lane. Batches deeper than 64
//! lanes, and servers configured with [`BatchKernel::Replay`], take the
//! per-lane replay kernel ([`propagate_multi_wave`]) — the executable
//! spec the sliced path is differentially tested against.
//!
//! Accounting replicates the sequential engine's shared-snapshot entry
//! point instruction for instruction, which is what the differential
//! tests pin down: each lane's `RunReport` — collects, expansions,
//! local activations, simulated nanoseconds — is identical to running
//! that query alone through
//! [`Snap1::run_shared`](snap_core::Snap1::run_shared).
//!
//! Everything the executor needs per pump lives in [`BatchScratch`] and
//! the pooled [`QueryContext`]s, so steady-state serving allocates
//! nothing: plans, seed buffers, lane frontiers, bit-planes, and report
//! maps all keep their capacity across batches.

use crate::context::QueryContext;
use snap_core::controller::{PlanBuf, PlanOp};
use snap_core::exec::{exec_single_shared_into, SingleOutcome};
use snap_core::kernel::{
    propagate_multi_wave, propagate_multi_wave_sliced, BatchLane, MultiWaveScratch,
    SlicedLaneReport, WaveSink, MAX_SLICED_LANES,
};
use snap_core::propagate::{PropArrival, PropTask};
use snap_core::{CoreError, CostModel, Region, RunReport};
use snap_isa::{InstrClass, Instruction, Program, RuleProgram, StepFunc};
use snap_kb::{Marker, MarkerKind, NodeId, SemanticNetwork};
use snap_mem::SimTime;

/// Which fused propagation kernel a batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchKernel {
    /// Bit-sliced lane-parallel sweep — one lane-mask word per visited
    /// site advances every lane at once. Batches deeper than
    /// [`MAX_SLICED_LANES`] fall back to replay automatically.
    #[default]
    Sliced,
    /// Per-lane replay of the scalar spec — the executable reference
    /// the sliced kernel is differentially tested against.
    Replay,
}

/// Pooled executor state shared by every batch a server pumps: the
/// controller plan, instruction outcome, lane frontiers, wave scratch,
/// per-lane clocks and sliced reports, and the compiled-rule cache.
/// Everything resets in place, so the steady-state pump allocates
/// nothing.
pub(crate) struct BatchScratch {
    plan: PlanBuf,
    single: SingleOutcome,
    lanes: Vec<BatchLane>,
    wave: MultiWaveScratch,
    now: Vec<SimTime>,
    out: Vec<SlicedLaneReport>,
    /// Compiled rules keyed by their `PROPAGATE` instruction. Serving
    /// workloads cycle through a handful of shapes, so a small linear
    /// cache removes `RuleProgram` compilation (and its allocations)
    /// from the steady state; it is cleared if it ever overflows.
    rules: Vec<(Instruction, RuleProgram)>,
}

impl BatchScratch {
    pub(crate) fn new() -> Self {
        BatchScratch {
            plan: PlanBuf::new(),
            single: SingleOutcome::default(),
            lanes: Vec::new(),
            wave: MultiWaveScratch::new(),
            now: Vec::new(),
            out: Vec::new(),
            rules: Vec::new(),
        }
    }
}

/// Looks up (or compiles and caches) the rule of a `PROPAGATE`
/// instruction.
fn cached_rule<'a>(
    rules: &'a mut Vec<(Instruction, RuleProgram)>,
    instr: &Instruction,
) -> &'a RuleProgram {
    let idx = match rules.iter().position(|(key, _)| key == instr) {
        Some(i) => i,
        None => {
            let Instruction::Propagate { rule, .. } = instr else {
                unreachable!("plan groups only propagates");
            };
            if rules.len() >= 64 {
                rules.clear();
            }
            rules.push((instr.clone(), rule.compile()));
            rules.len() - 1
        }
    };
    &rules[idx].1
}

/// Executes `programs` (all of one shape — same instruction classes,
/// markers, and propagation rules) against the shared snapshot, one
/// context per query, accumulating each query's report in its context
/// (in input order).
pub(crate) fn run_batch(
    cost: &CostModel,
    max_hops: u8,
    kernel: BatchKernel,
    network: &SemanticNetwork,
    programs: &[&Program],
    ctxs: &mut [QueryContext],
    scratch: &mut BatchScratch,
) -> Result<(), CoreError> {
    debug_assert_eq!(programs.len(), ctxs.len());
    let k = programs.len();
    let BatchScratch {
        plan,
        single,
        lanes,
        wave,
        now,
        out,
        rules,
    } = scratch;
    now.clear();
    now.resize(k, 0);
    plan.plan(programs[0]);
    let sliced = kernel == BatchKernel::Sliced && k <= MAX_SLICED_LANES;

    for oi in 0..plan.ops().len() {
        match plan.ops()[oi] {
            PlanOp::Instr(idx) => {
                for (q, ctx) in ctxs.iter_mut().enumerate() {
                    let instr = &programs[q].instructions()[idx];
                    if instr.class() == InstrClass::Collect {
                        // Hand the executor an emptied collect buffer
                        // reclaimed from this context's previous report,
                        // so the result payload reuses its capacity.
                        single.collect = ctx.spare_collects.pop();
                    }
                    exec_single_shared_into(
                        instr,
                        network,
                        std::slice::from_mut(&mut ctx.region),
                        single,
                    )?;
                    let ns = instr_cost(cost, instr.class(), single, &mut ctx.report);
                    now[q] += ns;
                    ctx.report.record(instr.class(), ns);
                    if let Some(c) = single.collect.take() {
                        ctx.report.collects.push(c);
                    }
                }
            }
            PlanOp::Group { start, len } => {
                for g in 0..len as usize {
                    let idx = plan.members(start, len)[g] as usize;
                    let instr = &programs[0].instructions()[idx];
                    let (source, target, func) = match *instr {
                        Instruction::Propagate {
                            source,
                            target,
                            func,
                            ..
                        } => (source, target, func),
                        _ => unreachable!("plan groups only propagates"),
                    };
                    let rule = cached_rule(rules, instr);
                    // Seed frontiers and α accounting, per lane.
                    for ctx in ctxs.iter_mut() {
                        let QueryContext {
                            region,
                            report,
                            seeds,
                            ..
                        } = ctx;
                        seeds.clear();
                        for n in region.active_nodes_iter(source) {
                            seeds.push((n, region.source_value(source, n)));
                        }
                        report.alpha_per_propagate.push(seeds.len() as u64);
                    }
                    if sliced {
                        run_group_sliced(
                            cost, max_hops, network, ctxs, lanes, wave, out, rule, func, g, target,
                            now,
                        )?;
                    } else {
                        run_group_replay(
                            cost, max_hops, network, ctxs, lanes, wave, rule, func, g, target, now,
                        )?;
                    }
                }
                // Implicit barrier closing the group, per query.
                for (q, ctx) in ctxs.iter_mut().enumerate() {
                    now[q] += cost.sync_base_ns;
                    ctx.report.overhead.sync_ns += cost.sync_base_ns;
                    ctx.report.barriers += 1;
                    ctx.report.traffic.messages_per_sync.push(0);
                }
            }
        }
    }
    for (q, ctx) in ctxs.iter_mut().enumerate() {
        ctx.report.total_ns = now[q];
        // Purge classes this query never recorded, so a pooled report is
        // indistinguishable from a freshly built one.
        ctx.report.seal_for_pool();
    }
    Ok(())
}

/// One propagation of a group through the bit-sliced kernel: pre-seed
/// the marker plane with any existing target state, sweep, then absorb
/// each lane's folded fixed point and charge its accumulated cost.
#[allow(clippy::too_many_arguments)]
fn run_group_sliced(
    cost: &CostModel,
    max_hops: u8,
    network: &SemanticNetwork,
    ctxs: &mut [QueryContext],
    lanes: &mut Vec<BatchLane>,
    wave: &mut MultiWaveScratch,
    out: &mut Vec<SlicedLaneReport>,
    rule: &RuleProgram,
    func: StepFunc,
    prop: usize,
    target: Marker,
    now: &mut [SimTime],
) -> Result<(), CoreError> {
    let k = ctxs.len();
    let complex = target.kind() == MarkerKind::Complex;
    wave.begin_sliced(k, rule.states().len(), network.node_count());
    // The epsilon merge fold is order-sensitive, so any pre-existing
    // target state must enter the plane *before* arrivals fold into it.
    for (q, ctx) in ctxs.iter().enumerate() {
        if ctx.region.count(target) > 0 {
            for node in ctx.region.active_nodes_iter(target) {
                let value = if complex {
                    ctx.region.value(target, node)
                } else {
                    None
                };
                wave.seed_marker(q, node, value);
            }
        }
    }
    if lanes.len() < k {
        lanes.resize_with(k, BatchLane::new);
    }
    out.clear();
    out.resize(k, SlicedLaneReport::default());
    let mut seed_slices: [&[(NodeId, f32)]; MAX_SLICED_LANES] = [&[]; MAX_SLICED_LANES];
    for (q, ctx) in ctxs.iter().enumerate() {
        seed_slices[q] = &ctx.seeds;
    }
    propagate_multi_wave_sliced(
        network,
        rule,
        func,
        prop,
        max_hops,
        &seed_slices[..k],
        &mut lanes[..k],
        wave,
        complex,
        |segments, links, arrivals| cost.expand_ns(segments, links, arrivals),
        out,
    );
    for (q, ctx) in ctxs.iter_mut().enumerate() {
        let r = &out[q];
        let ns = cost.pu_decode_ns + r.expand_ns;
        now[q] += ns;
        ctx.report.expansions += r.expansions;
        ctx.report.traffic.local_activations += r.activations;
        ctx.report.max_propagation_depth = ctx.report.max_propagation_depth.max(r.max_depth);
        ctx.report.record(InstrClass::Propagate, ns);
        if complex {
            ctx.region.absorb_values(
                target,
                wave.marker_results(q, true)
                    .map(|(n, v)| (n, v.expect("complex lanes carry payloads"))),
            )?;
        } else {
            ctx.region
                .absorb_bits(target, wave.marker_results(q, false).map(|(n, _)| n))?;
        }
    }
    Ok(())
}

/// One propagation of a group through the per-lane replay kernel — the
/// executable spec, also the fallback for batches deeper than
/// [`MAX_SLICED_LANES`]. Allocates per call; only the sliced path is
/// allocation-free.
#[allow(clippy::too_many_arguments)]
fn run_group_replay(
    cost: &CostModel,
    max_hops: u8,
    network: &SemanticNetwork,
    ctxs: &mut [QueryContext],
    lanes: &mut Vec<BatchLane>,
    wave: &mut MultiWaveScratch,
    rule: &RuleProgram,
    func: StepFunc,
    prop: usize,
    target: Marker,
    now: &mut [SimTime],
) -> Result<(), CoreError> {
    let k = ctxs.len();
    if lanes.len() < k {
        lanes.resize_with(k, BatchLane::new);
    }
    let mut slices: Vec<&[(NodeId, f32)]> = Vec::with_capacity(k);
    let mut sinks: Vec<ServeSink> = Vec::with_capacity(k);
    for ctx in ctxs.iter_mut() {
        let QueryContext {
            region,
            report,
            seeds,
            ..
        } = ctx;
        slices.push(seeds);
        sinks.push(ServeSink {
            cost,
            region,
            target,
            report,
            ns: cost.pu_decode_ns,
        });
    }
    let res = propagate_multi_wave(
        network,
        rule,
        func,
        prop,
        max_hops,
        &slices,
        &mut lanes[..k],
        wave,
        &mut sinks,
    );
    let ns: Vec<SimTime> = sinks.iter().map(|s| s.ns).collect();
    drop(sinks);
    res?;
    for (q, ctx) in ctxs.iter_mut().enumerate() {
        now[q] += ns[q];
        ctx.report.record(InstrClass::Propagate, ns[q]);
    }
    Ok(())
}

/// Single-PE cost of one non-propagate instruction — the sequential
/// engine's formula, reproduced so batched reports time out identically.
fn instr_cost(
    cost: &CostModel,
    class: InstrClass,
    out: &SingleOutcome,
    report: &mut RunReport,
) -> SimTime {
    let w = out.work[0];
    cost.pcp_ns
        + match class {
            InstrClass::Search => {
                cost.pu_decode_ns
                    + w.scans as SimTime * cost.link_scan_ns
                    + w.value_ops as SimTime * cost.value_op_ns
            }
            InstrClass::Boolean | InstrClass::SetClear => {
                cost.global_op_ns(w.words) + w.value_ops as SimTime * cost.value_op_ns
            }
            InstrClass::Collect => {
                let ns = cost.collect_ns(1, w.items);
                report.overhead.collect_ns += ns;
                ns
            }
            InstrClass::Barrier => {
                let ns = cost.sync_base_ns;
                report.overhead.sync_ns += ns;
                report.barriers += 1;
                ns
            }
            InstrClass::Maintenance => {
                unreachable!("admission sheds maintenance programs")
            }
            InstrClass::Propagate => unreachable!("plan puts propagates in groups"),
        }
}

/// Per-lane engine accounting behind the replay kernel: the sequential
/// engine's wave sink minus tracing — same report fields, same cost-
/// model nanoseconds, same region merges, in the same event order.
struct ServeSink<'a> {
    cost: &'a CostModel,
    region: &'a mut Region,
    target: Marker,
    report: &'a mut RunReport,
    ns: SimTime,
}

impl WaveSink for ServeSink<'_> {
    fn on_expand(
        &mut self,
        _task: &PropTask,
        segments: usize,
        links_scanned: usize,
        arrivals: usize,
    ) {
        self.report.expansions += 1;
        self.ns += self.cost.expand_ns(segments, links_scanned, arrivals);
    }

    fn on_arrival(&mut self, task: &PropTask, arrival: &PropArrival) -> Result<(), CoreError> {
        self.region
            .arrive(self.target, arrival.node, arrival.value, task.origin)?;
        self.report.traffic.local_activations += 1;
        self.report.max_propagation_depth = self.report.max_propagation_depth.max(task.level + 1);
        Ok(())
    }
}
