//! The fused batch executor: one controller plan walked for `K` queries
//! at once.
//!
//! Non-propagate instructions execute per query through the shared
//! read-only semantics ([`exec_single_shared`]); every `PROPAGATE` runs
//! as one fused multi-query wave, so the batch pays each CSR row probe
//! and rank merge once. Accounting replicates the sequential engine's
//! shared-snapshot entry point instruction for instruction, which is
//! what the differential tests pin down: each lane's `RunReport` —
//! collects, expansions, local activations, simulated nanoseconds — is
//! identical to running that query alone through
//! [`Snap1::run_shared`](snap_core::Snap1::run_shared).

use crate::context::QueryContext;
use snap_core::controller::{plan, PropSpec, Step};
use snap_core::exec::{exec_single_shared, SingleOutcome};
use snap_core::kernel::{propagate_multi_wave, BatchLane, MultiWaveScratch, WaveSink};
use snap_core::propagate::{PropArrival, PropTask};
use snap_core::{CoreError, CostModel, Region, RunReport};
use snap_isa::{InstrClass, Program};
use snap_kb::{Marker, NodeId, PartitionStats, SemanticNetwork};
use snap_mem::SimTime;

/// Executes `programs` (all of one shape — same instruction classes,
/// markers, and propagation rules) against the shared snapshot, one
/// context per query, returning per-query reports in input order.
pub(crate) fn run_batch(
    cost: &CostModel,
    max_hops: u8,
    network: &SemanticNetwork,
    partition: &PartitionStats,
    programs: &[&Program],
    ctxs: &mut [QueryContext],
    scratch: &mut MultiWaveScratch,
) -> Result<Vec<RunReport>, CoreError> {
    debug_assert_eq!(programs.len(), ctxs.len());
    let k = programs.len();
    let mut reports: Vec<RunReport> = (0..k)
        .map(|_| RunReport {
            partition: Some(partition.clone()),
            ..RunReport::default()
        })
        .collect();
    let mut now: Vec<SimTime> = vec![0; k];

    for step in plan(programs[0]) {
        match step {
            Step::Instr(idx) => {
                for q in 0..k {
                    let instr = &programs[q].instructions()[idx];
                    let regions = std::slice::from_mut(&mut ctxs[q].region);
                    let out = exec_single_shared(instr, network, regions)?;
                    let ns = instr_cost(cost, instr.class(), &out, &mut reports[q]);
                    now[q] += ns;
                    reports[q].record(instr.class(), ns);
                    if let Some(c) = out.collect {
                        reports[q].collects.push(c);
                    }
                }
            }
            Step::Group(indices) => {
                for (g, &idx) in indices.iter().enumerate() {
                    let spec = PropSpec::compile(g, &programs[0].instructions()[idx]);
                    let seeds: Vec<Vec<(NodeId, f32)>> = ctxs
                        .iter()
                        .map(|c| {
                            c.region
                                .active_nodes(spec.source)
                                .into_iter()
                                .map(|n| (n, c.region.source_value(spec.source, n)))
                                .collect()
                        })
                        .collect();
                    let slices: Vec<&[(NodeId, f32)]> = seeds.iter().map(Vec::as_slice).collect();
                    // Split each context: lanes move into the kernel by
                    // value, regions stay mutably borrowed by the sinks.
                    let mut lanes: Vec<BatchLane> = ctxs
                        .iter_mut()
                        .map(|c| std::mem::take(&mut c.lane))
                        .collect();
                    let mut sinks: Vec<ServeSink> = ctxs
                        .iter_mut()
                        .zip(reports.iter_mut())
                        .zip(&seeds)
                        .map(|((c, report), s)| {
                            report.alpha_per_propagate.push(s.len() as u64);
                            ServeSink {
                                cost,
                                region: &mut c.region,
                                target: spec.target,
                                report,
                                ns: cost.pu_decode_ns,
                            }
                        })
                        .collect();
                    let res = propagate_multi_wave(
                        network, &spec.rule, spec.func, spec.prop, max_hops, &slices, &mut lanes,
                        scratch, &mut sinks,
                    );
                    let ns: Vec<SimTime> = sinks.iter().map(|s| s.ns).collect();
                    drop(sinks);
                    for (c, lane) in ctxs.iter_mut().zip(lanes) {
                        c.lane = lane;
                    }
                    res?;
                    for q in 0..k {
                        now[q] += ns[q];
                        reports[q].record(InstrClass::Propagate, ns[q]);
                    }
                }
                // Implicit barrier closing the group, per query.
                for (q, report) in reports.iter_mut().enumerate() {
                    now[q] += cost.sync_base_ns;
                    report.overhead.sync_ns += cost.sync_base_ns;
                    report.barriers += 1;
                    report.traffic.messages_per_sync.push(0);
                }
            }
        }
    }
    for (q, report) in reports.iter_mut().enumerate() {
        report.total_ns = now[q];
    }
    Ok(reports)
}

/// Single-PE cost of one non-propagate instruction — the sequential
/// engine's formula, reproduced so batched reports time out identically.
fn instr_cost(
    cost: &CostModel,
    class: InstrClass,
    out: &SingleOutcome,
    report: &mut RunReport,
) -> SimTime {
    let w = out.work[0];
    cost.pcp_ns
        + match class {
            InstrClass::Search => {
                cost.pu_decode_ns
                    + w.scans as SimTime * cost.link_scan_ns
                    + w.value_ops as SimTime * cost.value_op_ns
            }
            InstrClass::Boolean | InstrClass::SetClear => {
                cost.global_op_ns(w.words) + w.value_ops as SimTime * cost.value_op_ns
            }
            InstrClass::Collect => {
                let ns = cost.collect_ns(1, w.items);
                report.overhead.collect_ns += ns;
                ns
            }
            InstrClass::Barrier => {
                let ns = cost.sync_base_ns;
                report.overhead.sync_ns += ns;
                report.barriers += 1;
                ns
            }
            InstrClass::Maintenance => {
                unreachable!("admission sheds maintenance programs")
            }
            InstrClass::Propagate => unreachable!("plan puts propagates in groups"),
        }
}

/// Per-lane engine accounting behind the fused kernel: the sequential
/// engine's wave sink minus tracing — same report fields, same cost-
/// model nanoseconds, same region merges, in the same event order.
struct ServeSink<'a> {
    cost: &'a CostModel,
    region: &'a mut Region,
    target: Marker,
    report: &'a mut RunReport,
    ns: SimTime,
}

impl WaveSink for ServeSink<'_> {
    fn on_expand(
        &mut self,
        _task: &PropTask,
        segments: usize,
        links_scanned: usize,
        arrivals: usize,
    ) {
        self.report.expansions += 1;
        self.ns += self.cost.expand_ns(segments, links_scanned, arrivals);
    }

    fn on_arrival(&mut self, task: &PropTask, arrival: &PropArrival) -> Result<(), CoreError> {
        self.region
            .arrive(self.target, arrival.node, arrival.value, task.origin)?;
        self.report.traffic.local_activations += 1;
        self.report.max_propagation_depth = self.report.max_propagation_depth.max(task.level + 1);
        Ok(())
    }
}
