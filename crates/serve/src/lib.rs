//! # snap-serve — query serving over a shared KB snapshot
//!
//! The SNAP-1 prototype answers one marker-propagation program at a
//! time; a deployed knowledge-base machine answers thousands of them
//! concurrently against the same network. This crate is that serving
//! layer, built on [`Snap1::run_shared`](snap_core::Snap1::run_shared)
//! semantics:
//!
//! * [`QueryContext`] — one query's isolated execution state (marker
//!   tables, visited maps, frontier buffers), pooled and reset in place
//!   so steady-state serving recycles the heavy per-query allocations;
//! * [`Server`] — bounded admission ([`ServeConfig::queue_capacity`])
//!   with graceful shedding and exact accounting, plus a batching
//!   scheduler that coalesces compatible queries (same program shape,
//!   same KB snapshot) into one fused propagation wave via
//!   [`propagate_multi_wave`](snap_core::kernel::propagate_multi_wave),
//!   amortizing every CSR row probe and rank merge across the batch —
//!   and collapsing bit-identical queries onto a single lane whose
//!   report they share;
//! * every batched query's results are bit-identical to running it
//!   alone through the serial sequential-engine oracle — the batch
//!   executor replays the exact scalar-spec event order per lane.
//!
//! One [`Server`] serves one immutable snapshot (one KB epoch): updates
//! mean flushing links, wrapping the new network in an `Arc`, and
//! standing up a new server. Maintenance programs are shed at admission
//! for the same reason `run_shared` rejects them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod context;
mod server;

pub use batch::BatchKernel;
pub use context::QueryContext;
pub use server::{
    Admission, Completion, CompletionRef, QueryId, ServeConfig, ServeStats, Server, ShedReason,
};
