//! Per-query execution contexts, pooled across queries.

use snap_core::{CollectOutput, Region, RegionMap, RunReport};
use snap_kb::{ClusterId, NodeId, PartitionStats, SemanticNetwork};
use std::sync::Arc;

/// One query's isolated execution state: its marker tables (a
/// [`Region`] over the shared snapshot), the report being accumulated
/// for it, and its pooled seed buffer.
///
/// Contexts are pooled by the [`Server`](crate::Server): after a batch
/// completes, each context is [reset in place](QueryContext::reset) and
/// returned to the pool, so steady-state serving reuses the per-query
/// marker tables, report maps, and seed buffers instead of rebuilding
/// them — zero allocations per query once warm. The partition stats are
/// stamped into the report once, at construction, and survive every
/// reset.
pub struct QueryContext {
    pub(crate) region: Region,
    pub(crate) report: RunReport,
    /// Seed frontier of the propagation currently being set up; lives
    /// here (not in batch scratch) so its capacity pools per query.
    pub(crate) seeds: Vec<(NodeId, f32)>,
    /// Emptied collect buffers reclaimed from the previous query's
    /// report; the batch executor pre-seeds the instruction executor
    /// with them so `COLLECT-*` results reuse their capacity.
    pub(crate) spare_collects: Vec<CollectOutput>,
}

impl QueryContext {
    pub(crate) fn new(
        map: &Arc<RegionMap>,
        network: &SemanticNetwork,
        partition: &PartitionStats,
    ) -> Self {
        QueryContext {
            region: Region::new(ClusterId(0), Arc::clone(map), network),
            report: RunReport {
                partition: Some(partition.clone()),
                ..RunReport::default()
            },
            seeds: Vec::new(),
            spare_collects: Vec::new(),
        }
    }

    /// Clears all query-local state, keeping allocations (and the
    /// stamped partition stats). Collect payloads migrate — emptied —
    /// into the spare pool instead of being dropped.
    pub(crate) fn reset(&mut self) {
        self.region.reset();
        for mut c in self.report.collects.drain(..) {
            match &mut c {
                CollectOutput::Nodes(v) => v.clear(),
                CollectOutput::Links(v) => v.clear(),
                CollectOutput::Colors(v) => v.clear(),
            }
            self.spare_collects.push(c);
        }
        self.report.reset_for_pool();
        self.seeds.clear();
    }
}
