//! Per-query execution contexts, pooled across queries.

use snap_core::kernel::BatchLane;
use snap_core::{Region, RegionMap};
use snap_kb::{ClusterId, SemanticNetwork};
use std::sync::Arc;

/// One query's isolated execution state: its marker tables (a
/// [`Region`] over the shared snapshot) and its lane through the fused
/// propagation kernel (visited tables plus frontier buffers).
///
/// Contexts are pooled by the [`Server`](crate::Server): after a batch
/// completes, each context is [reset in place](Region::reset) and
/// returned to the pool, so steady-state serving reuses the per-query
/// marker and visited allocations instead of rebuilding them.
pub struct QueryContext {
    pub(crate) region: Region,
    pub(crate) lane: BatchLane,
}

impl QueryContext {
    pub(crate) fn new(map: &Arc<RegionMap>, network: &SemanticNetwork) -> Self {
        QueryContext {
            region: Region::new(ClusterId(0), Arc::clone(map), network),
            lane: BatchLane::new(),
        }
    }

    /// Clears all query-local marker state, keeping allocations. The
    /// lane resets itself at the start of every fused sweep.
    pub(crate) fn reset(&mut self) {
        self.region.reset();
    }
}
