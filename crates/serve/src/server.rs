//! Admission, shape-compatible batching, and exact shed accounting.

use crate::batch::{run_batch, BatchKernel, BatchScratch};
use crate::context::QueryContext;
use snap_core::kernel::{wave_supported, MAX_SLICED_LANES};
use snap_core::{CoreError, CostModel, EngineKind, MachineConfig, RegionMap, RunReport, Snap1};
use snap_isa::{InstrClass, Instruction, Program};
use snap_kb::{PartitionScheme, PartitionStats, SemanticNetwork};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;

/// Serving parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most queries fused into one propagation batch. Depth 1 degrades
    /// to one-query-at-a-time serving (the bench baseline).
    pub max_batch: usize,
    /// Bounded admission queue: offers beyond this capacity shed with
    /// [`ShedReason::QueueFull`] instead of growing without bound.
    pub queue_capacity: usize,
    /// Propagation hop cap, matching the machine configuration the
    /// oracle runs under.
    pub max_hops: u8,
    /// Cost model stamped into per-query reports.
    pub cost: CostModel,
    /// KB epoch this server serves; recorded for bookkeeping when a
    /// fleet of servers rotates through snapshot generations.
    pub epoch: u64,
    /// Which fused kernel batches run. [`BatchKernel::Sliced`] (the
    /// default) advances all lanes word-at-a-time; batches deeper than
    /// [`MAX_SLICED_LANES`] fall back to per-lane replay automatically.
    pub kernel: BatchKernel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            queue_capacity: 1024,
            max_hops: MachineConfig::snap1_eval().max_hops,
            cost: CostModel::snap1(),
            epoch: 0,
            kernel: BatchKernel::default(),
        }
    }
}

/// Handle naming an admitted query; completions carry it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(pub u64);

/// Why an offer was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded admission queue is full (overload).
    QueueFull,
    /// The program contains node-maintenance instructions, which cannot
    /// run against a shared snapshot (see
    /// [`CoreError::MaintenanceOnShared`]).
    Maintenance,
}

/// Outcome of one [`Server::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Query admitted to the queue; its completion will carry this ID.
    Admitted(QueryId),
    /// Query shed at admission, never queued.
    Shed(ShedReason),
}

/// Exact admission/completion accounting. Two invariants hold at every
/// quiescent point (checked by [`Server::assert_accounting`]):
/// `offered == admitted + shed_overload + shed_invalid` and
/// `admitted == completed + failed + queued`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries offered to the server.
    pub offered: u64,
    /// Offers admitted to the queue.
    pub admitted: u64,
    /// Offers shed because the queue was full.
    pub shed_overload: u64,
    /// Offers shed because the program cannot run on a shared snapshot.
    pub shed_invalid: u64,
    /// Admitted queries completed with a report.
    pub completed: u64,
    /// Admitted queries that failed with an error.
    pub failed: u64,
}

impl ServeStats {
    /// Total offers shed, for any reason.
    pub fn shed(&self) -> u64 {
        self.shed_overload + self.shed_invalid
    }
}

/// One finished query.
#[derive(Debug)]
pub struct Completion {
    /// The admission handle this completion answers.
    pub id: QueryId,
    /// How many queries shared the fused batch (1 = served solo).
    pub batch_depth: usize,
    /// The query's report, identical to a solo
    /// [`Snap1::run_shared`] run, or the error that failed it.
    pub result: Result<RunReport, CoreError>,
}

/// Borrowed view of one finished query, as [`Server::pump_with`]
/// delivers it: the report stays in its pooled context, so the
/// steady-state serving loop observes completions without cloning — or
/// allocating — anything.
#[derive(Debug)]
pub struct CompletionRef<'a> {
    /// The admission handle this completion answers.
    pub id: QueryId,
    /// How many queries shared the fused batch (1 = served solo).
    pub batch_depth: usize,
    /// The query's report (identical to a solo run), or its error.
    pub result: Result<&'a RunReport, &'a CoreError>,
}

struct Pending {
    id: QueryId,
    program: Program,
    shape: String,
    fusable: bool,
}

/// A query server over one immutable KB snapshot.
///
/// [`offer`](Server::offer) admits programs into a bounded queue;
/// [`pump`](Server::pump) takes the head-of-line query plus every
/// queued query of the same shape (up to
/// [`ServeConfig::max_batch`]) and executes them as one fused
/// propagation batch. Head-of-line dispatch means no shape can starve:
/// whatever is oldest runs next, bringing its compatible followers
/// along.
///
/// Every buffer the pump touches — pending entries, batch staging,
/// query contexts, kernel scratch — is pooled on the server, so
/// steady-state serving ([`Server::pump_with`] after warm-up) performs
/// no heap allocation per query.
pub struct Server {
    network: Arc<SemanticNetwork>,
    map: Arc<RegionMap>,
    partition: PartitionStats,
    cfg: ServeConfig,
    /// Sequential shared-snapshot oracle for queries that cannot fuse
    /// (oversized custom rules) and for batch-failure fallback.
    oracle: Snap1,
    queue: VecDeque<Pending>,
    /// Spent [`Pending`] entries, recycled by `offer` (shape strings
    /// and program slots keep their capacity).
    free: Vec<Pending>,
    /// Current batch being staged/served, drained back to `free`.
    batch: Vec<Pending>,
    /// Indices into `batch`: one per distinct program (lane owners).
    uniq: Vec<usize>,
    /// For each batch member, the lane index (into `uniq`) it reads.
    rep_of: Vec<usize>,
    pool: Vec<QueryContext>,
    /// Contexts checked out for the batch in flight.
    active: Vec<QueryContext>,
    scratch: BatchScratch,
    stats: ServeStats,
    next_id: u64,
}

impl Server {
    /// Builds a server over `network`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SharedStagedLinks`] if the snapshot still
    /// has staged links — call
    /// [`flush_links`](SemanticNetwork::flush_links) before wrapping it
    /// in the `Arc`.
    pub fn new(network: Arc<SemanticNetwork>, cfg: ServeConfig) -> Result<Self, CoreError> {
        let staged = network.staged_link_count();
        if staged > 0 {
            return Err(CoreError::SharedStagedLinks { staged });
        }
        let map = RegionMap::build(&network, 1, PartitionScheme::Sequential);
        let partition = map.partition().stats(&network);
        let oracle = Snap1::builder()
            .config(MachineConfig {
                max_hops: cfg.max_hops,
                ..MachineConfig::snap1_eval()
            })
            .cost(cfg.cost.clone())
            .engine(EngineKind::Sequential)
            .build();
        Ok(Server {
            network,
            map,
            partition,
            cfg,
            oracle,
            queue: VecDeque::new(),
            free: Vec::new(),
            batch: Vec::new(),
            uniq: Vec::new(),
            rep_of: Vec::new(),
            pool: Vec::new(),
            active: Vec::new(),
            scratch: BatchScratch::new(),
            stats: ServeStats::default(),
            next_id: 0,
        })
    }

    /// Offers one query. Admits it to the queue, or sheds it — with the
    /// reason — when the queue is full or the program cannot run on a
    /// shared snapshot. Every offer is accounted exactly once.
    pub fn offer(&mut self, program: Program) -> Admission {
        self.stats.offered += 1;
        if program
            .instructions()
            .iter()
            .any(|i| i.class() == InstrClass::Maintenance)
        {
            self.stats.shed_invalid += 1;
            return Admission::Shed(ShedReason::Maintenance);
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            self.stats.shed_overload += 1;
            return Admission::Shed(ShedReason::QueueFull);
        }
        let mut p = self.free.pop().unwrap_or_else(|| Pending {
            id: QueryId(0),
            program: std::iter::empty::<Instruction>().collect(),
            shape: String::new(),
            fusable: false,
        });
        let id = QueryId(self.next_id);
        self.next_id += 1;
        p.id = id;
        p.fusable = shape_key(&self.network, &program, &mut p.shape);
        p.program = program;
        self.stats.admitted += 1;
        self.queue.push_back(p);
        Admission::Admitted(id)
    }

    /// Serves one batch: the head-of-line query plus every queued query
    /// of its shape, up to [`ServeConfig::max_batch`], as one fused
    /// wave — with bit-identical queries coalesced onto a single lane
    /// and sharing its report. Returns their completions (empty when
    /// the queue is idle).
    ///
    /// This convenience form clones each report out of its pooled
    /// context; the steady-state serving loop uses
    /// [`Server::pump_with`], which does not.
    pub fn pump(&mut self) -> Vec<Completion> {
        let mut done = Vec::new();
        self.pump_with(|c| {
            done.push(Completion {
                id: c.id,
                batch_depth: c.batch_depth,
                result: c.result.cloned().map_err(Clone::clone),
            });
        });
        done
    }

    /// [`Server::pump`] without the clones: serves one batch and hands
    /// each completion to `sink` as a borrowed [`CompletionRef`]. Once
    /// the pools are warm, a pump performs no heap allocation.
    pub fn pump_with(&mut self, mut sink: impl FnMut(CompletionRef<'_>)) {
        let Some(head) = self.queue.front() else {
            return;
        };
        if !head.fusable {
            let p = self.queue.pop_front().expect("head exists");
            let result = self.oracle.run_shared(&self.network, &p.program);
            match &result {
                Ok(_) => self.stats.completed += 1,
                Err(_) => self.stats.failed += 1,
            }
            sink(CompletionRef {
                id: p.id,
                batch_depth: 1,
                result: result.as_ref(),
            });
            self.free.push(p);
            return;
        }
        debug_assert!(self.batch.is_empty() && self.active.is_empty());
        self.batch
            .push(self.queue.pop_front().expect("head exists"));
        // Fast path: the matching prefix (steady-state serving is
        // shape-homogeneous, so this usually fills the batch without
        // touching the rest of the queue).
        while self.batch.len() < self.cfg.max_batch {
            let matches = match self.queue.front() {
                Some(p) => p.fusable && p.shape == self.batch[0].shape,
                None => false,
            };
            if !matches {
                break;
            }
            let p = self.queue.pop_front().expect("front exists");
            self.batch.push(p);
        }
        // Slow path: steal later same-shape queries, stopping as soon as
        // the batch fills; unscanned and non-matching entries keep their
        // relative order.
        let mut i = 0;
        while i < self.queue.len() && self.batch.len() < self.cfg.max_batch {
            if self.queue[i].fusable && self.queue[i].shape == self.batch[0].shape {
                let p = self.queue.remove(i).expect("index in bounds");
                self.batch.push(p);
            } else {
                i += 1;
            }
        }

        // Coalesce bit-identical queries: one lane per *distinct*
        // program, and duplicates share its report. A same-shape batch
        // already fuses row probes; coalescing goes further and skips
        // the duplicate's entire execution — the report of an identical
        // program on an immutable snapshot is identical by construction
        // (the differential tests pin this down).
        self.uniq.clear();
        self.rep_of.clear();
        for i in 0..self.batch.len() {
            match self
                .uniq
                .iter()
                .position(|&u| self.batch[u].program == self.batch[i].program)
            {
                Some(j) => self.rep_of.push(j),
                None => {
                    self.rep_of.push(self.uniq.len());
                    self.uniq.push(i);
                }
            }
        }
        for _ in 0..self.uniq.len() {
            let ctx = self
                .pool
                .pop()
                .unwrap_or_else(|| QueryContext::new(&self.map, &self.network, &self.partition));
            self.active.push(ctx);
        }
        // Program refs live on the stack up to the sliced-kernel width;
        // deeper (replay-fallback) batches take the heap.
        let n = self.uniq.len();
        let mut stack: [&Program; MAX_SLICED_LANES] = [&self.batch[0].program; MAX_SLICED_LANES];
        let mut heap: Vec<&Program> = Vec::new();
        let programs: &[&Program] = if n <= MAX_SLICED_LANES {
            for (j, &u) in self.uniq.iter().enumerate() {
                stack[j] = &self.batch[u].program;
            }
            &stack[..n]
        } else {
            heap.extend(self.uniq.iter().map(|&u| &self.batch[u].program));
            &heap
        };
        let res = run_batch(
            &self.cfg.cost,
            self.cfg.max_hops,
            self.cfg.kernel,
            &self.network,
            programs,
            &mut self.active,
            &mut self.scratch,
        );
        let depth = self.batch.len();
        match res {
            Ok(()) => {
                for i in 0..self.batch.len() {
                    self.stats.completed += 1;
                    sink(CompletionRef {
                        id: self.batch[i].id,
                        batch_depth: depth,
                        result: Ok(&self.active[self.rep_of[i]].report),
                    });
                }
            }
            Err(_) => {
                // The fused batch failed: retry each member solo so one
                // poisoned query cannot take its batch-mates down.
                for i in 0..self.batch.len() {
                    let result = self
                        .oracle
                        .run_shared(&self.network, &self.batch[i].program);
                    match &result {
                        Ok(_) => self.stats.completed += 1,
                        Err(_) => self.stats.failed += 1,
                    }
                    sink(CompletionRef {
                        id: self.batch[i].id,
                        batch_depth: 1,
                        result: result.as_ref(),
                    });
                }
            }
        }
        while let Some(mut c) = self.active.pop() {
            c.reset();
            self.pool.push(c);
        }
        while let Some(p) = self.batch.pop() {
            self.free.push(p);
        }
    }

    /// Pumps until the queue is empty, returning all completions.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while !self.queue.is_empty() {
            out.extend(self.pump());
        }
        out
    }

    /// Current accounting counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Queries admitted but not yet served.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Idle pooled contexts (diagnostic: steady-state serving holds
    /// this at the largest batch depth seen, allocating nothing new).
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// The KB epoch this server was configured with.
    pub fn epoch(&self) -> u64 {
        self.cfg.epoch
    }

    /// The shared snapshot being served.
    pub fn network(&self) -> &Arc<SemanticNetwork> {
        &self.network
    }

    /// Panics unless the accounting invariants hold:
    /// `offered == admitted + shed` and
    /// `admitted == completed + failed + queued`.
    pub fn assert_accounting(&self) {
        let s = self.stats;
        assert_eq!(
            s.offered,
            s.admitted + s.shed(),
            "offered = admitted + shed"
        );
        assert_eq!(
            s.admitted,
            s.completed + s.failed + self.queue.len() as u64,
            "admitted = completed + failed + queued"
        );
    }
}

/// Canonical shape of a program, written into `key` (cleared first):
/// search parameters (which node, color, relation, or initial value a
/// query asks about) are masked so queries differing only in what they
/// ask still batch; everything else — instruction sequence, markers,
/// propagation rules, step and combine functions — prints exactly. Two
/// programs with equal shapes plan to the same controller steps and
/// fuse their propagation waves.
///
/// Returns `false` when some propagation rule cannot take the fused
/// kernel (an oversized custom rule): such queries are served solo
/// through the oracle.
fn shape_key(network: &SemanticNetwork, program: &Program, key: &mut String) -> bool {
    key.clear();
    let mut fusable = true;
    for instr in program.iter() {
        match instr {
            Instruction::SearchNode { marker, .. } => {
                let _ = write!(key, "SN({marker:?});");
            }
            Instruction::SearchRelation { marker, .. } => {
                let _ = write!(key, "SR({marker:?});");
            }
            Instruction::SearchColor { marker, .. } => {
                let _ = write!(key, "SC({marker:?});");
            }
            Instruction::Propagate { rule, .. } => {
                if !wave_supported(network, &rule.compile()) {
                    fusable = false;
                }
                let _ = write!(key, "{instr:?};");
            }
            other => {
                let _ = write!(key, "{other:?};");
            }
        }
    }
    fusable
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::{PropRule, RuleArc, RuleProgram, RuleState, StepFunc};
    use snap_kb::synth::scale_free_network;
    use snap_kb::{Marker, NodeId, RelationType};

    fn snapshot() -> Arc<SemanticNetwork> {
        let mut net = scale_free_network(300, 2, 11);
        net.flush_links();
        Arc::new(net)
    }

    /// A parse-style query: seed one word node, walk the taxonomy,
    /// collect the bindings. Varying the node varies the whole frontier.
    fn query(node: u32) -> Program {
        Program::builder()
            .search_node(NodeId(node), Marker::binary(1), 0.0)
            .propagate(
                Marker::binary(1),
                Marker::complex(2),
                PropRule::Star(RelationType(0)),
                StepFunc::AddWeight,
            )
            .collect_marker(Marker::complex(2))
            .build()
    }

    /// A different shape: two-relation spread with another target.
    fn spread_query(node: u32) -> Program {
        Program::builder()
            .search_node(NodeId(node), Marker::binary(1), 0.0)
            .propagate(
                Marker::binary(1),
                Marker::complex(3),
                PropRule::Spread(RelationType(0), RelationType(1)),
                StepFunc::AddWeight,
            )
            .collect_marker(Marker::complex(3))
            .build()
    }

    fn oracle() -> Snap1 {
        Snap1::builder().engine(EngineKind::Sequential).build()
    }

    #[test]
    fn batched_queries_match_the_serial_oracle_exactly() {
        let net = snapshot();
        let mut server = Server::new(Arc::clone(&net), ServeConfig::default()).unwrap();
        let nodes = [0u32, 17, 42, 99, 123, 200, 250, 299];
        for &n in &nodes {
            assert!(matches!(server.offer(query(n)), Admission::Admitted(_)));
        }
        let done = server.drain();
        assert_eq!(done.len(), nodes.len());
        let oracle = oracle();
        for (c, &n) in done.iter().zip(&nodes) {
            assert_eq!(c.batch_depth, nodes.len(), "one fused batch");
            let got = c.result.as_ref().unwrap();
            let want = oracle.run_shared(&net, &query(n)).unwrap();
            assert_eq!(got.collects, want.collects, "node {n}");
            assert_eq!(got.expansions, want.expansions, "node {n}");
            assert_eq!(
                got.traffic.local_activations, want.traffic.local_activations,
                "node {n}"
            );
            assert_eq!(got.alpha_per_propagate, want.alpha_per_propagate);
            assert_eq!(got.max_propagation_depth, want.max_propagation_depth);
            assert_eq!(got.total_ns, want.total_ns, "node {n}");
        }
        server.assert_accounting();
        assert_eq!(server.stats().completed, nodes.len() as u64);
    }

    #[test]
    fn replay_kernel_serves_the_same_reports() {
        let net = snapshot();
        let cfg = ServeConfig {
            kernel: BatchKernel::Replay,
            ..ServeConfig::default()
        };
        let mut sliced = Server::new(Arc::clone(&net), ServeConfig::default()).unwrap();
        let mut replay = Server::new(Arc::clone(&net), cfg).unwrap();
        for n in [3u32, 3, 50, 151, 299] {
            sliced.offer(query(n));
            replay.offer(query(n));
        }
        let a = sliced.drain();
        let b = replay.drain();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.result.as_ref().unwrap(), y.result.as_ref().unwrap());
        }
    }

    #[test]
    fn incompatible_shapes_split_into_separate_batches() {
        let net = snapshot();
        let mut server = Server::new(Arc::clone(&net), ServeConfig::default()).unwrap();
        // Interleave two shapes: star, spread, star, spread...
        for n in 0..6u32 {
            let p = if n % 2 == 0 {
                query(n)
            } else {
                spread_query(n)
            };
            assert!(matches!(server.offer(p), Admission::Admitted(_)));
        }
        // First pump serves the head's shape only: the three stars.
        let first = server.pump();
        assert_eq!(first.len(), 3);
        assert!(first.iter().all(|c| c.batch_depth == 3));
        // Spreads kept their order and serve next.
        let second = server.pump();
        assert_eq!(second.len(), 3);
        let oracle = oracle();
        for (c, n) in second.iter().zip([1u32, 3, 5]) {
            assert_eq!(c.id, QueryId(n as u64));
            let got = c.result.as_ref().unwrap();
            let want = oracle.run_shared(&net, &spread_query(n)).unwrap();
            assert_eq!(got.collects, want.collects);
        }
        server.assert_accounting();
    }

    #[test]
    fn saturated_queue_forms_full_batches_every_pump() {
        let net = snapshot();
        let cfg = ServeConfig {
            max_batch: 8,
            ..ServeConfig::default()
        };
        let mut server = Server::new(net, cfg).unwrap();
        // 20 same-shape queries: a saturated queue must fill every
        // batch to min(max_batch, queued) — the depth-curve benches
        // depend on this (a short batch dilutes the fused speedup).
        for n in 0..20u32 {
            server.offer(query(n % 5));
        }
        let mut depths = Vec::new();
        while server.queue_len() > 0 {
            depths.push(server.pump().len());
        }
        assert_eq!(depths, vec![8, 8, 4], "every pump fills its batch");
        server.assert_accounting();
    }

    #[test]
    fn overload_sheds_with_exact_accounting() {
        let net = snapshot();
        let cfg = ServeConfig {
            queue_capacity: 4,
            max_batch: 2,
            ..ServeConfig::default()
        };
        let mut server = Server::new(net, cfg).unwrap();
        let mut shed = 0;
        for n in 0..10u32 {
            match server.offer(query(n)) {
                Admission::Admitted(_) => {}
                Admission::Shed(ShedReason::QueueFull) => shed += 1,
                Admission::Shed(r) => panic!("unexpected shed: {r:?}"),
            }
        }
        assert_eq!(shed, 6, "capacity 4 admits 4 of 10");
        let s = server.stats();
        assert_eq!((s.offered, s.admitted, s.shed_overload), (10, 4, 6));
        server.assert_accounting();
        let done = server.drain();
        assert_eq!(done.len(), 4);
        assert!(
            done.iter().all(|c| c.batch_depth == 2),
            "max_batch caps depth"
        );
        server.assert_accounting();
        assert_eq!(server.stats().completed, 4);
    }

    #[test]
    fn maintenance_programs_are_shed_as_invalid() {
        let net = snapshot();
        let mut server = Server::new(net, ServeConfig::default()).unwrap();
        let program = Program::builder()
            .instruction(Instruction::SetColor {
                node: NodeId(0),
                color: snap_kb::Color(7),
            })
            .build();
        assert_eq!(
            server.offer(program),
            Admission::Shed(ShedReason::Maintenance)
        );
        assert_eq!(server.stats().shed_invalid, 1);
        server.assert_accounting();
    }

    #[test]
    fn staged_links_are_rejected_at_construction() {
        let mut net = scale_free_network(10, 1, 3);
        net.flush_links();
        net.add_link(NodeId(0), RelationType(0), 1.0, NodeId(5))
            .unwrap();
        let err = match Server::new(Arc::new(net), ServeConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("staged links must be rejected"),
        };
        assert_eq!(err, CoreError::SharedStagedLinks { staged: 1 });
    }

    #[test]
    fn contexts_pool_across_pumps_without_growing() {
        let net = snapshot();
        let cfg = ServeConfig {
            max_batch: 4,
            ..ServeConfig::default()
        };
        let mut server = Server::new(net, cfg).unwrap();
        for round in 0..3 {
            for n in 0..4u32 {
                server.offer(query(n + round));
            }
            let done = server.drain();
            assert_eq!(done.len(), 4);
            assert_eq!(server.pool_size(), 4, "round {round}: pool stable");
        }
        server.assert_accounting();
    }

    #[test]
    fn duplicate_queries_coalesce_onto_one_lane() {
        let net = snapshot();
        let mut server = Server::new(Arc::clone(&net), ServeConfig::default()).unwrap();
        // Six offers, two distinct programs — one lane each.
        for n in [7u32, 7, 120, 7, 120, 7] {
            server.offer(query(n));
        }
        let done = server.drain();
        assert_eq!(done.len(), 6);
        assert!(done.iter().all(|c| c.batch_depth == 6));
        assert_eq!(
            server.pool_size(),
            2,
            "only distinct programs took a context"
        );
        let oracle = oracle();
        for (c, n) in done.iter().zip([7u32, 7, 120, 7, 120, 7]) {
            let want = oracle.run_shared(&net, &query(n)).unwrap();
            assert_eq!(c.result.as_ref().unwrap(), &want, "seed {n}");
        }
        server.assert_accounting();
        assert_eq!(server.stats().completed, 6);
    }

    #[test]
    fn oversized_custom_rules_serve_solo_through_the_oracle() {
        let net = snapshot();
        // Nine arcs in one state overflows the kernel's merge cursors:
        // unfusable, so the server routes it through the oracle.
        let arcs: Vec<RuleArc> = (0..9).map(|r| RuleArc::new(RelationType(r), 1)).collect();
        let rule = PropRule::Custom(RuleProgram::from_states(vec![
            RuleState::new(arcs),
            RuleState::terminal(),
        ]));
        let program = Program::builder()
            .search_node(NodeId(0), Marker::binary(1), 0.0)
            .propagate(
                Marker::binary(1),
                Marker::complex(2),
                rule,
                StepFunc::AddWeight,
            )
            .collect_marker(Marker::complex(2))
            .build();
        let mut server = Server::new(Arc::clone(&net), ServeConfig::default()).unwrap();
        server.offer(program.clone());
        server.offer(program.clone());
        let done = server.drain();
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|c| c.batch_depth == 1), "served solo");
        let want = oracle().run_shared(&net, &program).unwrap();
        for c in &done {
            assert_eq!(c.result.as_ref().unwrap().collects, want.collects);
        }
        server.assert_accounting();
    }
}
