//! 4-ary hypercube topology built from spanning multiport memories.
//!
//! SNAP-1 routes inter-cluster messages through a 4-ary hypercube: the
//! 5-bit cluster address is split into modulo-4 fields — L (the four
//! clusters of one board), X (board column), and Y (board row). A cluster
//! communicates directly with every cluster whose address differs in
//! exactly one field, through a four-port memory dedicated to that field
//! group (L-memory on the board, X-/Y-memories across the backplane).
//! Messages therefore need at most one hop per field: three hops for the
//! 32-cluster prototype, `O(log N)` in general.

use serde::{Deserialize, Serialize};
use snap_kb::ClusterId;

/// A field-decomposed hypercube topology.
///
/// `field_sizes[i]` is the radix of field `i` (≤ 4 for four-port parts).
/// The SNAP-1 prototype is `[4, 4, 2]`: L, X, Y.
///
/// # Examples
///
/// ```
/// use snap_net::HypercubeTopology;
/// use snap_kb::ClusterId;
///
/// let topo = HypercubeTopology::snap1();
/// assert_eq!(topo.cluster_count(), 32);
/// // Cluster 23 = 10111b: L=3, X=1, Y=1.
/// assert_eq!(topo.fields(ClusterId(23)), vec![3, 1, 1]);
/// assert!(topo.distance(ClusterId(0), ClusterId(23)) <= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HypercubeTopology {
    field_sizes: Vec<u8>,
}

impl HypercubeTopology {
    /// The SNAP-1 prototype topology: 32 clusters as L×X×Y = 4×4×2.
    pub fn snap1() -> Self {
        HypercubeTopology {
            field_sizes: vec![4, 4, 2],
        }
    }

    /// Builds a topology with the given field radices.
    ///
    /// # Panics
    ///
    /// Panics if any radix is 0 or 1, exceeds 4 (four-port memories have
    /// four ports), or if the cluster count exceeds 256.
    pub fn new(field_sizes: Vec<u8>) -> Self {
        assert!(!field_sizes.is_empty(), "topology needs at least one field");
        for &s in &field_sizes {
            assert!((2..=4).contains(&s), "field radix {s} outside 2..=4");
        }
        let count: usize = field_sizes.iter().map(|&s| s as usize).product();
        assert!(count <= 256, "cluster count {count} exceeds addressing");
        HypercubeTopology { field_sizes }
    }

    /// Smallest topology (with radix-4 fields first) covering at least
    /// `clusters` clusters; used when sweeping array sizes.
    pub fn covering(clusters: usize) -> Self {
        assert!(clusters >= 1, "need at least one cluster");
        if clusters == 1 {
            // Degenerate single-cluster "network": one radix-2 field,
            // never routed through.
            return HypercubeTopology {
                field_sizes: vec![2],
            };
        }
        let mut sizes = Vec::new();
        let mut covered = 1usize;
        while covered < clusters {
            let need = clusters.div_ceil(covered);
            let radix = need.clamp(2, 4) as u8;
            sizes.push(radix);
            covered *= radix as usize;
        }
        HypercubeTopology { field_sizes: sizes }
    }

    /// Number of addressable clusters.
    pub fn cluster_count(&self) -> usize {
        self.field_sizes.iter().map(|&s| s as usize).product()
    }

    /// Number of address fields (= network diameter in hops).
    pub fn field_count(&self) -> usize {
        self.field_sizes.len()
    }

    /// Decomposes a cluster address into its fields, least-significant
    /// (L) first.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is outside the topology.
    pub fn fields(&self, cluster: ClusterId) -> Vec<u8> {
        let mut v = cluster.index();
        assert!(
            v < self.cluster_count(),
            "cluster {cluster} outside topology of {}",
            self.cluster_count()
        );
        let mut fields = Vec::with_capacity(self.field_sizes.len());
        for &s in &self.field_sizes {
            fields.push((v % s as usize) as u8);
            v /= s as usize;
        }
        fields
    }

    /// Recomposes fields into a cluster address.
    fn compose(&self, fields: &[u8]) -> ClusterId {
        let mut v = 0usize;
        for (i, &f) in fields.iter().enumerate().rev() {
            v = v * self.field_sizes[i] as usize + f as usize;
        }
        ClusterId(v as u8)
    }

    /// Hop distance: the number of differing address fields.
    pub fn distance(&self, from: ClusterId, to: ClusterId) -> usize {
        self.fields(from)
            .iter()
            .zip(self.fields(to).iter())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// The route from `from` to `to`: each hop corrects one address
    /// field (L first, then X, then Y), returning the sequence of
    /// clusters **after** each hop. Empty when `from == to`.
    pub fn route(&self, from: ClusterId, to: ClusterId) -> Vec<ClusterId> {
        let mut cur = self.fields(from);
        let dst = self.fields(to);
        let mut path = Vec::new();
        for i in 0..cur.len() {
            if cur[i] != dst[i] {
                cur[i] = dst[i];
                path.push(self.compose(&cur));
            }
        }
        path
    }

    /// Clusters reachable in exactly one hop from `cluster`.
    pub fn neighbors(&self, cluster: ClusterId) -> Vec<ClusterId> {
        let base = self.fields(cluster);
        let mut out = Vec::new();
        for (i, &size) in self.field_sizes.iter().enumerate() {
            for v in 0..size {
                if v != base[i] {
                    let mut f = base.clone();
                    f[i] = v;
                    out.push(self.compose(&f));
                }
            }
        }
        out
    }

    /// The shared-memory group of `cluster` along `field`: every cluster
    /// attached to the same spanning four-port memory (including
    /// `cluster` itself).
    pub fn memory_group(&self, cluster: ClusterId, field: usize) -> Vec<ClusterId> {
        let base = self.fields(cluster);
        (0..self.field_sizes[field])
            .map(|v| {
                let mut f = base.clone();
                f[field] = v;
                self.compose(&f)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn snap1_has_32_clusters_and_diameter_3() {
        let t = HypercubeTopology::snap1();
        assert_eq!(t.cluster_count(), 32);
        assert_eq!(t.field_count(), 3);
    }

    #[test]
    fn paper_example_cluster_23() {
        // 23 = 10111b → L = 23 mod 4 = 3, X = 5 mod 4 = 1, Y = 1.
        let t = HypercubeTopology::snap1();
        assert_eq!(t.fields(ClusterId(23)), vec![3, 1, 1]);
    }

    #[test]
    fn route_corrects_one_field_per_hop() {
        let t = HypercubeTopology::snap1();
        let path = t.route(ClusterId(0), ClusterId(23));
        assert_eq!(path.len(), 3);
        assert_eq!(*path.last().unwrap(), ClusterId(23));
        // Each consecutive pair differs in exactly one field.
        let mut prev = ClusterId(0);
        for &hop in &path {
            assert_eq!(t.distance(prev, hop), 1);
            prev = hop;
        }
    }

    #[test]
    fn neighbors_count_matches_fields() {
        let t = HypercubeTopology::snap1();
        // (4-1) + (4-1) + (2-1) = 7 one-hop neighbours.
        assert_eq!(t.neighbors(ClusterId(0)).len(), 7);
    }

    #[test]
    fn memory_group_shares_the_field() {
        let t = HypercubeTopology::snap1();
        let group = t.memory_group(ClusterId(0), 0); // L-memory of board 0
        assert_eq!(
            group,
            vec![ClusterId(0), ClusterId(1), ClusterId(2), ClusterId(3)]
        );
        let xgroup = t.memory_group(ClusterId(0), 1);
        assert_eq!(
            xgroup,
            vec![ClusterId(0), ClusterId(4), ClusterId(8), ClusterId(12)]
        );
    }

    #[test]
    fn covering_produces_enough_clusters() {
        for n in 1..=64 {
            let t = HypercubeTopology::covering(n);
            assert!(t.cluster_count() >= n, "covering({n}) too small");
        }
        assert_eq!(HypercubeTopology::covering(32).cluster_count(), 32);
        assert_eq!(HypercubeTopology::covering(16).cluster_count(), 16);
    }

    #[test]
    #[should_panic(expected = "outside 2..=4")]
    fn oversized_radix_rejected() {
        HypercubeTopology::new(vec![5]);
    }

    proptest! {
        #[test]
        fn prop_route_reaches_destination_within_diameter(src in 0u8..32, dst in 0u8..32) {
            let t = HypercubeTopology::snap1();
            let path = t.route(ClusterId(src), ClusterId(dst));
            prop_assert!(path.len() <= 3, "32 clusters need at most three hops");
            prop_assert_eq!(path.len(), t.distance(ClusterId(src), ClusterId(dst)));
            if src != dst {
                prop_assert_eq!(*path.last().unwrap(), ClusterId(dst));
            } else {
                prop_assert!(path.is_empty());
            }
        }

        #[test]
        fn prop_fields_compose_roundtrip(c in 0u8..32) {
            let t = HypercubeTopology::snap1();
            let f = t.fields(ClusterId(c));
            prop_assert_eq!(t.compose(&f), ClusterId(c));
        }

        #[test]
        fn prop_distance_is_symmetric_metric(a in 0u8..32, b in 0u8..32, c in 0u8..32) {
            let t = HypercubeTopology::snap1();
            let (a, b, c) = (ClusterId(a), ClusterId(b), ClusterId(c));
            prop_assert_eq!(t.distance(a, b), t.distance(b, a));
            prop_assert_eq!(t.distance(a, a), 0);
            prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
        }
    }
}
