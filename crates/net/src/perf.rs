//! The performance-collection network.
//!
//! Gathering measurements over a primary network would perturb the very
//! communication being measured, so SNAP-1 instruments the array through
//! an independent network: each PE writes an 8-bit event code and 24-bit
//! status word to its serial-port register and resumes immediately; the
//! serial controller shifts the record out at 2 Mb/s to a central
//! collection board, where it is timestamped and stored in a FIFO.

use serde::{Deserialize, Serialize};
use snap_mem::SimTime;

/// Serial link rate of the instrumentation network, bits per second.
pub const SERIAL_LINK_BPS: u64 = 2_000_000;

/// Bits per event record (8-bit code + 24-bit status).
pub const RECORD_BITS: u64 = 32;

/// Nanoseconds needed to shift one record out of a PE's serial port.
pub const RECORD_SHIFT_NS: SimTime = RECORD_BITS * 1_000_000_000 / SERIAL_LINK_BPS;

/// One collected performance event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfEvent {
    /// Timestamp applied at the central collection board (ns).
    pub timestamp: SimTime,
    /// Index of the reporting PE.
    pub pe: u32,
    /// 8-bit event code.
    pub code: u8,
    /// 24-bit status word (stored in the low bits).
    pub status: u32,
}

/// Model of the performance-collection network: per-PE serial links
/// feeding a central timestamped FIFO.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfCollector {
    link_busy_until: Vec<SimTime>,
    events: Vec<PerfEvent>,
    dropped: u64,
    fifo_capacity: usize,
}

impl PerfCollector {
    /// Creates a collector for `pes` processing elements with the given
    /// central FIFO capacity.
    pub fn new(pes: usize, fifo_capacity: usize) -> Self {
        PerfCollector {
            link_busy_until: vec![0; pes],
            events: Vec::new(),
            dropped: 0,
            fifo_capacity,
        }
    }

    /// Records an event from `pe` at simulated time `now`. The PE is
    /// never delayed; the record arrives after its serial shift, queueing
    /// behind earlier records on the same link. Returns the arrival
    /// timestamp, or `None` if the central FIFO overflowed.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn record(&mut self, pe: u32, now: SimTime, code: u8, status: u32) -> Option<SimTime> {
        let link = &mut self.link_busy_until[pe as usize];
        let start = now.max(*link);
        let arrival = start + RECORD_SHIFT_NS;
        *link = arrival;
        if self.events.len() >= self.fifo_capacity {
            self.dropped += 1;
            return None;
        }
        self.events.push(PerfEvent {
            timestamp: arrival,
            pe,
            code,
            status: status & 0x00FF_FFFF,
        });
        Some(arrival)
    }

    /// All collected events in arrival order.
    pub fn events(&self) -> &[PerfEvent] {
        &self.events
    }

    /// Number of records lost to FIFO overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the FIFO (transfer to mass storage).
    pub fn drain(&mut self) -> Vec<PerfEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_shift_time_matches_2mbps() {
        // 32 bits at 2 Mb/s = 16 µs.
        assert_eq!(RECORD_SHIFT_NS, 16_000);
    }

    #[test]
    fn events_queue_behind_link() {
        let mut pc = PerfCollector::new(2, 100);
        let t1 = pc.record(0, 0, 1, 0xABCDEF).unwrap();
        assert_eq!(t1, 16_000);
        // Same PE immediately after: queues behind the first shift.
        let t2 = pc.record(0, 1_000, 2, 0).unwrap();
        assert_eq!(t2, 32_000);
        // Different PE: independent link.
        let t3 = pc.record(1, 1_000, 3, 0).unwrap();
        assert_eq!(t3, 17_000);
        assert_eq!(pc.events().len(), 3);
    }

    #[test]
    fn status_is_masked_to_24_bits() {
        let mut pc = PerfCollector::new(1, 10);
        pc.record(0, 0, 1, 0xFFFF_FFFF);
        assert_eq!(pc.events()[0].status, 0x00FF_FFFF);
    }

    #[test]
    fn fifo_overflow_drops_and_counts() {
        let mut pc = PerfCollector::new(1, 2);
        assert!(pc.record(0, 0, 1, 0).is_some());
        assert!(pc.record(0, 0, 2, 0).is_some());
        assert!(pc.record(0, 0, 3, 0).is_none());
        assert_eq!(pc.dropped(), 1);
        let drained = pc.drain();
        assert_eq!(drained.len(), 2);
        assert!(pc.events().is_empty());
    }
}
