//! The global broadcast bus between controller and array.
//!
//! The sequence control processor broadcasts SNAP instructions over a
//! dedicated global bus (32-bit data, 16-bit address) into the dual-port
//! instruction memories of every cluster simultaneously; with broadcast
//! disabled the same bus retrieves results from a single cluster. Because
//! the bus is separate from the marker ICN, broadcast overhead is small
//! and constant in the number of clusters — the property Fig. 21 reports.

use serde::{Deserialize, Serialize};
use snap_mem::SimTime;

/// Timing model of the global bus.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusModel {
    busy_until: SimTime,
    broadcasts: u64,
    retrievals: u64,
    words_moved: u64,
}

impl BusModel {
    /// Creates an idle bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Broadcasts `words` 32-bit words to all clusters starting no
    /// earlier than `now`; `per_word_ns` is the bus word time. Returns
    /// the completion time. Cost is independent of the cluster count.
    pub fn broadcast(&mut self, now: SimTime, words: u64, per_word_ns: SimTime) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + words * per_word_ns;
        self.busy_until = done;
        self.broadcasts += 1;
        self.words_moved += words;
        done
    }

    /// Retrieves `words` words from one cluster (broadcast disabled,
    /// bidirectional mode). Returns the completion time.
    pub fn retrieve(&mut self, now: SimTime, words: u64, per_word_ns: SimTime) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + words * per_word_ns;
        self.busy_until = done;
        self.retrievals += 1;
        self.words_moved += words;
        done
    }

    /// Number of broadcasts performed.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Number of single-cluster retrievals performed.
    pub fn retrievals(&self) -> u64 {
        self.retrievals
    }

    /// Total words moved over the bus.
    pub fn words_moved(&self) -> u64 {
        self.words_moved
    }

    /// Earliest time the bus is free.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcasts_serialize_on_the_bus() {
        let mut bus = BusModel::new();
        let t1 = bus.broadcast(0, 4, 100);
        assert_eq!(t1, 400);
        let t2 = bus.broadcast(100, 2, 100);
        assert_eq!(t2, 600, "second broadcast waits for the bus");
        assert_eq!(bus.broadcasts(), 2);
        assert_eq!(bus.words_moved(), 6);
    }

    #[test]
    fn retrieval_shares_the_bus() {
        let mut bus = BusModel::new();
        bus.broadcast(0, 10, 50);
        let t = bus.retrieve(0, 4, 50);
        assert_eq!(t, 500 + 200);
        assert_eq!(bus.retrievals(), 1);
        assert_eq!(bus.free_at(), 700);
    }
}
