//! Threaded message fabric: the hypercube as real channels.
//!
//! The threaded execution engine exchanges marker messages between
//! cluster threads through this fabric. Logical delivery is direct (the
//! receiving cluster gets the message in one `send`), but the fabric
//! computes the hypercube hop count for every message so the traffic
//! statistics match the modelled network.

use crate::topology::HypercubeTopology;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use snap_fault::{Corruptible, FaultInjector, SendFate};
use snap_kb::ClusterId;
use snap_obs::Tracer;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message held back by an injected delay, awaiting its due time.
#[derive(Debug)]
struct Delayed<T> {
    due: Instant,
    to: usize,
    message: T,
}

/// Seeded delivery-order permutation state: one holdback slot per
/// destination cluster plus a SplitMix64 stream deciding, per counted
/// send, whether the message overtakes the currently held one.
#[derive(Debug)]
struct Reorder<T> {
    rng: u64,
    /// At most one in-flight message held back per destination.
    held: Vec<Option<T>>,
}

impl<T> Reorder<T> {
    fn next(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Sending half of the fabric, cloneable across cluster threads.
#[derive(Debug, Clone)]
pub struct Fabric<T> {
    topology: Arc<HypercubeTopology>,
    senders: Vec<Sender<T>>,
    messages: Arc<AtomicU64>,
    hops: Arc<AtomicU64>,
    injector: Option<Arc<FaultInjector>>,
    /// Per-link decision counter streams for the injector.
    link_seq: Arc<Vec<AtomicU64>>,
    delayed: Arc<Mutex<Vec<Delayed<T>>>>,
    /// Delivery-order hook for the interleaving fuzzer (disabled by
    /// default; see [`enable_reorder`](Self::enable_reorder)).
    reorder: Arc<Mutex<Option<Reorder<T>>>>,
    /// Cheap hot-path check so the disabled case never takes the lock.
    reorder_on: Arc<AtomicBool>,
    /// Observability hook: records destination-mailbox depth per
    /// counted send (the ICN four-port mailbox occupancy).
    tracer: Tracer,
}

impl<T> Fabric<T> {
    /// Creates a fabric over `topology`; returns the fabric plus one
    /// receiver per cluster (in cluster order).
    pub fn new(topology: HypercubeTopology) -> (Self, Vec<Receiver<T>>) {
        Self::build(topology, None, Tracer::disabled())
    }

    /// Creates a fabric whose [`send_faulty`](Self::send_faulty) and
    /// [`send_control`](Self::send_control) paths are subject to
    /// `injector`'s plan. The plain [`send`](Self::send) path stays
    /// fault-free either way.
    pub fn with_injector(
        topology: HypercubeTopology,
        injector: Arc<FaultInjector>,
    ) -> (Self, Vec<Receiver<T>>) {
        Self::build(topology, Some(injector), Tracer::disabled())
    }

    /// Creates a fabric with an optional injector and a tracer that
    /// observes destination-mailbox depth on every counted send.
    pub fn with_instruments(
        topology: HypercubeTopology,
        injector: Option<Arc<FaultInjector>>,
        tracer: Tracer,
    ) -> (Self, Vec<Receiver<T>>) {
        Self::build(topology, injector, tracer)
    }

    fn build(
        topology: HypercubeTopology,
        injector: Option<Arc<FaultInjector>>,
        tracer: Tracer,
    ) -> (Self, Vec<Receiver<T>>) {
        let n = topology.cluster_count();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        (
            Fabric {
                topology: Arc::new(topology),
                senders,
                messages: Arc::new(AtomicU64::new(0)),
                hops: Arc::new(AtomicU64::new(0)),
                injector,
                link_seq: Arc::new((0..n * n).map(|_| AtomicU64::new(0)).collect()),
                delayed: Arc::new(Mutex::new(Vec::new())),
                reorder: Arc::new(Mutex::new(None)),
                reorder_on: Arc::new(AtomicBool::new(false)),
                tracer,
            },
            receivers,
        )
    }

    /// Sends `message` from `from` to `to`, recording the hypercube hop
    /// count. Never faulted.
    ///
    /// # Panics
    ///
    /// Panics if either cluster is outside the topology or the receiver
    /// has been dropped.
    pub fn send(&self, from: ClusterId, to: ClusterId, message: T) {
        let hops = self.topology.distance(from, to) as u64;
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.hops.fetch_add(hops, Ordering::Relaxed);
        self.dispatch(to.index(), message);
        self.observe_depth(to.index());
    }

    /// Counted-marker delivery point: when the fuzzer's reorder hook is
    /// armed, a seeded coin per message decides whether it is held back
    /// in the destination's one-deep holdback slot (any previously held
    /// message is released) or delivered at once, overtaking whatever
    /// the slot still holds. With the hook off this is `deliver`.
    fn dispatch(&self, to: usize, message: T) {
        if self.reorder_on.load(Ordering::Relaxed) {
            let mut guard = self.reorder.lock();
            if let Some(state) = guard.as_mut() {
                if state.next() & 1 == 0 {
                    if let Some(prev) = state.held[to].replace(message) {
                        self.deliver(to, prev);
                    }
                    return;
                }
            }
        }
        self.deliver(to, message);
    }

    /// Arms the seeded delivery-order permutation used by the
    /// interleaving fuzzer. Only counted marker sends are shaped;
    /// control traffic (acks) and injector-delayed deliveries always
    /// pass straight through. Callers that can go idle while markers
    /// are in flight must call [`flush_held`](Self::flush_held) from
    /// their receive loops, exactly like [`poll_delayed`](Self::poll_delayed).
    pub fn enable_reorder(&self, seed: u64) {
        let n = self.senders.len();
        *self.reorder.lock() = Some(Reorder {
            rng: seed ^ 0x5851_F42D_4C95_7F2D,
            held: (0..n).map(|_| None).collect(),
        });
        self.reorder_on.store(true, Ordering::Relaxed);
    }

    /// Releases every message currently held back by the reorder hook.
    /// No-op when the hook is disarmed.
    pub fn flush_held(&self) {
        if !self.reorder_on.load(Ordering::Relaxed) {
            return;
        }
        let mut guard = self.reorder.lock();
        if let Some(state) = guard.as_mut() {
            for to in 0..state.held.len() {
                if let Some(message) = state.held[to].take() {
                    self.deliver(to, message);
                }
            }
        }
    }

    fn deliver(&self, to: usize, message: T) {
        self.senders[to]
            .send(message)
            .expect("fabric receiver dropped while senders alive");
    }

    /// Reports the destination mailbox's current depth to the tracer.
    fn observe_depth(&self, to: usize) {
        if self.tracer.is_enabled() {
            self.tracer.queue_depth(
                to as u16,
                self.senders[to].len() as u64,
                self.tracer.wall_stamp(),
            );
        }
    }

    /// The topology the fabric routes over.
    pub fn topology(&self) -> &HypercubeTopology {
        &self.topology
    }

    /// Total messages sent (marker traffic; control sends are not
    /// counted, matching the modelled network's accounting).
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total hypercube hops across all messages.
    pub fn hops(&self) -> u64 {
        self.hops.load(Ordering::Relaxed)
    }

    /// Injected-delay messages not yet delivered.
    pub fn pending_delayed(&self) -> usize {
        self.delayed.lock().len()
    }

    /// Delivers every delayed message whose due time has passed.
    /// Workers call this from their receive loops; without a caller,
    /// delayed messages would never arrive (and the barrier watchdog
    /// would classify them as lost).
    pub fn poll_delayed(&self) {
        let mut queue = self.delayed.lock();
        if queue.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut i = 0;
        while i < queue.len() {
            if queue[i].due <= now {
                let entry = queue.swap_remove(i);
                self.deliver(entry.to, entry.message);
            } else {
                i += 1;
            }
        }
    }
}

impl<T: Clone + Corruptible> Fabric<T> {
    /// Marker-path send: counted in traffic stats and subject to the
    /// attached injector's plan (drop, duplicate, delay, corrupt).
    /// Returns what was done to the message so the sender's resilience
    /// protocol and the run report can account for it.
    pub fn send_faulty(&self, from: ClusterId, to: ClusterId, message: T) -> SendFate {
        self.send_shaped(from, to, message, true)
    }

    /// Control-path send (acks, recovery coordination): NOT counted in
    /// traffic stats — the modelled network carries these on dedicated
    /// wires — but still subject to faults, so a lost or corrupted ack
    /// exercises the retry path like a lost marker does.
    pub fn send_control(&self, from: ClusterId, to: ClusterId, message: T) -> SendFate {
        self.send_shaped(from, to, message, false)
    }

    fn send_shaped(
        &self,
        from: ClusterId,
        to: ClusterId,
        mut message: T,
        counted: bool,
    ) -> SendFate {
        if counted {
            let hops = self.topology.distance(from, to) as u64;
            self.messages.fetch_add(1, Ordering::Relaxed);
            self.hops.fetch_add(hops, Ordering::Relaxed);
        }
        let Some(injector) = &self.injector else {
            if counted {
                self.dispatch(to.index(), message);
                self.observe_depth(to.index());
            } else {
                self.deliver(to.index(), message);
            }
            return SendFate::default();
        };
        let n = self.senders.len();
        let counter = self.link_seq[from.index() * n + to.index()].fetch_add(1, Ordering::Relaxed);
        let fate = injector.fate(from.index() as u8, to.index() as u8, counter);
        if fate.dropped {
            return fate;
        }
        if fate.corrupted {
            message.corrupt(fate.salt);
        }
        let duplicate = fate.duplicated.then(|| message.clone());
        if fate.delay_ns > 0 {
            let due = Instant::now() + Duration::from_nanos(fate.delay_ns);
            let mut queue = self.delayed.lock();
            let to = to.index();
            queue.push(Delayed { due, to, message });
            if let Some(dup) = duplicate {
                queue.push(Delayed {
                    due,
                    to,
                    message: dup,
                });
            }
        } else if counted {
            self.dispatch(to.index(), message);
            if let Some(dup) = duplicate {
                self.dispatch(to.index(), dup);
            }
            self.observe_depth(to.index());
        } else {
            self.deliver(to.index(), message);
            if let Some(dup) = duplicate {
                self.deliver(to.index(), dup);
            }
        }
        fate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn messages_arrive_at_their_cluster() {
        let (fabric, receivers) = Fabric::new(HypercubeTopology::snap1());
        fabric.send(ClusterId(0), ClusterId(23), 42u32);
        fabric.send(ClusterId(5), ClusterId(23), 43u32);
        let rx = &receivers[23];
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![42, 43]);
        assert!(receivers[0].try_recv().is_err());
        assert_eq!(fabric.messages(), 2);
        // 0→23 differs in all three fields, 5→23 (L:1→3, X:1→1, Y:0→1) in two.
        assert_eq!(fabric.hops(), 5);
    }

    #[test]
    fn fabric_works_across_threads() {
        let (fabric, receivers) = Fabric::new(HypercubeTopology::snap1());
        let f2 = fabric.clone();
        let sender = thread::spawn(move || {
            for i in 0..100u32 {
                f2.send(ClusterId((i % 32) as u8), ClusterId(7), i);
            }
        });
        let mut sum = 0u32;
        for _ in 0..100 {
            sum += receivers[7].recv().unwrap();
        }
        sender.join().unwrap();
        assert_eq!(sum, (0..100).sum());
        assert_eq!(fabric.messages(), 100);
    }

    #[test]
    fn reorder_hook_permutes_but_loses_nothing() {
        let drain = |rx: &Receiver<u32>| {
            let mut got = Vec::new();
            while let Ok(v) = rx.try_recv() {
                got.push(v);
            }
            got
        };
        let run = |seed: u64| {
            let (fabric, receivers) = Fabric::new(HypercubeTopology::snap1());
            fabric.enable_reorder(seed);
            for i in 0..50u32 {
                fabric.send(ClusterId(0), ClusterId(9), i);
            }
            fabric.flush_held();
            drain(&receivers[9])
        };
        let got = run(42);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..50).collect::<Vec<_>>(),
            "nothing lost or duplicated"
        );
        assert_ne!(got, sorted, "delivery order was permuted");
        assert_eq!(got, run(42), "same seed replays the same order");
        assert_ne!(got, run(43), "different seed permutes differently");
    }

    use snap_fault::{Corruptible, FaultInjector, FaultPlan};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Payload(u32);

    impl Corruptible for Payload {
        fn corrupt(&mut self, salt: u64) {
            self.0 ^= (salt as u32) | 1;
        }
    }

    #[test]
    fn faulty_path_without_injector_is_plain_delivery() {
        let (fabric, receivers) = Fabric::new(HypercubeTopology::snap1());
        let fate = fabric.send_faulty(ClusterId(0), ClusterId(1), Payload(7));
        assert!(fate.is_clean());
        assert_eq!(receivers[1].try_recv().unwrap(), Payload(7));
        assert_eq!(fabric.messages(), 1);
        let fate = fabric.send_control(ClusterId(0), ClusterId(1), Payload(8));
        assert!(fate.is_clean());
        assert_eq!(receivers[1].try_recv().unwrap(), Payload(8));
        assert_eq!(fabric.messages(), 1, "control sends are uncounted");
    }

    #[test]
    fn injected_drops_never_arrive_but_are_counted() {
        let injector = Arc::new(FaultInjector::new(FaultPlan::seeded(11).drops(1.0)));
        let (fabric, receivers) =
            Fabric::with_injector(HypercubeTopology::snap1(), Arc::clone(&injector));
        for i in 0..20 {
            let fate = fabric.send_faulty(ClusterId(0), ClusterId(3), Payload(i));
            assert!(fate.dropped);
        }
        assert!(receivers[3].try_recv().is_err());
        assert_eq!(fabric.messages(), 20, "drops still count as traffic");
        assert_eq!(injector.report().injected_drops, 20);
    }

    #[test]
    fn injected_duplicates_arrive_twice() {
        let injector = Arc::new(FaultInjector::new(FaultPlan::seeded(11).duplicates(1.0)));
        let (fabric, receivers) =
            Fabric::with_injector(HypercubeTopology::snap1(), Arc::clone(&injector));
        let fate = fabric.send_faulty(ClusterId(0), ClusterId(3), Payload(9));
        assert!(fate.duplicated);
        assert_eq!(receivers[3].try_recv().unwrap(), Payload(9));
        assert_eq!(receivers[3].try_recv().unwrap(), Payload(9));
        assert!(receivers[3].try_recv().is_err());
    }

    #[test]
    fn injected_corruption_alters_payload() {
        let injector = Arc::new(FaultInjector::new(FaultPlan::seeded(11).corruptions(1.0)));
        let (fabric, receivers) =
            Fabric::with_injector(HypercubeTopology::snap1(), Arc::clone(&injector));
        fabric.send_faulty(ClusterId(0), ClusterId(3), Payload(9));
        assert_ne!(receivers[3].try_recv().unwrap(), Payload(9));
    }

    #[test]
    fn delayed_messages_arrive_after_poll() {
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::seeded(11).delays(1.0, 2_000_000),
        ));
        let (fabric, receivers) =
            Fabric::with_injector(HypercubeTopology::snap1(), Arc::clone(&injector));
        let fate = fabric.send_faulty(ClusterId(0), ClusterId(3), Payload(5));
        assert!(fate.delay_ns > 0);
        assert!(receivers[3].try_recv().is_err(), "not delivered yet");
        assert_eq!(fabric.pending_delayed(), 1);
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            fabric.poll_delayed();
            if let Ok(got) = receivers[3].try_recv() {
                assert_eq!(got, Payload(5));
                break;
            }
            assert!(Instant::now() < deadline, "delayed message never arrived");
            thread::yield_now();
        }
        assert_eq!(fabric.pending_delayed(), 0);
    }
}
