//! Threaded message fabric: the hypercube as real channels.
//!
//! The threaded execution engine exchanges marker messages between
//! cluster threads through this fabric. Logical delivery is direct (the
//! receiving cluster gets the message in one `send`), but the fabric
//! computes the hypercube hop count for every message so the traffic
//! statistics match the modelled network.

use crate::topology::HypercubeTopology;
use crossbeam::channel::{unbounded, Receiver, Sender};
use snap_kb::ClusterId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sending half of the fabric, cloneable across cluster threads.
#[derive(Debug, Clone)]
pub struct Fabric<T> {
    topology: Arc<HypercubeTopology>,
    senders: Vec<Sender<T>>,
    messages: Arc<AtomicU64>,
    hops: Arc<AtomicU64>,
}

impl<T> Fabric<T> {
    /// Creates a fabric over `topology`; returns the fabric plus one
    /// receiver per cluster (in cluster order).
    pub fn new(topology: HypercubeTopology) -> (Self, Vec<Receiver<T>>) {
        let n = topology.cluster_count();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        (
            Fabric {
                topology: Arc::new(topology),
                senders,
                messages: Arc::new(AtomicU64::new(0)),
                hops: Arc::new(AtomicU64::new(0)),
            },
            receivers,
        )
    }

    /// Sends `message` from `from` to `to`, recording the hypercube hop
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if either cluster is outside the topology or the receiver
    /// has been dropped.
    pub fn send(&self, from: ClusterId, to: ClusterId, message: T) {
        let hops = self.topology.distance(from, to) as u64;
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.hops.fetch_add(hops, Ordering::Relaxed);
        self.senders[to.index()]
            .send(message)
            .expect("fabric receiver dropped while senders alive");
    }

    /// The topology the fabric routes over.
    pub fn topology(&self) -> &HypercubeTopology {
        &self.topology
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total hypercube hops across all messages.
    pub fn hops(&self) -> u64 {
        self.hops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn messages_arrive_at_their_cluster() {
        let (fabric, receivers) = Fabric::new(HypercubeTopology::snap1());
        fabric.send(ClusterId(0), ClusterId(23), 42u32);
        fabric.send(ClusterId(5), ClusterId(23), 43u32);
        let rx = &receivers[23];
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![42, 43]);
        assert!(receivers[0].try_recv().is_err());
        assert_eq!(fabric.messages(), 2);
        // 0→23 differs in all three fields, 5→23 (L:1→3, X:1→1, Y:0→1) in two.
        assert_eq!(fabric.hops(), 5);
    }

    #[test]
    fn fabric_works_across_threads() {
        let (fabric, receivers) = Fabric::new(HypercubeTopology::snap1());
        let f2 = fabric.clone();
        let sender = thread::spawn(move || {
            for i in 0..100u32 {
                f2.send(ClusterId((i % 32) as u8), ClusterId(7), i);
            }
        });
        let mut sum = 0u32;
        for _ in 0..100 {
            sum += receivers[7].recv().unwrap();
        }
        sender.join().unwrap();
        assert_eq!(sum, (0..100).sum());
        assert_eq!(fabric.messages(), 100);
    }
}
