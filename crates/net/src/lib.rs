//! # snap-net — the SNAP-1 interconnect
//!
//! SNAP-1 separates communication onto three independent networks so that
//! instruction broadcast, marker traffic, and instrumentation never
//! contend:
//!
//! * [`BusModel`] — the **global bus** the controller broadcasts SNAP
//!   instructions over (and retrieves results through);
//! * [`HypercubeTopology`] — the **4-ary hypercube** of spanning
//!   four-port memories carrying fixed 64-bit [`MarkerMessage`]s between
//!   clusters in at most `O(log N)` hops;
//! * [`PerfCollector`] — the **performance-collection network** of 2 Mb/s
//!   serial links feeding a central timestamped FIFO.
//!
//! [`Fabric`] is the threaded engine's realization of the hypercube using
//! channels, with identical hop accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod fabric;
mod message;
mod perf;
mod topology;

pub use bus::BusModel;
pub use fabric::Fabric;
pub use message::MarkerMessage;
pub use perf::{PerfCollector, PerfEvent, RECORD_BITS, RECORD_SHIFT_NS, SERIAL_LINK_BPS};
pub use topology::HypercubeTopology;
