//! Marker activation messages.
//!
//! Inter-cluster marker traffic uses **fixed 64-bit messages** regardless
//! of propagation-rule complexity: the microcode table of rules is
//! downloaded at compile time, so a message carries only single-byte
//! tokens for the rule and function plus the marker, value, destination
//! and origin addresses. This struct is the logical form of that message;
//! [`MarkerMessage::WIRE_BYTES`] is the size the timing models charge.

use serde::{Deserialize, Serialize};
use snap_kb::{Marker, NodeId};

/// One marker activation message travelling between clusters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkerMessage {
    /// Marker being propagated (`marker-2` of the `PROPAGATE`).
    pub marker: Marker,
    /// Current accumulated value.
    pub value: f32,
    /// Origin node of this marker instance (for binding).
    pub origin: NodeId,
    /// Destination node (the cluster is derived from the partition).
    pub destination: NodeId,
    /// Token naming the propagation rule in the downloaded microcode
    /// table.
    pub rule_token: u8,
    /// Current state within the rule's state machine.
    pub rule_state: u8,
    /// Token naming the per-step arithmetic/logic function.
    pub func_token: u8,
    /// Propagation tier (wave depth) for the tiered synchronization
    /// protocol.
    pub level: u8,
}

impl MarkerMessage {
    /// Wire size of a marker message: 64 bits.
    pub const WIRE_BYTES: u64 = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_fixed_size_and_copyable() {
        let m = MarkerMessage {
            marker: Marker::complex(4),
            value: 1.5,
            origin: NodeId(7),
            destination: NodeId(99),
            rule_token: 2,
            rule_state: 1,
            func_token: 0,
            level: 3,
        };
        let n = m; // Copy
        assert_eq!(m, n);
        assert_eq!(MarkerMessage::WIRE_BYTES, 8);
    }
}
