//! The structured event vocabulary.
//!
//! Every engine and runtime subsystem reports its activity as
//! [`TraceEvent`]s: a source track (a cluster, or one of the pseudo
//! tracks for the controller and global structures), a [`Stamp`], and an
//! [`EventKind`]. The same vocabulary covers both timebases — the
//! discrete-event engine stamps events with simulated nanoseconds, the
//! threaded engine with monotonic wall-clock nanoseconds plus the
//! logical phase index — so one exporter renders either.

use serde::{Deserialize, Serialize};

/// Pseudo-track for events raised by the controller rather than a
/// cluster (phase transitions, barrier completion).
pub const CONTROLLER_TRACK: u16 = u16::MAX;

/// Pseudo-track for events raised by shared structures that have no
/// cluster identity (the tiered barrier's counter network).
pub const GLOBAL_TRACK: u16 = u16::MAX - 1;

/// When an event happened, in the emitting engine's timebase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stamp {
    /// Simulated nanoseconds (the DES and sequential engines; the same
    /// clock their run-report totals use).
    Sim(u64),
    /// Monotonic wall-clock nanoseconds since run start, plus the
    /// logical phase index the run was in (the threaded engine; wall
    /// time alone cannot be compared across runs, the phase can).
    Wall {
        /// Nanoseconds since the tracer was created.
        ns: u64,
        /// Logical phase index at emission time.
        phase: u32,
    },
}

impl Stamp {
    /// The stamp's time in microseconds (the chrome-trace unit).
    pub fn micros(&self) -> f64 {
        let ns = match self {
            Stamp::Sim(ns) => *ns,
            Stamp::Wall { ns, .. } => *ns,
        };
        ns as f64 / 1_000.0
    }

    /// The stamp's raw nanosecond value, timebase notwithstanding.
    pub fn nanos(&self) -> u64 {
        match self {
            Stamp::Sim(ns) => *ns,
            Stamp::Wall { ns, .. } => *ns,
        }
    }
}

/// The controller-visible phases a run moves through. One `PhaseStat`
/// is accumulated per phase in program order, which is what makes
/// cross-engine phase-by-phase comparison possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Marker configuration: search, boolean, and set/clear
    /// instructions broadcast to the array.
    Configure,
    /// An overlapped group of `PROPAGATE` instructions.
    Propagate,
    /// Result accumulation (`COLLECT-*`).
    Collect,
    /// Controller-side node/link maintenance.
    Maintenance,
    /// A barrier synchronization (explicit or group-closing).
    Barrier,
}

impl PhaseKind {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseKind::Configure => "configure",
            PhaseKind::Propagate => "propagate",
            PhaseKind::Collect => "collect",
            PhaseKind::Maintenance => "maintenance",
            PhaseKind::Barrier => "barrier",
        }
    }
}

/// Which fault class an injection event reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A message copy was dropped in flight.
    Drop,
    /// A message was duplicated in flight.
    Duplicate,
    /// A message was held back by an injected delay.
    Delay,
    /// A message was corrupted in flight.
    Corruption,
    /// A PE expansion was stretched by an injected stall.
    Stall,
    /// The cluster arbiter starved a request.
    Starvation,
    /// A worker thread was panicked by the plan.
    Panic,
}

impl FaultKind {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Delay => "delay",
            FaultKind::Corruption => "corruption",
            FaultKind::Stall => "stall",
            FaultKind::Starvation => "starvation",
            FaultKind::Panic => "panic",
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A phase opened (controller track).
    PhaseStart {
        /// The phase's kind.
        kind: PhaseKind,
        /// Program-order phase index.
        index: u32,
    },
    /// A phase closed (controller track).
    PhaseEnd {
        /// The phase's kind.
        kind: PhaseKind,
        /// Program-order phase index.
        index: u32,
    },
    /// An off-cluster marker message left its sending cluster.
    MsgSend {
        /// Sending cluster.
        from: u8,
        /// Destination cluster.
        to: u8,
        /// Hypercube hops on the route.
        hops: u8,
    },
    /// A marker message was applied at its destination cluster.
    MsgRecv {
        /// Sending cluster.
        from: u8,
        /// Destination cluster.
        to: u8,
    },
    /// An unacknowledged (or dropped/corrupted) message was
    /// retransmitted.
    MsgRetry {
        /// Sending cluster.
        from: u8,
        /// Destination cluster.
        to: u8,
    },
    /// A created-token arrived at the tiered barrier's counter network.
    BarrierArrive {
        /// Propagation tier of the token.
        level: u8,
    },
    /// The barrier condition held and the waiters were released.
    BarrierRelease {
        /// How long the controller waited, in the emitting timebase's
        /// nanoseconds.
        wait_ns: u64,
    },
    /// The barrier watchdog classified a stall instead of completing.
    BarrierStall {
        /// Tokens still accounted in flight.
        in_flight: i64,
        /// PEs still holding the AND-tree low.
        busy_pes: u64,
    },
    /// The arbiter granted a critical section immediately.
    ArbiterGrant,
    /// The arbiter deferred a request behind an earlier holder.
    ArbiterDefer {
        /// How long the request waited for its grant.
        wait_ns: u64,
    },
    /// The fault plan injected a fault here.
    Fault {
        /// Which class of fault.
        kind: FaultKind,
    },
    /// A sampled work-queue / outbox depth observation.
    QueueDepth {
        /// Entries queued at observation time.
        depth: u32,
    },
}

impl EventKind {
    /// Short display name for exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PhaseStart { kind, .. } | EventKind::PhaseEnd { kind, .. } => kind.name(),
            EventKind::MsgSend { .. } => "send",
            EventKind::MsgRecv { .. } => "recv",
            EventKind::MsgRetry { .. } => "retry",
            EventKind::BarrierArrive { .. } => "barrier-arrive",
            EventKind::BarrierRelease { .. } => "barrier-release",
            EventKind::BarrierStall { .. } => "barrier-stall",
            EventKind::ArbiterGrant => "arbiter-grant",
            EventKind::ArbiterDefer { .. } => "arbiter-defer",
            EventKind::Fault { kind } => kind.name(),
            EventKind::QueueDepth { .. } => "queue-depth",
        }
    }
}

/// One recorded observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Source track: a cluster index, or [`CONTROLLER_TRACK`] /
    /// [`GLOBAL_TRACK`].
    pub track: u16,
    /// When it happened.
    pub stamp: Stamp,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_convert_to_micros() {
        assert_eq!(Stamp::Sim(2_500).micros(), 2.5);
        assert_eq!(
            Stamp::Wall {
                ns: 1_000,
                phase: 3
            }
            .micros(),
            1.0
        );
        assert_eq!(Stamp::Wall { ns: 7, phase: 0 }.nanos(), 7);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PhaseKind::Propagate.name(), "propagate");
        assert_eq!(FaultKind::Corruption.name(), "corruption");
        assert_eq!(
            EventKind::MsgSend {
                from: 0,
                to: 1,
                hops: 2
            }
            .name(),
            "send"
        );
        assert_eq!(
            EventKind::PhaseStart {
                kind: PhaseKind::Barrier,
                index: 0
            }
            .name(),
            "barrier"
        );
    }
}
