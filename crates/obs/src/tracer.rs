//! The recording handle engines carry.
//!
//! A [`Tracer`] is cheap to clone and thread-safe; engines call its
//! recording methods from hot paths. Two gates keep release benchmarks
//! honest:
//!
//! * **compile time** — without the crate's `record` feature every
//!   method body is empty and `is_enabled` is a constant `false`, so
//!   instrumented call sites (and any `if tracer.is_enabled()` guards
//!   around stamp computation) optimize away entirely;
//! * **run time** — with the feature compiled in, a machine without an
//!   [`ObsConfig`] gets a disabled tracer whose methods return after one
//!   pointer test, and an enabled tracer still subsamples raw events by
//!   `sample_every` and stops appending at `max_events` (counters and
//!   histograms are always exact).

#[cfg(feature = "record")]
use crate::event::{EventKind, TraceEvent};
use crate::event::{FaultKind, PhaseKind, Stamp};
use crate::report::TraceReport;
#[cfg(feature = "record")]
use crate::report::{ClusterMetrics, Histogram, PhaseStat};
use serde::{Deserialize, Serialize};

/// Runtime tracing configuration, carried in the machine config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Record one of every `sample_every` raw events (1 = all). Phase
    /// transitions are structural and never sampled out.
    pub sample_every: u32,
    /// Hard cap on recorded events; once reached, further events only
    /// bump the dropped count. Zero keeps counters/histograms/phases
    /// without any event buffer.
    pub max_events: usize,
}

impl ObsConfig {
    /// Record everything (bounded by a generous default cap).
    pub fn full() -> Self {
        ObsConfig {
            sample_every: 1,
            max_events: 1 << 20,
        }
    }

    /// Record one raw event in `n` (counters stay exact).
    pub fn sampled(n: u32) -> Self {
        ObsConfig {
            sample_every: n.max(1),
            max_events: 1 << 20,
        }
    }

    /// Keep counters, histograms, and phase statistics but no raw
    /// event buffer.
    pub fn counters_only() -> Self {
        ObsConfig {
            sample_every: 1,
            max_events: 0,
        }
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(feature = "record")]
mod imp {
    use super::*;
    use parking_lot::{Mutex, RwLock};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    #[derive(Default)]
    pub(super) struct Cells {
        pub msgs_sent: AtomicU64,
        pub msgs_recv: AtomicU64,
        pub retries: AtomicU64,
        pub activations: AtomicU64,
        pub expansions: AtomicU64,
        pub arbiter_grants: AtomicU64,
        pub arbiter_defers: AtomicU64,
        pub arbiter_wait_ns: AtomicU64,
        pub barrier_waits: AtomicU64,
        pub barrier_wait_ns: AtomicU64,
        pub faults_injected: AtomicU64,
        pub max_queue_depth: AtomicU64,
    }

    impl Cells {
        pub fn snapshot(&self) -> ClusterMetrics {
            ClusterMetrics {
                msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
                msgs_recv: self.msgs_recv.load(Ordering::Relaxed),
                retries: self.retries.load(Ordering::Relaxed),
                activations: self.activations.load(Ordering::Relaxed),
                expansions: self.expansions.load(Ordering::Relaxed),
                arbiter_grants: self.arbiter_grants.load(Ordering::Relaxed),
                arbiter_defers: self.arbiter_defers.load(Ordering::Relaxed),
                arbiter_wait_ns: self.arbiter_wait_ns.load(Ordering::Relaxed),
                barrier_waits: self.barrier_waits.load(Ordering::Relaxed),
                barrier_wait_ns: self.barrier_wait_ns.load(Ordering::Relaxed),
                faults_injected: self.faults_injected.load(Ordering::Relaxed),
                max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            }
        }
    }

    pub(super) struct AtomicHist {
        buckets: Vec<AtomicU64>,
        count: AtomicU64,
        sum: AtomicU64,
        max: AtomicU64,
    }

    impl AtomicHist {
        pub fn new() -> Self {
            AtomicHist {
                buckets: (0..crate::report::HISTOGRAM_BUCKETS)
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }
        }

        pub fn record(&self, value: u64) {
            self.buckets[Histogram::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            self.max.fetch_max(value, Ordering::Relaxed);
        }

        pub fn snapshot(&self) -> Histogram {
            Histogram {
                buckets: self
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                count: self.count.load(Ordering::Relaxed),
                sum: self.sum.load(Ordering::Relaxed),
                max: self.max.load(Ordering::Relaxed),
            }
        }
    }

    /// The currently-open phase's accumulator.
    pub(super) struct PhaseCells {
        pub kind: PhaseKind,
        pub start_ns: u64,
        pub activations: AtomicU64,
        pub expansions: AtomicU64,
        pub messages: AtomicU64,
    }

    pub(super) struct Inner {
        pub cfg: ObsConfig,
        pub t0: Instant,
        pub clusters: Vec<Cells>,
        pub current_phase: RwLock<Option<PhaseCells>>,
        pub done_phases: Mutex<Vec<PhaseStat>>,
        pub phase_count: AtomicU64,
        pub events: Mutex<Vec<TraceEvent>>,
        pub dropped: AtomicU64,
        pub tick: AtomicU64,
        pub queue_depth: AtomicHist,
        pub barrier_wait: AtomicHist,
    }

    impl Inner {
        pub fn new(cfg: ObsConfig, clusters: usize) -> Self {
            Inner {
                cfg,
                t0: Instant::now(),
                clusters: (0..clusters).map(|_| Cells::default()).collect(),
                current_phase: RwLock::new(None),
                done_phases: Mutex::new(Vec::new()),
                phase_count: AtomicU64::new(0),
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                tick: AtomicU64::new(0),
                queue_depth: AtomicHist::new(),
                barrier_wait: AtomicHist::new(),
            }
        }

        /// Appends a raw event, honoring sampling and the cap.
        /// `structural` events (phase transitions) bypass sampling.
        pub fn push(&self, ev: TraceEvent, structural: bool) {
            if !structural {
                let tick = self.tick.fetch_add(1, Ordering::Relaxed);
                if self.cfg.sample_every > 1
                    && !tick.is_multiple_of(u64::from(self.cfg.sample_every))
                {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            let mut events = self.events.lock();
            if events.len() >= self.cfg.max_events {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                events.push(ev);
            }
        }

        pub fn cells(&self, track: u16) -> Option<&Cells> {
            self.clusters.get(usize::from(track))
        }

        pub fn phase_add(&self, f: impl FnOnce(&PhaseCells)) {
            if let Some(p) = self.current_phase.read().as_ref() {
                f(p);
            }
        }
    }

    impl Inner {
        pub fn queue_hist(&self) -> &AtomicHist {
            &self.queue_depth
        }
        pub fn barrier_hist(&self) -> &AtomicHist {
            &self.barrier_wait
        }
    }
}

#[cfg(feature = "record")]
use imp::{Inner, PhaseCells};
#[cfg(feature = "record")]
use std::sync::{atomic::Ordering, Arc};

/// The recording handle. See the module docs for the gating model.
#[derive(Clone, Default)]
pub struct Tracer {
    #[cfg(feature = "record")]
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer from an optional runtime config: `None` disables.
    /// Without the `record` feature the result is always disabled.
    pub fn from_config(cfg: Option<&ObsConfig>, clusters: usize) -> Self {
        #[cfg(feature = "record")]
        {
            Tracer {
                inner: cfg.map(|c| Arc::new(Inner::new(*c, clusters))),
            }
        }
        #[cfg(not(feature = "record"))]
        {
            let _ = (cfg, clusters);
            Tracer::default()
        }
    }
}

#[cfg(feature = "record")]
impl Tracer {
    /// `true` when this tracer records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A wall-clock stamp (ns since tracer creation) carrying the
    /// current logical phase index.
    #[inline]
    pub fn wall_stamp(&self) -> Stamp {
        match &self.inner {
            Some(i) => Stamp::Wall {
                ns: i.t0.elapsed().as_nanos() as u64,
                phase: i.phase_count.load(Ordering::Relaxed) as u32,
            },
            None => Stamp::Wall { ns: 0, phase: 0 },
        }
    }

    /// Opens a phase of `kind` at `stamp`.
    pub fn phase_start(&self, kind: PhaseKind, stamp: Stamp) {
        let Some(i) = &self.inner else { return };
        let index = i.phase_count.fetch_add(1, Ordering::Relaxed) as u32;
        *i.current_phase.write() = Some(PhaseCells {
            kind,
            start_ns: stamp.nanos(),
            activations: Default::default(),
            expansions: Default::default(),
            messages: Default::default(),
        });
        i.push(
            TraceEvent {
                track: crate::event::CONTROLLER_TRACK,
                stamp,
                kind: EventKind::PhaseStart { kind, index },
            },
            true,
        );
    }

    /// Closes the open phase at `stamp`, folding its accumulators into
    /// the report's phase list.
    pub fn phase_end(&self, stamp: Stamp) {
        let Some(i) = &self.inner else { return };
        let Some(p) = i.current_phase.write().take() else {
            return;
        };
        let mut done = i.done_phases.lock();
        let index = done.len() as u32;
        done.push(PhaseStat {
            kind: p.kind,
            activations: p.activations.load(Ordering::Relaxed),
            expansions: p.expansions.load(Ordering::Relaxed),
            messages: p.messages.load(Ordering::Relaxed),
            duration_ns: stamp.nanos().saturating_sub(p.start_ns),
        });
        let kind = p.kind;
        drop(done);
        i.push(
            TraceEvent {
                track: crate::event::CONTROLLER_TRACK,
                stamp,
                kind: EventKind::PhaseEnd { kind, index },
            },
            true,
        );
    }

    /// Records one applied marker activation on `track`.
    #[inline]
    pub fn activation(&self, track: u16) {
        let Some(i) = &self.inner else { return };
        if let Some(c) = i.cells(track) {
            c.activations.fetch_add(1, Ordering::Relaxed);
        }
        i.phase_add(|p| {
            p.activations.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// Records one node expansion on `track`.
    #[inline]
    pub fn expansion(&self, track: u16) {
        let Some(i) = &self.inner else { return };
        if let Some(c) = i.cells(track) {
            c.expansions.fetch_add(1, Ordering::Relaxed);
        }
        i.phase_add(|p| {
            p.expansions.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// Records an off-cluster message send.
    pub fn msg_send(&self, from: u16, to: u16, hops: u8, stamp: Stamp) {
        let Some(i) = &self.inner else { return };
        if let Some(c) = i.cells(from) {
            c.msgs_sent.fetch_add(1, Ordering::Relaxed);
        }
        i.phase_add(|p| {
            p.messages.fetch_add(1, Ordering::Relaxed);
        });
        i.push(
            TraceEvent {
                track: from,
                stamp,
                kind: EventKind::MsgSend {
                    from: from as u8,
                    to: to as u8,
                    hops,
                },
            },
            false,
        );
    }

    /// Records a message applied at its destination.
    pub fn msg_recv(&self, from: u16, to: u16, stamp: Stamp) {
        let Some(i) = &self.inner else { return };
        if let Some(c) = i.cells(to) {
            c.msgs_recv.fetch_add(1, Ordering::Relaxed);
        }
        i.push(
            TraceEvent {
                track: to,
                stamp,
                kind: EventKind::MsgRecv {
                    from: from as u8,
                    to: to as u8,
                },
            },
            false,
        );
    }

    /// Records a retransmission from `from` toward `to`.
    pub fn msg_retry(&self, from: u16, to: u16, stamp: Stamp) {
        let Some(i) = &self.inner else { return };
        if let Some(c) = i.cells(from) {
            c.retries.fetch_add(1, Ordering::Relaxed);
        }
        i.push(
            TraceEvent {
                track: from,
                stamp,
                kind: EventKind::MsgRetry {
                    from: from as u8,
                    to: to as u8,
                },
            },
            false,
        );
    }

    /// Records a created-token arrival at the barrier counter network.
    pub fn barrier_arrive(&self, level: u8, stamp: Stamp) {
        let Some(i) = &self.inner else { return };
        i.push(
            TraceEvent {
                track: crate::event::GLOBAL_TRACK,
                stamp,
                kind: EventKind::BarrierArrive { level },
            },
            false,
        );
    }

    /// Records a completed barrier wait of `wait_ns` on `track`.
    pub fn barrier_wait(&self, track: u16, wait_ns: u64, stamp: Stamp) {
        let Some(i) = &self.inner else { return };
        if let Some(c) = i.cells(track) {
            c.barrier_waits.fetch_add(1, Ordering::Relaxed);
            c.barrier_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        }
        i.barrier_hist().record(wait_ns);
        i.push(
            TraceEvent {
                track,
                stamp,
                kind: EventKind::BarrierRelease { wait_ns },
            },
            false,
        );
    }

    /// Records a watchdog stall classification.
    pub fn barrier_stall(&self, in_flight: i64, busy_pes: u64, stamp: Stamp) {
        let Some(i) = &self.inner else { return };
        i.push(
            TraceEvent {
                track: crate::event::GLOBAL_TRACK,
                stamp,
                kind: EventKind::BarrierStall {
                    in_flight,
                    busy_pes,
                },
            },
            true,
        );
    }

    /// Records an arbiter decision on `track`: an immediate grant when
    /// `wait_ns` is zero, a deferral otherwise.
    pub fn arbiter(&self, track: u16, wait_ns: u64, stamp: Stamp) {
        let Some(i) = &self.inner else { return };
        if let Some(c) = i.cells(track) {
            if wait_ns == 0 {
                c.arbiter_grants.fetch_add(1, Ordering::Relaxed);
            } else {
                c.arbiter_defers.fetch_add(1, Ordering::Relaxed);
                c.arbiter_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
            }
        }
        i.push(
            TraceEvent {
                track,
                stamp,
                kind: if wait_ns == 0 {
                    EventKind::ArbiterGrant
                } else {
                    EventKind::ArbiterDefer { wait_ns }
                },
            },
            false,
        );
    }

    /// Records an injected fault of `kind` on `track`.
    pub fn fault(&self, track: u16, kind: FaultKind, stamp: Stamp) {
        let Some(i) = &self.inner else { return };
        if let Some(c) = i.cells(track) {
            c.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        i.push(
            TraceEvent {
                track,
                stamp,
                kind: EventKind::Fault { kind },
            },
            false,
        );
    }

    /// Records a work-queue / outbox depth observation on `track`.
    pub fn queue_depth(&self, track: u16, depth: u64, stamp: Stamp) {
        let Some(i) = &self.inner else { return };
        if let Some(c) = i.cells(track) {
            c.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        }
        i.queue_hist().record(depth);
        i.push(
            TraceEvent {
                track,
                stamp,
                kind: EventKind::QueueDepth {
                    depth: depth.min(u64::from(u32::MAX)) as u32,
                },
            },
            false,
        );
    }

    /// Snapshots everything recorded so far into a [`TraceReport`].
    pub fn report(&self) -> TraceReport {
        let Some(i) = &self.inner else {
            return TraceReport::default();
        };
        TraceReport {
            enabled: true,
            clusters: i.clusters.iter().map(|c| c.snapshot()).collect(),
            phases: i.done_phases.lock().clone(),
            events: i.events.lock().clone(),
            events_dropped: i.dropped.load(Ordering::Relaxed),
            queue_depth: i.queue_hist().snapshot(),
            barrier_wait: i.barrier_hist().snapshot(),
        }
    }
}

#[cfg(not(feature = "record"))]
#[allow(missing_docs)]
impl Tracer {
    /// Constant `false`: the `record` feature is compiled out, so every
    /// guard folds to a no-op.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    pub fn wall_stamp(&self) -> Stamp {
        Stamp::Wall { ns: 0, phase: 0 }
    }

    #[inline(always)]
    pub fn phase_start(&self, _kind: PhaseKind, _stamp: Stamp) {}

    #[inline(always)]
    pub fn phase_end(&self, _stamp: Stamp) {}

    #[inline(always)]
    pub fn activation(&self, _track: u16) {}

    #[inline(always)]
    pub fn expansion(&self, _track: u16) {}

    #[inline(always)]
    pub fn msg_send(&self, _from: u16, _to: u16, _hops: u8, _stamp: Stamp) {}

    #[inline(always)]
    pub fn msg_recv(&self, _from: u16, _to: u16, _stamp: Stamp) {}

    #[inline(always)]
    pub fn msg_retry(&self, _from: u16, _to: u16, _stamp: Stamp) {}

    #[inline(always)]
    pub fn barrier_arrive(&self, _level: u8, _stamp: Stamp) {}

    #[inline(always)]
    pub fn barrier_wait(&self, _track: u16, _wait_ns: u64, _stamp: Stamp) {}

    #[inline(always)]
    pub fn barrier_stall(&self, _in_flight: i64, _busy_pes: u64, _stamp: Stamp) {}

    #[inline(always)]
    pub fn arbiter(&self, _track: u16, _wait_ns: u64, _stamp: Stamp) {}

    #[inline(always)]
    pub fn fault(&self, _track: u16, _kind: FaultKind, _stamp: Stamp) {}

    #[inline(always)]
    pub fn queue_depth(&self, _track: u16, _depth: u64, _stamp: Stamp) {}

    /// Always the default (empty, disabled) report.
    pub fn report(&self) -> TraceReport {
        TraceReport::default()
    }
}

#[cfg(all(test, feature = "record"))]
mod tests {
    use super::*;
    use crate::event::{FaultKind, CONTROLLER_TRACK};

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.activation(0);
        t.msg_send(0, 1, 1, Stamp::Sim(5));
        assert!(t.report().is_empty());
    }

    #[test]
    fn counters_phases_and_events_accumulate() {
        let t = Tracer::from_config(Some(&ObsConfig::full()), 2);
        assert!(t.is_enabled());
        t.phase_start(PhaseKind::Propagate, Stamp::Sim(10));
        t.activation(0);
        t.activation(1);
        t.expansion(0);
        t.msg_send(0, 1, 2, Stamp::Sim(20));
        t.msg_recv(0, 1, Stamp::Sim(30));
        t.phase_end(Stamp::Sim(40));
        t.barrier_wait(CONTROLLER_TRACK, 100, Stamp::Sim(140));
        t.fault(1, FaultKind::Drop, Stamp::Sim(150));
        t.queue_depth(0, 4, Stamp::Sim(160));
        let r = t.report();
        assert!(r.enabled);
        assert_eq!(r.clusters[0].activations, 1);
        assert_eq!(r.clusters[0].msgs_sent, 1);
        assert_eq!(r.clusters[1].msgs_recv, 1);
        assert_eq!(r.clusters[1].faults_injected, 1);
        assert_eq!(r.clusters[0].max_queue_depth, 4);
        assert_eq!(r.phases.len(), 1);
        let p = &r.phases[0];
        assert_eq!(p.kind, PhaseKind::Propagate);
        assert_eq!(p.activations, 2);
        assert_eq!(p.expansions, 1);
        assert_eq!(p.messages, 1);
        assert_eq!(p.duration_ns, 30);
        assert_eq!(r.barrier_wait.count, 1);
        assert!(r.events.len() >= 7);
        assert_eq!(r.events_dropped, 0);
    }

    #[test]
    fn sampling_drops_raw_events_but_not_counters() {
        let t = Tracer::from_config(Some(&ObsConfig::sampled(10)), 1);
        for i in 0..100 {
            t.msg_send(0, 0, 1, Stamp::Sim(i));
        }
        let r = t.report();
        assert_eq!(r.clusters[0].msgs_sent, 100, "counters stay exact");
        assert_eq!(r.events.len(), 10);
        assert_eq!(r.events_dropped, 90);
    }

    #[test]
    fn event_cap_is_honored() {
        let t = Tracer::from_config(
            Some(&ObsConfig {
                sample_every: 1,
                max_events: 3,
            }),
            1,
        );
        for i in 0..10 {
            t.msg_send(0, 0, 1, Stamp::Sim(i));
        }
        let r = t.report();
        assert_eq!(r.events.len(), 3);
        assert_eq!(r.events_dropped, 7);
        assert_eq!(r.clusters[0].msgs_sent, 10);
    }

    #[test]
    fn counters_only_config_keeps_no_events() {
        let t = Tracer::from_config(Some(&ObsConfig::counters_only()), 1);
        t.phase_start(PhaseKind::Configure, Stamp::Sim(0));
        t.activation(0);
        t.phase_end(Stamp::Sim(5));
        let r = t.report();
        assert!(r.events.is_empty());
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.clusters[0].activations, 1);
    }

    #[test]
    fn wall_stamp_tracks_phase_index() {
        let t = Tracer::from_config(Some(&ObsConfig::full()), 1);
        let s0 = t.wall_stamp();
        assert!(matches!(s0, Stamp::Wall { phase: 0, .. }));
        t.phase_start(PhaseKind::Configure, t.wall_stamp());
        let s1 = t.wall_stamp();
        assert!(matches!(s1, Stamp::Wall { phase: 1, .. }));
    }
}
