//! Chrome-trace (`about:tracing` / Perfetto) JSON export.
//!
//! The exporter renders a [`TraceReport`]'s event buffer into the
//! trace-event JSON object format: `{"traceEvents": [...]}`. Each
//! cluster becomes one process (`pid`), named via metadata events, so
//! Perfetto shows per-cluster tracks; the controller and global pseudo
//! tracks get their own processes. Phase start/end pairs become `B`/`E`
//! duration slices, barrier releases and arbiter deferrals become `X`
//! complete slices spanning their wait, and everything else is an `i`
//! instant. Timestamps are the stamp's microseconds — simulated time for
//! the discrete-event engine, monotonic wall time for the threaded one.
//!
//! The JSON is assembled by hand: the event shapes are small and fixed,
//! and the build carries no JSON serializer.

use crate::event::{EventKind, Stamp, TraceEvent, CONTROLLER_TRACK, GLOBAL_TRACK};
use crate::report::TraceReport;

/// Stable `pid` for a track. Cluster tracks keep their index; the pseudo
/// tracks get the next ids after the real clusters so they sort last.
fn pid_of(track: u16, clusters: usize) -> usize {
    match track {
        CONTROLLER_TRACK => clusters,
        GLOBAL_TRACK => clusters + 1,
        c => usize::from(c),
    }
}

fn push_meta(out: &mut String, pid: usize, name: &str) {
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{name}\"}}}}"
    ));
}

/// One `"args"` fragment (no trailing comma handling needed: always
/// rendered as a complete object).
fn args_of(ev: &TraceEvent) -> String {
    let phase = match ev.stamp {
        Stamp::Wall { phase, .. } => Some(phase),
        Stamp::Sim(_) => None,
    };
    let mut fields: Vec<String> = Vec::new();
    if let Some(p) = phase {
        fields.push(format!("\"phase\":{p}"));
    }
    match ev.kind {
        EventKind::PhaseStart { index, .. } | EventKind::PhaseEnd { index, .. } => {
            fields.push(format!("\"index\":{index}"));
        }
        EventKind::MsgSend { from, to, hops } => {
            fields.push(format!("\"from\":{from},\"to\":{to},\"hops\":{hops}"));
        }
        EventKind::MsgRecv { from, to } | EventKind::MsgRetry { from, to } => {
            fields.push(format!("\"from\":{from},\"to\":{to}"));
        }
        EventKind::BarrierArrive { level } => {
            fields.push(format!("\"level\":{level}"));
        }
        EventKind::BarrierRelease { wait_ns } => {
            fields.push(format!("\"wait_ns\":{wait_ns}"));
        }
        EventKind::BarrierStall {
            in_flight,
            busy_pes,
        } => {
            fields.push(format!("\"in_flight\":{in_flight},\"busy_pes\":{busy_pes}"));
        }
        EventKind::ArbiterDefer { wait_ns } => {
            fields.push(format!("\"wait_ns\":{wait_ns}"));
        }
        EventKind::QueueDepth { depth } => {
            fields.push(format!("\"depth\":{depth}"));
        }
        EventKind::ArbiterGrant | EventKind::Fault { .. } => {}
    }
    format!("{{{}}}", fields.join(","))
}

/// Renders `report` as chrome-trace JSON. Returns an empty
/// `traceEvents` document for empty reports, which still loads.
pub fn chrome_trace_json(report: &TraceReport) -> String {
    let clusters = report.clusters.len();
    let mut out = String::with_capacity(64 + report.events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };

    // Track-naming metadata.
    let mut seen = vec![false; clusters + 2];
    for ev in &report.events {
        let pid = pid_of(ev.track, clusters);
        if pid < seen.len() && !seen[pid] {
            seen[pid] = true;
            let name = match ev.track {
                CONTROLLER_TRACK => "controller".to_string(),
                GLOBAL_TRACK => "barrier-network".to_string(),
                c => format!("cluster {c}"),
            };
            sep(&mut out);
            push_meta(&mut out, pid, &name);
        }
    }

    for ev in &report.events {
        let pid = pid_of(ev.track, clusters);
        let ts = ev.stamp.micros();
        let name = ev.kind.name();
        let args = args_of(ev);
        sep(&mut out);
        match ev.kind {
            EventKind::PhaseStart { .. } => {
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"cat\":\"phase\",\"ph\":\"B\",\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":0,\"args\":{args}}}"
                ));
            }
            EventKind::PhaseEnd { .. } => {
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"cat\":\"phase\",\"ph\":\"E\",\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":0,\"args\":{args}}}"
                ));
            }
            EventKind::BarrierRelease { wait_ns } | EventKind::ArbiterDefer { wait_ns } => {
                // A complete slice ending at the stamp: start it wait_ns
                // earlier so the wait renders as occupancy.
                let dur = wait_ns as f64 / 1_000.0;
                let start = (ts - dur).max(0.0);
                let cat = if matches!(ev.kind, EventKind::BarrierRelease { .. }) {
                    "barrier"
                } else {
                    "arbiter"
                };
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\
                     \"ts\":{start},\"dur\":{dur},\"pid\":{pid},\"tid\":0,\"args\":{args}}}"
                ));
            }
            EventKind::Fault { .. } => {
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":0,\"args\":{args}}}"
                ));
            }
            _ => {
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":0,\"args\":{args}}}"
                ));
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FaultKind, PhaseKind};

    fn report_with(events: Vec<TraceEvent>, clusters: usize) -> TraceReport {
        TraceReport {
            enabled: true,
            clusters: vec![Default::default(); clusters],
            events,
            ..Default::default()
        }
    }

    /// A structural validity check with no JSON parser available:
    /// balanced braces/brackets outside strings, balanced quotes, and no
    /// empty or trailing-comma elements.
    fn assert_well_formed(json: &str) {
        let mut depth_obj = 0i32;
        let mut depth_arr = 0i32;
        let mut in_str = false;
        let mut prev = ' ';
        for ch in json.chars() {
            if in_str {
                if ch == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match ch {
                    '"' => in_str = true,
                    '{' => depth_obj += 1,
                    '}' => depth_obj -= 1,
                    '[' => depth_arr += 1,
                    ']' => {
                        depth_arr -= 1;
                        assert_ne!(prev, ',', "trailing comma before ]");
                    }
                    ',' => assert_ne!(prev, ',', "empty element"),
                    _ => {}
                }
                assert!(depth_obj >= 0 && depth_arr >= 0);
            }
            prev = ch;
        }
        assert!(!in_str, "unterminated string");
        assert_eq!(depth_obj, 0, "unbalanced braces");
        assert_eq!(depth_arr, 0, "unbalanced brackets");
    }

    #[test]
    fn empty_report_is_a_loadable_document() {
        let json = chrome_trace_json(&TraceReport::default());
        assert_well_formed(&json);
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn phases_become_duration_slices() {
        let events = vec![
            TraceEvent {
                track: CONTROLLER_TRACK,
                stamp: Stamp::Sim(1_000),
                kind: EventKind::PhaseStart {
                    kind: PhaseKind::Propagate,
                    index: 0,
                },
            },
            TraceEvent {
                track: CONTROLLER_TRACK,
                stamp: Stamp::Sim(5_000),
                kind: EventKind::PhaseEnd {
                    kind: PhaseKind::Propagate,
                    index: 0,
                },
            },
        ];
        let json = chrome_trace_json(&report_with(events, 2));
        assert_well_formed(&json);
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"propagate\""));
        assert!(json.contains("\"name\":\"controller\""));
    }

    #[test]
    fn cluster_events_get_their_own_named_pids() {
        let events = vec![
            TraceEvent {
                track: 0,
                stamp: Stamp::Wall {
                    ns: 2_000,
                    phase: 1,
                },
                kind: EventKind::MsgSend {
                    from: 0,
                    to: 1,
                    hops: 1,
                },
            },
            TraceEvent {
                track: 1,
                stamp: Stamp::Wall {
                    ns: 3_000,
                    phase: 1,
                },
                kind: EventKind::MsgRecv { from: 0, to: 1 },
            },
            TraceEvent {
                track: 1,
                stamp: Stamp::Wall {
                    ns: 4_000,
                    phase: 1,
                },
                kind: EventKind::Fault {
                    kind: FaultKind::Drop,
                },
            },
        ];
        let json = chrome_trace_json(&report_with(events, 2));
        assert_well_formed(&json);
        assert!(json.contains("\"name\":\"cluster 0\""));
        assert!(json.contains("\"name\":\"cluster 1\""));
        assert!(json.contains("\"cat\":\"fault\""));
        assert!(json.contains("\"phase\":1"));
    }

    #[test]
    fn waits_become_complete_slices_with_duration() {
        let events = vec![TraceEvent {
            track: GLOBAL_TRACK,
            stamp: Stamp::Sim(10_000),
            kind: EventKind::BarrierRelease { wait_ns: 4_000 },
        }];
        let json = chrome_trace_json(&report_with(events, 1));
        assert_well_formed(&json);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":4"));
        assert!(json.contains("\"ts\":6"));
        assert!(json.contains("barrier-network"));
    }
}
