//! # snap-obs — tracing and metrics for the SNAP-1 reproduction
//!
//! A zero-cost-when-disabled observability layer shared by all three
//! engines. It has three pieces:
//!
//! * **events** ([`event`]) — a structured vocabulary (phase start/end,
//!   message send/recv/retry, barrier arrive/release/stall, arbiter
//!   grant/defer, fault injections, queue depths) on per-cluster
//!   tracks, stamped in the emitting engine's timebase: simulated
//!   nanoseconds from the discrete-event and sequential engines,
//!   monotonic wall nanoseconds plus logical phase from the threaded
//!   engine;
//! * **aggregation** ([`report`], [`tracer`]) — per-cluster counters and
//!   power-of-two histograms folded into a [`TraceReport`] carried in
//!   the machine's `RunReport` next to the fault report, plus per-phase
//!   statistics that let the differential test harness localize the
//!   first phase where two engines diverge;
//! * **export** ([`chrome`]) — a chrome-trace (`about:tracing` /
//!   Perfetto) JSON exporter and a compact text [`TraceReport::summary`].
//!
//! ## Cost model
//!
//! Recording is double-gated. The `record` cargo feature compiles the
//! machinery in at all; without it every [`Tracer`] method is an empty
//! `#[inline(always)]` stub and the types still exist, so dependent
//! crates compile identically and release benchmarks measure the real
//! hot path. With the feature on, runtime behaviour is governed by
//! [`ObsConfig`]: absent, the tracer is a null pointer check; present,
//! raw events are subsampled by `sample_every` and capped at
//! `max_events` while counters and histograms stay exact.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod report;
pub mod tracer;

pub use chrome::chrome_trace_json;
pub use event::{
    EventKind, FaultKind, PhaseKind, Stamp, TraceEvent, CONTROLLER_TRACK, GLOBAL_TRACK,
};
pub use report::{ClusterMetrics, Histogram, PhaseStat, TraceReport, HISTOGRAM_BUCKETS};
pub use tracer::{ObsConfig, Tracer};
