//! Aggregated trace metrics: per-cluster counters, histograms, and
//! per-phase statistics, plus the cross-engine comparison helpers the
//! differential test harness is built on.

use crate::event::{PhaseKind, TraceEvent};
use serde::{Deserialize, Serialize};

/// Number of power-of-two buckets in a [`Histogram`]. Bucket `i` counts
/// values `v` with `floor(log2(v)) == i` (bucket 0 additionally holds
/// zero), so the top bucket covers everything from `2^31` up.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-footprint power-of-two histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub buckets: Vec<u64>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `value` falls in.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (63 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Counters gathered for one cluster over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Off-cluster marker messages sent.
    pub msgs_sent: u64,
    /// Marker messages received and applied.
    pub msgs_recv: u64,
    /// Retransmissions issued (resilient protocol or modelled link
    /// layer).
    pub retries: u64,
    /// Marker activations applied (arrivals merged into the status
    /// table).
    pub activations: u64,
    /// Node expansions executed by this cluster's marker units.
    pub expansions: u64,
    /// Immediate arbiter grants.
    pub arbiter_grants: u64,
    /// Deferred arbiter grants (the request waited).
    pub arbiter_defers: u64,
    /// Nanoseconds spent waiting for deferred grants.
    pub arbiter_wait_ns: u64,
    /// Barrier waits this cluster participated in.
    pub barrier_waits: u64,
    /// Nanoseconds this cluster spent in barrier waits.
    pub barrier_wait_ns: u64,
    /// Faults the plan injected on this cluster's traffic or PEs.
    pub faults_injected: u64,
    /// Deepest work-queue / outbox occupancy observed.
    pub max_queue_depth: u64,
}

impl ClusterMetrics {
    /// Merges `other`'s counts into `self`.
    pub fn merge(&mut self, other: &ClusterMetrics) {
        self.msgs_sent += other.msgs_sent;
        self.msgs_recv += other.msgs_recv;
        self.retries += other.retries;
        self.activations += other.activations;
        self.expansions += other.expansions;
        self.arbiter_grants += other.arbiter_grants;
        self.arbiter_defers += other.arbiter_defers;
        self.arbiter_wait_ns += other.arbiter_wait_ns;
        self.barrier_waits += other.barrier_waits;
        self.barrier_wait_ns += other.barrier_wait_ns;
        self.faults_injected += other.faults_injected;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
    }
}

/// Engine-independent statistics for one controller phase, in program
/// order. Identical programs on equivalent engines produce the same
/// phase sequence, so the first index whose counts differ localizes a
/// divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// The phase's kind.
    pub kind: PhaseKind,
    /// Marker activations applied during the phase.
    pub activations: u64,
    /// Node expansions executed during the phase.
    pub expansions: u64,
    /// Off-cluster messages sent during the phase (engine-dependent:
    /// zero on the sequential engine, so cross-engine comparison uses
    /// kind + activations).
    pub messages: u64,
    /// Duration of the phase in the engine's own timebase (not
    /// comparable across timebases).
    pub duration_ns: u64,
}

/// Everything the tracer aggregated over one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// `true` when tracing was enabled for the run (an all-default
    /// report also appears when the `record` feature is compiled out).
    pub enabled: bool,
    /// Per-cluster counters, indexed by cluster.
    pub clusters: Vec<ClusterMetrics>,
    /// Per-phase statistics, in program order.
    pub phases: Vec<PhaseStat>,
    /// Recorded events (subject to sampling and the event cap).
    pub events: Vec<TraceEvent>,
    /// Events not recorded because of sampling or the cap.
    pub events_dropped: u64,
    /// Work-queue / outbox depth observations across all clusters.
    pub queue_depth: Histogram,
    /// Barrier wait durations (engine timebase ns).
    pub barrier_wait: Histogram,
}

impl TraceReport {
    /// `true` when the report carries no observations.
    pub fn is_empty(&self) -> bool {
        !self.enabled && self.events.is_empty() && self.phases.is_empty()
    }

    /// All cluster counters merged into one.
    pub fn totals(&self) -> ClusterMetrics {
        let mut total = ClusterMetrics::default();
        for c in &self.clusters {
            total.merge(c);
        }
        total
    }

    /// Index of the first phase whose `(kind, activations)` differs
    /// from `other`'s, or where one run has a phase the other lacks.
    /// `None` when the phase sequences agree.
    ///
    /// Activations-per-phase is the engine-independent quantity: every
    /// engine applies the same logical arrivals for deterministic
    /// (monotone, order-independent) workloads, while messages and
    /// durations legitimately differ by engine.
    pub fn first_diverging_phase(&self, other: &TraceReport) -> Option<usize> {
        let n = self.phases.len().max(other.phases.len());
        for i in 0..n {
            match (self.phases.get(i), other.phases.get(i)) {
                (Some(a), Some(b)) => {
                    if a.kind != b.kind || a.activations != b.activations {
                        return Some(i);
                    }
                }
                _ => return Some(i),
            }
        }
        None
    }

    /// A compact text rendering: totals, the per-cluster table, and the
    /// phase sequence. Empty string for empty reports.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let t = self.totals();
        out.push_str(&format!(
            "trace: {} events ({} dropped), {} phases\n",
            self.events.len(),
            self.events_dropped,
            self.phases.len()
        ));
        out.push_str(&format!(
            "totals: sent {} recv {} retries {} activations {} expansions {} faults {}\n",
            t.msgs_sent, t.msgs_recv, t.retries, t.activations, t.expansions, t.faults_injected
        ));
        if !self.queue_depth.is_empty() {
            out.push_str(&format!(
                "queue depth: mean {:.1} max {}\n",
                self.queue_depth.mean(),
                self.queue_depth.max
            ));
        }
        if !self.barrier_wait.is_empty() {
            out.push_str(&format!(
                "barrier wait: mean {:.0} ns max {} ns over {} waits\n",
                self.barrier_wait.mean(),
                self.barrier_wait.max,
                self.barrier_wait.count
            ));
        }
        out.push_str("cluster  sent  recv  retry   activ  expand  arb-defer  barrier-ns\n");
        for (i, c) in self.clusters.iter().enumerate() {
            out.push_str(&format!(
                "{i:>7}  {:>4}  {:>4}  {:>5}  {:>6}  {:>6}  {:>9}  {:>10}\n",
                c.msgs_sent,
                c.msgs_recv,
                c.retries,
                c.activations,
                c.expansions,
                c.arbiter_defers,
                c.barrier_wait_ns
            ));
        }
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "phase {i:>3} {:<11} activ {:>6}  msgs {:>5}  expand {:>6}  {} ns\n",
                p.kind.name(),
                p.activations,
                p.messages,
                p.expansions,
                p.duration_ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 2); // 0 and 1
        assert_eq!(h.buckets[1], 2); // 2 and 3
        assert_eq!(h.buckets[3], 1); // 8
        assert_eq!(h.buckets[10], 1); // 1024
        assert!((h.mean() - (1038.0 / 6.0)).abs() < 1e-9);
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.count, 7);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn cluster_metrics_merge() {
        let a = ClusterMetrics {
            msgs_sent: 3,
            max_queue_depth: 5,
            ..Default::default()
        };
        let mut b = ClusterMetrics {
            msgs_sent: 2,
            max_queue_depth: 9,
            ..Default::default()
        };
        b.merge(&a);
        assert_eq!(b.msgs_sent, 5);
        assert_eq!(b.max_queue_depth, 9);
    }

    fn phase(kind: PhaseKind, activations: u64) -> PhaseStat {
        PhaseStat {
            kind,
            activations,
            expansions: 0,
            messages: 0,
            duration_ns: 0,
        }
    }

    #[test]
    fn diverging_phase_is_localized() {
        let mut a = TraceReport::default();
        let mut b = TraceReport::default();
        a.phases = vec![
            phase(PhaseKind::Configure, 0),
            phase(PhaseKind::Propagate, 40),
            phase(PhaseKind::Barrier, 0),
        ];
        b.phases = a.phases.clone();
        assert_eq!(a.first_diverging_phase(&b), None);
        b.phases[1].activations = 12;
        assert_eq!(a.first_diverging_phase(&b), Some(1));
        // Extra trailing phase also diverges.
        b.phases[1].activations = 40;
        b.phases.push(phase(PhaseKind::Collect, 1));
        assert_eq!(a.first_diverging_phase(&b), Some(3));
        // Messages may differ freely (engine-dependent).
        b.phases.pop();
        b.phases[1].messages = 99;
        assert_eq!(a.first_diverging_phase(&b), None);
    }

    #[test]
    fn summary_renders_non_empty_reports() {
        let mut r = TraceReport {
            enabled: true,
            clusters: vec![ClusterMetrics::default(); 2],
            ..Default::default()
        };
        r.phases.push(phase(PhaseKind::Propagate, 7));
        let s = r.summary();
        assert!(s.contains("propagate"));
        assert!(s.contains("cluster"));
        assert!(TraceReport::default().summary().is_empty());
    }
}
