//! Lightweight arithmetic/logic functions carried by markers.
//!
//! Markers carry "a lightweight arithmetic or logical operation which is
//! performed along each propagation step" to update values or influence
//! the status of other markers. Because the microcode table of functions
//! is downloaded at compile time, each marker message only carries a
//! single-byte token naming the function — mirrored here by these small
//! `Copy` enums.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Function applied to a complex marker's value at **each propagation
/// step**, combining the current value with the traversed link's weight.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum StepFunc {
    /// Leave the value unchanged.
    #[default]
    Identity,
    /// `value += weight` — path-cost accumulation (the paper's running
    /// example: "at every propagation step, the weight of the link is
    /// added to the value").
    AddWeight,
    /// `value *= weight` — multiplicative confidence decay.
    MulWeight,
    /// `value = min(value, weight)` — bottleneck strength.
    MinWeight,
    /// `value = max(value, weight)`.
    MaxWeight,
}

impl StepFunc {
    /// Applies the function to a marker value crossing a link of the given
    /// weight.
    #[inline]
    pub fn apply(self, value: f32, weight: f32) -> f32 {
        match self {
            StepFunc::Identity => value,
            StepFunc::AddWeight => value + weight,
            StepFunc::MulWeight => value * weight,
            StepFunc::MinWeight => value.min(weight),
            StepFunc::MaxWeight => value.max(weight),
        }
    }
}

impl fmt::Display for StepFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StepFunc::Identity => "identity",
            StepFunc::AddWeight => "add-weight",
            StepFunc::MulWeight => "mul-weight",
            StepFunc::MinWeight => "min-weight",
            StepFunc::MaxWeight => "max-weight",
        };
        f.write_str(s)
    }
}

/// Function combining two marker values in the global boolean
/// instructions (`AND-MARKER`, `OR-MARKER`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CombineFunc {
    /// `v3 = v1 + v2` — accumulate evidence.
    #[default]
    Add,
    /// `v3 = min(v1, v2)` — cheapest supporting hypothesis.
    Min,
    /// `v3 = max(v1, v2)`.
    Max,
    /// `v3 = v1`.
    Left,
    /// `v3 = v2`.
    Right,
}

impl CombineFunc {
    /// Combines two complex marker values.
    #[inline]
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            CombineFunc::Add => a + b,
            CombineFunc::Min => a.min(b),
            CombineFunc::Max => a.max(b),
            CombineFunc::Left => a,
            CombineFunc::Right => b,
        }
    }
}

impl fmt::Display for CombineFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CombineFunc::Add => "add",
            CombineFunc::Min => "min",
            CombineFunc::Max => "max",
            CombineFunc::Left => "left",
            CombineFunc::Right => "right",
        };
        f.write_str(s)
    }
}

/// Comparison operator used by value-conditional functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    /// `value < threshold`
    Lt,
    /// `value <= threshold`
    Le,
    /// `value > threshold`
    Gt,
    /// `value >= threshold`
    Ge,
    /// `value == threshold`
    Eq,
}

impl Cmp {
    /// Evaluates `value <cmp> threshold`.
    #[inline]
    pub fn eval(self, value: f32, threshold: f32) -> bool {
        match self {
            Cmp::Lt => value < threshold,
            Cmp::Le => value <= threshold,
            Cmp::Gt => value > threshold,
            Cmp::Ge => value >= threshold,
            Cmp::Eq => value == threshold,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
        };
        f.write_str(s)
    }
}

/// Function applied globally to a marker's value field by `FUNC-MARKER`.
///
/// `ClearIf`/`KeepIf` are the workhorses of the multiple-hypothesis
/// resolution phase: thresholding the cost values of competing concept
/// sequences deactivates losing candidates in a single word-parallel pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValueFunc {
    /// `value *= k`.
    Scale(f32),
    /// `value += k`.
    Offset(f32),
    /// `value = k`.
    Const(f32),
    /// Deactivate the marker where `value <cmp> threshold` holds.
    ClearIf(Cmp, f32),
    /// Deactivate the marker where `value <cmp> threshold` does **not** hold.
    KeepIf(Cmp, f32),
}

impl fmt::Display for ValueFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueFunc::Scale(k) => write!(f, "scale({k})"),
            ValueFunc::Offset(k) => write!(f, "offset({k})"),
            ValueFunc::Const(k) => write!(f, "const({k})"),
            ValueFunc::ClearIf(c, t) => write!(f, "clear-if({c}{t})"),
            ValueFunc::KeepIf(c, t) => write!(f, "keep-if({c}{t})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_funcs() {
        assert_eq!(StepFunc::Identity.apply(2.0, 5.0), 2.0);
        assert_eq!(StepFunc::AddWeight.apply(2.0, 5.0), 7.0);
        assert_eq!(StepFunc::MulWeight.apply(2.0, 5.0), 10.0);
        assert_eq!(StepFunc::MinWeight.apply(2.0, 5.0), 2.0);
        assert_eq!(StepFunc::MaxWeight.apply(2.0, 5.0), 5.0);
    }

    #[test]
    fn combine_funcs() {
        assert_eq!(CombineFunc::Add.apply(1.0, 2.0), 3.0);
        assert_eq!(CombineFunc::Min.apply(1.0, 2.0), 1.0);
        assert_eq!(CombineFunc::Max.apply(1.0, 2.0), 2.0);
        assert_eq!(CombineFunc::Left.apply(1.0, 2.0), 1.0);
        assert_eq!(CombineFunc::Right.apply(1.0, 2.0), 2.0);
    }

    #[test]
    fn comparisons() {
        assert!(Cmp::Lt.eval(1.0, 2.0));
        assert!(!Cmp::Lt.eval(2.0, 2.0));
        assert!(Cmp::Le.eval(2.0, 2.0));
        assert!(Cmp::Gt.eval(3.0, 2.0));
        assert!(Cmp::Ge.eval(2.0, 2.0));
        assert!(Cmp::Eq.eval(2.0, 2.0));
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(StepFunc::AddWeight.to_string(), "add-weight");
        assert_eq!(CombineFunc::Min.to_string(), "min");
        assert_eq!(ValueFunc::ClearIf(Cmp::Gt, 4.0).to_string(), "clear-if(>4)");
    }
}
