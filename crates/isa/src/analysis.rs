//! Static program analysis: inter-propagation (β) parallelism.
//!
//! SNAP-1 overlaps `PROPAGATE` statements that have no data dependencies
//! in the markers used (β-parallelism). The paper measured `β_min = 2.8`,
//! `β_max = 6` for the PASS speech program and `β_min = 2.3`, `β_max = 5`
//! for the DMSNAP NLU program. This module reproduces that analysis: it
//! walks a program, groups consecutive overlappable `PROPAGATE`
//! instructions, and reports the β statistics.
//!
//! Two propagations can overlap when neither writes a marker the other
//! reads or writes. Any non-propagate instruction that touches a marker
//! involved in the current group — or an explicit barrier / collect —
//! closes the group.

use crate::instruction::InstrClass;
use crate::program::Program;
use serde::{Deserialize, Serialize};
use snap_kb::Marker;
use std::collections::HashSet;

/// β-parallelism statistics of one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BetaStats {
    /// Sizes of each overlap group of `PROPAGATE` instructions, in
    /// program order.
    pub groups: Vec<usize>,
}

impl BetaStats {
    /// Smallest overlap group (β_min). Zero for programs with no
    /// propagations.
    pub fn beta_min(&self) -> usize {
        self.groups.iter().copied().min().unwrap_or(0)
    }

    /// Largest overlap group (β_max).
    pub fn beta_max(&self) -> usize {
        self.groups.iter().copied().max().unwrap_or(0)
    }

    /// Mean overlap group size (β_ave).
    pub fn beta_avg(&self) -> f64 {
        if self.groups.is_empty() {
            0.0
        } else {
            self.groups.iter().sum::<usize>() as f64 / self.groups.len() as f64
        }
    }
}

/// Analyses β-parallelism in `program`.
///
/// # Examples
///
/// ```
/// use snap_isa::{analyze_beta, Program, PropRule, StepFunc};
/// use snap_kb::{Marker, RelationType};
///
/// // Two independent propagations (L4/L5 of the paper's Fig. 5) overlap.
/// let p = Program::builder()
///     .propagate(Marker::binary(2), Marker::complex(3),
///                PropRule::Star(RelationType(0)), StepFunc::AddWeight)
///     .propagate(Marker::binary(1), Marker::complex(4),
///                PropRule::Star(RelationType(1)), StepFunc::AddWeight)
///     .build();
/// assert_eq!(analyze_beta(&p).beta_max(), 2);
/// ```
pub fn analyze_beta(program: &Program) -> BetaStats {
    let mut groups = Vec::new();
    let mut group = 0usize;
    // Markers read/written by the propagations in the current open group.
    let mut reads: HashSet<Marker> = HashSet::new();
    let mut writes: HashSet<Marker> = HashSet::new();

    let mut close =
        |group: &mut usize, reads: &mut HashSet<Marker>, writes: &mut HashSet<Marker>| {
            if *group > 0 {
                groups.push(*group);
                *group = 0;
                reads.clear();
                writes.clear();
            }
        };

    for instr in program {
        match instr.class() {
            InstrClass::Propagate => {
                let ir: HashSet<Marker> = instr.reads().into_iter().collect();
                let iw: HashSet<Marker> = instr.writes().into_iter().collect();
                // Dependent if it reads something the group writes, writes
                // something the group reads, or writes what the group writes.
                let dependent = ir.iter().any(|m| writes.contains(m))
                    || iw.iter().any(|m| reads.contains(m) || writes.contains(m));
                if dependent {
                    close(&mut group, &mut reads, &mut writes);
                }
                reads.extend(ir);
                writes.extend(iw);
                group += 1;
            }
            InstrClass::Barrier | InstrClass::Collect => {
                close(&mut group, &mut reads, &mut writes);
            }
            _ => {
                // Any other instruction touching a live marker closes the group.
                let touches = instr
                    .reads()
                    .into_iter()
                    .chain(instr.writes())
                    .any(|m| reads.contains(&m) || writes.contains(&m));
                if touches {
                    close(&mut group, &mut reads, &mut writes);
                }
            }
        }
    }
    close(&mut group, &mut reads, &mut writes);
    BetaStats { groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{CombineFunc, StepFunc};
    use crate::instruction::Instruction;
    use crate::rule::PropRule;
    use snap_kb::RelationType;

    fn prop(src: u8, dst: u8) -> Instruction {
        Instruction::Propagate {
            source: Marker::binary(src),
            target: Marker::complex(dst),
            rule: PropRule::Star(RelationType(0)),
            func: StepFunc::Identity,
        }
    }

    #[test]
    fn independent_propagations_overlap() {
        let p: Program = vec![prop(1, 3), prop(2, 4), prop(5, 6)]
            .into_iter()
            .collect();
        let stats = analyze_beta(&p);
        assert_eq!(stats.groups, vec![3]);
        assert_eq!(stats.beta_min(), 3);
        assert_eq!(stats.beta_max(), 3);
    }

    #[test]
    fn chained_propagations_do_not_overlap() {
        // Second reads what the first writes (target complex(3) is source).
        let chain = Instruction::Propagate {
            source: Marker::complex(3),
            target: Marker::complex(4),
            rule: PropRule::Star(RelationType(0)),
            func: StepFunc::Identity,
        };
        let p: Program = vec![prop(1, 3), chain].into_iter().collect();
        assert_eq!(analyze_beta(&p).groups, vec![1, 1]);
    }

    #[test]
    fn barrier_closes_group() {
        let p: Program = vec![prop(1, 3), Instruction::Barrier, prop(2, 4)]
            .into_iter()
            .collect();
        assert_eq!(analyze_beta(&p).groups, vec![1, 1]);
    }

    #[test]
    fn boolean_on_group_marker_closes_group() {
        let and = Instruction::AndMarker {
            a: Marker::complex(3),
            b: Marker::complex(4),
            target: Marker::binary(9),
            combine: CombineFunc::Add,
        };
        let p: Program = vec![prop(1, 3), prop(2, 4), and, prop(5, 6)]
            .into_iter()
            .collect();
        assert_eq!(analyze_beta(&p).groups, vec![2, 1]);
    }

    #[test]
    fn unrelated_instructions_do_not_close_group() {
        let unrelated = Instruction::SetMarker {
            marker: Marker::binary(60),
            value: 0.0,
        };
        let p: Program = vec![prop(1, 3), unrelated, prop(2, 4)]
            .into_iter()
            .collect();
        assert_eq!(analyze_beta(&p).groups, vec![2]);
    }

    #[test]
    fn empty_program_reports_zero() {
        let stats = analyze_beta(&Program::new());
        assert_eq!(stats.beta_min(), 0);
        assert_eq!(stats.beta_max(), 0);
        assert_eq!(stats.beta_avg(), 0.0);
    }

    #[test]
    fn same_target_conflicts() {
        let p: Program = vec![prop(1, 3), prop(2, 3)].into_iter().collect();
        assert_eq!(analyze_beta(&p).groups, vec![1, 1]);
    }
}
