//! SNAP programs: ordered instruction streams with a builder.
//!
//! Application programs are written on the host and downloaded in their
//! entirety to the controller before execution (avoiding a VME-bus
//! bottleneck). A [`Program`] models that downloaded object code; the
//! controller's program-control processor walks it and the sequence
//! control processor broadcasts each instruction to the array.

use crate::func::{CombineFunc, StepFunc, ValueFunc};
use crate::instruction::{InstrClass, Instruction};
use crate::rule::PropRule;
use serde::{Deserialize, Serialize};
use snap_kb::{Color, Marker, NodeId, RelationType};

/// An ordered sequence of SNAP instructions.
///
/// # Examples
///
/// Build the paper's Fig. 5 parsing fragment:
///
/// ```
/// use snap_isa::{Program, PropRule, StepFunc, CombineFunc};
/// use snap_kb::{Color, Marker, RelationType};
///
/// let (m1, m2, m3, m4, m5) = (
///     Marker::binary(1), Marker::binary(2), Marker::complex(3),
///     Marker::complex(4), Marker::complex(5),
/// );
/// let (is_a, first, last) = (RelationType(0), RelationType(1), RelationType(2));
/// let program = Program::builder()
///     .search_color(Color(1), m1, 0.0)              // L1: locate NP nodes
///     .search_color(Color(2), m2, 0.0)              // L2: locate VP, DO
///     .propagate(m2, m3, PropRule::Spread(is_a, first), StepFunc::AddWeight) // L4
///     .propagate(m1, m4, PropRule::Spread(is_a, last), StepFunc::AddWeight)  // L5
///     .and_marker(m3, m4, m5, CombineFunc::Add)     // L6: intersect
///     .collect_marker(m5)                           // L7: retrieve result
///     .build();
/// assert_eq!(program.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Starts a [`ProgramBuilder`].
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// The instruction stream.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// Appends another program's instructions.
    pub fn append(&mut self, other: &Program) {
        self.instructions.extend_from_slice(&other.instructions);
    }

    /// Iterates the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Counts instructions per profile class (the x-axis of Fig. 6).
    pub fn class_histogram(&self) -> Vec<(InstrClass, usize)> {
        InstrClass::ALL
            .iter()
            .map(|&c| (c, self.iter().filter(|i| i.class() == c).count()))
            .filter(|&(_, n)| n > 0)
            .collect()
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Program {
            instructions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

/// Fluent builder for [`Program`]s; each method appends one instruction.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Appends an arbitrary instruction.
    pub fn instruction(mut self, i: Instruction) -> Self {
        self.program.push(i);
        self
    }

    /// Appends `CREATE`.
    pub fn create(
        self,
        source: NodeId,
        relation: RelationType,
        weight: f32,
        destination: NodeId,
    ) -> Self {
        self.instruction(Instruction::Create {
            source,
            relation,
            weight,
            destination,
        })
    }

    /// Appends `DELETE`.
    pub fn delete(self, source: NodeId, relation: RelationType, destination: NodeId) -> Self {
        self.instruction(Instruction::Delete {
            source,
            relation,
            destination,
        })
    }

    /// Appends `SET-COLOR`.
    pub fn set_color(self, node: NodeId, color: Color) -> Self {
        self.instruction(Instruction::SetColor { node, color })
    }

    /// Appends `SEARCH-NODE`.
    pub fn search_node(self, node: NodeId, marker: Marker, value: f32) -> Self {
        self.instruction(Instruction::SearchNode {
            node,
            marker,
            value,
        })
    }

    /// Appends `SEARCH-RELATION`.
    pub fn search_relation(self, relation: RelationType, marker: Marker, value: f32) -> Self {
        self.instruction(Instruction::SearchRelation {
            relation,
            marker,
            value,
        })
    }

    /// Appends `SEARCH-COLOR`.
    pub fn search_color(self, color: Color, marker: Marker, value: f32) -> Self {
        self.instruction(Instruction::SearchColor {
            color,
            marker,
            value,
        })
    }

    /// Appends `PROPAGATE`.
    pub fn propagate(self, source: Marker, target: Marker, rule: PropRule, func: StepFunc) -> Self {
        self.instruction(Instruction::Propagate {
            source,
            target,
            rule,
            func,
        })
    }

    /// Appends `MARKER-CREATE`.
    pub fn marker_create(
        self,
        marker: Marker,
        forward: RelationType,
        end: NodeId,
        reverse: RelationType,
    ) -> Self {
        self.instruction(Instruction::MarkerCreate {
            marker,
            forward,
            end,
            reverse,
        })
    }

    /// Appends `MARKER-DELETE`.
    pub fn marker_delete(
        self,
        marker: Marker,
        forward: RelationType,
        end: NodeId,
        reverse: RelationType,
    ) -> Self {
        self.instruction(Instruction::MarkerDelete {
            marker,
            forward,
            end,
            reverse,
        })
    }

    /// Appends `MARKER-SET-COLOR`.
    pub fn marker_set_color(self, marker: Marker, color: Color) -> Self {
        self.instruction(Instruction::MarkerSetColor { marker, color })
    }

    /// Appends `AND-MARKER`.
    pub fn and_marker(self, a: Marker, b: Marker, target: Marker, combine: CombineFunc) -> Self {
        self.instruction(Instruction::AndMarker {
            a,
            b,
            target,
            combine,
        })
    }

    /// Appends `OR-MARKER`.
    pub fn or_marker(self, a: Marker, b: Marker, target: Marker, combine: CombineFunc) -> Self {
        self.instruction(Instruction::OrMarker {
            a,
            b,
            target,
            combine,
        })
    }

    /// Appends `NOT-MARKER`.
    pub fn not_marker(self, source: Marker, target: Marker) -> Self {
        self.instruction(Instruction::NotMarker { source, target })
    }

    /// Appends `SET-MARKER`.
    pub fn set_marker(self, marker: Marker, value: f32) -> Self {
        self.instruction(Instruction::SetMarker { marker, value })
    }

    /// Appends `CLEAR-MARKER`.
    pub fn clear_marker(self, marker: Marker) -> Self {
        self.instruction(Instruction::ClearMarker { marker })
    }

    /// Appends `FUNC-MARKER`.
    pub fn func_marker(self, marker: Marker, func: ValueFunc) -> Self {
        self.instruction(Instruction::FuncMarker { marker, func })
    }

    /// Appends `COLLECT-MARKER`.
    pub fn collect_marker(self, marker: Marker) -> Self {
        self.instruction(Instruction::CollectMarker { marker })
    }

    /// Appends `COLLECT-RELATION`.
    pub fn collect_relation(self, marker: Marker, relation: RelationType) -> Self {
        self.instruction(Instruction::CollectRelation { marker, relation })
    }

    /// Appends `COLLECT-COLOR`.
    pub fn collect_color(self, marker: Marker) -> Self {
        self.instruction(Instruction::CollectColor { marker })
    }

    /// Appends `COMM-END` (explicit barrier).
    pub fn barrier(self) -> Self {
        self.instruction(Instruction::Barrier)
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_appends_in_order() {
        let p = Program::builder()
            .set_marker(Marker::binary(0), 0.0)
            .clear_marker(Marker::binary(0))
            .barrier()
            .build();
        assert_eq!(p.len(), 3);
        assert_eq!(p.instructions()[2], Instruction::Barrier);
    }

    #[test]
    fn class_histogram_counts() {
        let p = Program::builder()
            .search_color(Color(1), Marker::binary(0), 0.0)
            .propagate(
                Marker::binary(0),
                Marker::binary(1),
                PropRule::Star(RelationType(0)),
                StepFunc::Identity,
            )
            .propagate(
                Marker::binary(0),
                Marker::binary(2),
                PropRule::Star(RelationType(1)),
                StepFunc::Identity,
            )
            .collect_marker(Marker::binary(1))
            .build();
        let hist = p.class_histogram();
        assert!(hist.contains(&(InstrClass::Propagate, 2)));
        assert!(hist.contains(&(InstrClass::Search, 1)));
        assert!(hist.contains(&(InstrClass::Collect, 1)));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut p: Program = vec![Instruction::Barrier].into_iter().collect();
        p.extend(vec![Instruction::ClearMarker {
            marker: Marker::binary(0),
        }]);
        assert_eq!(p.len(), 2);
        let mut q = Program::new();
        q.append(&p);
        assert_eq!(q.len(), 2);
    }
}
