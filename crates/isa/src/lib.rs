//! # snap-isa — the SNAP-1 marker-propagation instruction set
//!
//! SNAP-1 is programmed with 20 high-level instructions for marker
//! passing (Table II of the paper), grouped into node maintenance,
//! search, propagation, marker-node maintenance, boolean, set/clear, and
//! retrieval operations. This crate defines:
//!
//! * [`Instruction`] — the instruction set, with documented semantics
//!   shared by every execution engine;
//! * [`PropRule`] / [`RuleProgram`] — propagation rules
//!   (`spread(r1,r2)` and friends) compiled to small state machines, so
//!   marker messages only carry a rule token exactly as in the hardware;
//! * [`StepFunc`], [`CombineFunc`], [`ValueFunc`] — the lightweight
//!   arithmetic/logic functions markers carry;
//! * [`Program`] — downloaded object code, with a fluent builder;
//! * [`assemble`]/[`disassemble`] — a text dialect mirroring the paper's
//!   Fig. 5 listings;
//! * [`analyze_beta`] — the inter-propagation (β) parallelism analysis
//!   from Section II-C;
//! * [`schedule_beta`] — a semantics-preserving scheduling pass that
//!   reorders programs to expose more overlap to the controller.
//!
//! # Examples
//!
//! ```
//! use snap_isa::{assemble, SymbolTable};
//! use snap_kb::{Color, RelationType};
//!
//! let mut sym = SymbolTable::new();
//! sym.relation("is-a", RelationType(0)).color("NP", Color(1));
//! let program = assemble("search-color NP b1 0.0\npropagate b1 b2 star(is-a) identity\n", &sym)?;
//! assert_eq!(program.len(), 2);
//! # Ok::<(), snap_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod asm;
mod func;
mod instruction;
mod program;
mod rule;
mod schedule;

pub use analysis::{analyze_beta, BetaStats};
pub use asm::{assemble, disassemble, AsmError, SymbolTable};
pub use func::{Cmp, CombineFunc, StepFunc, ValueFunc};
pub use instruction::{InstrClass, Instruction};
pub use program::{Program, ProgramBuilder};
pub use rule::{PropRule, RuleArc, RuleProgram, RuleState, MAX_RULE_STATES};
pub use schedule::schedule_beta;
