//! β-maximizing instruction scheduling.
//!
//! The controller can only overlap `PROPAGATE` instructions that are
//! **adjacent** in the instruction stream (it closes the overlap group
//! at the first intervening instruction). β-parallelism is therefore a
//! property of instruction *order*, not just of the data dependencies —
//! and a compile-time pass can recover overlap that the programmer's
//! ordering hides.
//!
//! [`schedule_beta`] performs a conservative, semantics-preserving
//! list-scheduling pass: it walks the program, holding back ready
//! `PROPAGATE` instructions and emitting them in batches at the point
//! where the next dependent instruction forces them, so independent
//! propagations end up adjacent. Two instructions are reordered only if
//! they commute: their marker read/write sets do not conflict, and
//! neither has controller-visible side effects that must stay ordered
//! (retrievals, barriers, node maintenance).

use crate::instruction::{InstrClass, Instruction};
use crate::program::Program;
use snap_kb::Marker;
use std::collections::HashSet;

/// Returns `true` when `a` and `b` touch conflicting marker sets
/// (write/write or read/write overlap).
fn conflicts(a: &Instruction, b: &Instruction) -> bool {
    let ar: HashSet<Marker> = a.reads().into_iter().collect();
    let aw: HashSet<Marker> = a.writes().into_iter().collect();
    let br: HashSet<Marker> = b.reads().into_iter().collect();
    let bw: HashSet<Marker> = b.writes().into_iter().collect();
    aw.iter().any(|m| br.contains(m) || bw.contains(m)) || bw.iter().any(|m| ar.contains(m))
}

/// `true` if the instruction has controller-visible effects that pin
/// its position (may not move relative to anything).
fn is_pinned(instr: &Instruction) -> bool {
    matches!(
        instr.class(),
        InstrClass::Collect | InstrClass::Barrier | InstrClass::Maintenance
    )
}

/// Reorders `program` to maximize adjacent groups of independent
/// `PROPAGATE` instructions while preserving semantics.
///
/// The result executes the same instruction multiset, with every
/// reordering justified by commutativity; retrieval outputs appear in
/// the original order.
///
/// # Examples
///
/// ```
/// use snap_isa::{analyze_beta, schedule_beta, Program, PropRule, StepFunc};
/// use snap_kb::{Marker, RelationType};
///
/// // Two independent propagations separated by an unrelated clear.
/// let p = Program::builder()
///     .propagate(Marker::binary(0), Marker::complex(1),
///                PropRule::Star(RelationType(0)), StepFunc::Identity)
///     .clear_marker(Marker::binary(9))
///     .propagate(Marker::binary(2), Marker::complex(3),
///                PropRule::Star(RelationType(0)), StepFunc::Identity)
///     .build();
/// assert_eq!(analyze_beta(&p).beta_max(), 2); // dependency-wise
/// let scheduled = schedule_beta(&p);
/// // The clear floats ahead; the two propagates become adjacent, so the
/// // controller overlaps them.
/// assert_eq!(scheduled.instructions()[1].class(), scheduled.instructions()[2].class());
/// ```
pub fn schedule_beta(program: &Program) -> Program {
    let mut out = Program::new();
    // Propagations whose emission is being delayed to batch with later
    // ready propagations.
    let mut held: Vec<Instruction> = Vec::new();

    let flush = |held: &mut Vec<Instruction>, out: &mut Program| {
        for p in held.drain(..) {
            out.push(p);
        }
    };

    for instr in program {
        match instr.class() {
            InstrClass::Propagate => {
                // A propagate conflicting with a held one must not jump
                // it: flush first, then start a new batch with it.
                if held.iter().any(|h| conflicts(h, instr)) {
                    flush(&mut held, &mut out);
                }
                held.push(instr.clone());
            }
            _ => {
                let blocked = is_pinned(instr) || held.iter().any(|h| conflicts(h, instr));
                if blocked {
                    flush(&mut held, &mut out);
                    out.push(instr.clone());
                } else {
                    // Commutes with every held propagate: emit it *before*
                    // the batch so the propagates stay adjacent.
                    out.push(instr.clone());
                }
            }
        }
    }
    flush(&mut held, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_beta;
    use crate::func::StepFunc;
    use crate::rule::PropRule;
    use snap_kb::{NodeId, RelationType};

    fn prop(src: u8, dst: u8) -> Instruction {
        Instruction::Propagate {
            source: Marker::binary(src),
            target: Marker::complex(dst),
            rule: PropRule::Star(RelationType(0)),
            func: StepFunc::Identity,
        }
    }

    fn clear(m: u8) -> Instruction {
        Instruction::ClearMarker {
            marker: Marker::binary(m),
        }
    }

    #[test]
    fn groups_propagates_across_unrelated_instructions() {
        let p: Program = vec![prop(0, 1), clear(9), prop(2, 3), clear(8), prop(4, 5)]
            .into_iter()
            .collect();
        let s = schedule_beta(&p);
        assert_eq!(s.len(), p.len(), "same instruction count");
        // The clears moved ahead; the three propagates are adjacent.
        let classes: Vec<InstrClass> = s.iter().map(Instruction::class).collect();
        assert_eq!(
            classes,
            vec![
                InstrClass::SetClear,
                InstrClass::SetClear,
                InstrClass::Propagate,
                InstrClass::Propagate,
                InstrClass::Propagate,
            ]
        );
        assert_eq!(analyze_beta(&s).beta_max(), 3);
    }

    #[test]
    fn dependent_instructions_are_not_reordered() {
        // The clear touches a held propagate's target: must flush.
        let p: Program = vec![prop(0, 1), clear(0), prop(2, 3)].into_iter().collect();
        let s = schedule_beta(&p);
        // clear(b0) conflicts with prop(0,1)'s read of b0 → order kept.
        assert_eq!(s.instructions()[0], prop(0, 1));
        assert_eq!(s.instructions()[1], clear(0));
        assert_eq!(s.instructions()[2], prop(2, 3));
    }

    #[test]
    fn collects_and_barriers_stay_put() {
        let collect = Instruction::CollectMarker {
            marker: Marker::binary(9),
        };
        let p: Program = vec![prop(0, 1), collect.clone(), prop(2, 3)]
            .into_iter()
            .collect();
        let s = schedule_beta(&p);
        assert_eq!(s.instructions()[1], collect, "retrieval order preserved");
    }

    #[test]
    fn chained_propagates_keep_their_order() {
        let chain = Instruction::Propagate {
            source: Marker::complex(1),
            target: Marker::complex(2),
            rule: PropRule::Star(RelationType(0)),
            func: StepFunc::Identity,
        };
        let p: Program = vec![prop(0, 1), chain.clone()].into_iter().collect();
        let s = schedule_beta(&p);
        assert_eq!(s.instructions()[0], prop(0, 1));
        assert_eq!(s.instructions()[1], chain);
    }

    #[test]
    fn maintenance_pins_the_stream() {
        let create = Instruction::Create {
            source: NodeId(0),
            relation: RelationType(1),
            weight: 0.0,
            destination: NodeId(1),
        };
        let p: Program = vec![prop(0, 1), create.clone(), prop(2, 3)]
            .into_iter()
            .collect();
        let s = schedule_beta(&p);
        // Maintenance edits the network the held propagate may read:
        // never reordered across it.
        assert_eq!(s.instructions()[1], create);
    }

    #[test]
    fn idempotent_on_already_scheduled_programs() {
        let p: Program = vec![clear(8), prop(0, 1), prop(2, 3)].into_iter().collect();
        let s1 = schedule_beta(&p);
        let s2 = schedule_beta(&s1);
        assert_eq!(s1, s2);
    }
}
