//! Text assembler and disassembler for SNAP programs.
//!
//! Application programs for SNAP-1 were written on the Sun host in C with
//! high-level SNAP instructions. This module provides the equivalent of
//! the paper's Fig. 5 program listings as a small assembly dialect, which
//! keeps examples and tests close to the paper's notation:
//!
//! ```text
//! ; configuration phase (L1..L3)
//! search-color NP m1 0.0
//! search-color VP m2 0.0
//! ; propagation phase (L4, L5)
//! propagate m2 m3 spread(is-a,first) add-weight
//! propagate m1 m4 spread(is-a,last) add-weight
//! ; accumulation phase (L6, L7)
//! and-marker m3 m4 m5 add
//! collect-marker m5
//! ```
//!
//! Markers are written `m<i>` (complex) or `b<i>` (binary). Relations,
//! colors, and nodes may be symbolic names resolved through a
//! [`SymbolTable`], or the numeric spellings `r<i>`, `color<i>`, `n<i>`.
//! Custom (microcoded) propagation rules have no text form.

use crate::func::{Cmp, CombineFunc, StepFunc, ValueFunc};
use crate::instruction::Instruction;
use crate::program::Program;
use crate::rule::PropRule;
use core::fmt;
use snap_kb::{Color, Marker, MarkerKind, NodeId, RelationType};
use std::collections::HashMap;

/// Maps symbolic names to relations, colors, and nodes.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    relations: HashMap<String, RelationType>,
    colors: HashMap<String, Color>,
    nodes: HashMap<String, NodeId>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines a relation name.
    pub fn relation(&mut self, name: impl Into<String>, r: RelationType) -> &mut Self {
        self.relations.insert(name.into(), r);
        self
    }

    /// Defines a color name.
    pub fn color(&mut self, name: impl Into<String>, c: Color) -> &mut Self {
        self.colors.insert(name.into(), c);
        self
    }

    /// Defines a node name.
    pub fn node(&mut self, name: impl Into<String>, n: NodeId) -> &mut Self {
        self.nodes.insert(name.into(), n);
        self
    }

    fn rel_name(&self, r: RelationType) -> Option<&str> {
        self.relations
            .iter()
            .find(|&(_, &v)| v == r)
            .map(|(k, _)| k.as_str())
    }

    fn color_name(&self, c: Color) -> Option<&str> {
        self.colors
            .iter()
            .find(|&(_, &v)| v == c)
            .map(|(k, _)| k.as_str())
    }

    fn node_name(&self, n: NodeId) -> Option<&str> {
        self.nodes
            .iter()
            .find(|&(_, &v)| v == n)
            .map(|(k, _)| k.as_str())
    }
}

/// An assembly parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending statement.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles `source` into a [`Program`], resolving names via `symbols`.
///
/// # Errors
///
/// Returns [`AsmError`] naming the first offending line for unknown
/// mnemonics, malformed operands, or unresolved symbols.
pub fn assemble(source: &str, symbols: &SymbolTable) -> Result<Program, AsmError> {
    let mut program = Program::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let mnemonic = parts.next().expect("non-empty line has a first token");
        let ops: Vec<&str> = parts.collect();
        let instr = parse_instruction(mnemonic, &ops, symbols).map_err(|message| AsmError {
            line: line_no,
            message,
        })?;
        program.push(instr);
    }
    Ok(program)
}

fn parse_instruction(
    mnemonic: &str,
    ops: &[&str],
    sym: &SymbolTable,
) -> Result<Instruction, String> {
    let arity = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!(
                "`{mnemonic}` expects {n} operand(s), found {}",
                ops.len()
            ))
        }
    };
    match mnemonic {
        "create" => {
            arity(4)?;
            Ok(Instruction::Create {
                source: parse_node(ops[0], sym)?,
                relation: parse_relation(ops[1], sym)?,
                weight: parse_f32(ops[2])?,
                destination: parse_node(ops[3], sym)?,
            })
        }
        "delete" => {
            arity(3)?;
            Ok(Instruction::Delete {
                source: parse_node(ops[0], sym)?,
                relation: parse_relation(ops[1], sym)?,
                destination: parse_node(ops[2], sym)?,
            })
        }
        "set-color" => {
            arity(2)?;
            Ok(Instruction::SetColor {
                node: parse_node(ops[0], sym)?,
                color: parse_color(ops[1], sym)?,
            })
        }
        "search-node" => {
            arity(3)?;
            Ok(Instruction::SearchNode {
                node: parse_node(ops[0], sym)?,
                marker: parse_marker(ops[1])?,
                value: parse_f32(ops[2])?,
            })
        }
        "search-relation" => {
            arity(3)?;
            Ok(Instruction::SearchRelation {
                relation: parse_relation(ops[0], sym)?,
                marker: parse_marker(ops[1])?,
                value: parse_f32(ops[2])?,
            })
        }
        "search-color" => {
            arity(3)?;
            Ok(Instruction::SearchColor {
                color: parse_color(ops[0], sym)?,
                marker: parse_marker(ops[1])?,
                value: parse_f32(ops[2])?,
            })
        }
        "propagate" => {
            arity(4)?;
            Ok(Instruction::Propagate {
                source: parse_marker(ops[0])?,
                target: parse_marker(ops[1])?,
                rule: parse_rule(ops[2], sym)?,
                func: parse_step_func(ops[3])?,
            })
        }
        "marker-create" | "marker-delete" => {
            arity(4)?;
            let marker = parse_marker(ops[0])?;
            let forward = parse_relation(ops[1], sym)?;
            let end = parse_node(ops[2], sym)?;
            let reverse = parse_relation(ops[3], sym)?;
            Ok(if mnemonic == "marker-create" {
                Instruction::MarkerCreate {
                    marker,
                    forward,
                    end,
                    reverse,
                }
            } else {
                Instruction::MarkerDelete {
                    marker,
                    forward,
                    end,
                    reverse,
                }
            })
        }
        "marker-set-color" => {
            arity(2)?;
            Ok(Instruction::MarkerSetColor {
                marker: parse_marker(ops[0])?,
                color: parse_color(ops[1], sym)?,
            })
        }
        "and-marker" | "or-marker" => {
            arity(4)?;
            let a = parse_marker(ops[0])?;
            let b = parse_marker(ops[1])?;
            let target = parse_marker(ops[2])?;
            let combine = parse_combine(ops[3])?;
            Ok(if mnemonic == "and-marker" {
                Instruction::AndMarker {
                    a,
                    b,
                    target,
                    combine,
                }
            } else {
                Instruction::OrMarker {
                    a,
                    b,
                    target,
                    combine,
                }
            })
        }
        "not-marker" => {
            arity(2)?;
            Ok(Instruction::NotMarker {
                source: parse_marker(ops[0])?,
                target: parse_marker(ops[1])?,
            })
        }
        "set-marker" => {
            arity(2)?;
            Ok(Instruction::SetMarker {
                marker: parse_marker(ops[0])?,
                value: parse_f32(ops[1])?,
            })
        }
        "clear-marker" => {
            arity(1)?;
            Ok(Instruction::ClearMarker {
                marker: parse_marker(ops[0])?,
            })
        }
        "func-marker" => {
            arity(2)?;
            Ok(Instruction::FuncMarker {
                marker: parse_marker(ops[0])?,
                func: parse_value_func(ops[1])?,
            })
        }
        "collect-marker" => {
            arity(1)?;
            Ok(Instruction::CollectMarker {
                marker: parse_marker(ops[0])?,
            })
        }
        "collect-relation" => {
            arity(2)?;
            Ok(Instruction::CollectRelation {
                marker: parse_marker(ops[0])?,
                relation: parse_relation(ops[1], sym)?,
            })
        }
        "collect-color" => {
            arity(1)?;
            Ok(Instruction::CollectColor {
                marker: parse_marker(ops[0])?,
            })
        }
        "comm-end" => {
            arity(0)?;
            Ok(Instruction::Barrier)
        }
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

fn parse_f32(s: &str) -> Result<f32, String> {
    s.parse::<f32>()
        .map_err(|_| format!("invalid number `{s}`"))
}

fn parse_marker(s: &str) -> Result<Marker, String> {
    let (kind, digits) = s.split_at(1);
    let index: u8 = digits
        .parse()
        .map_err(|_| format!("invalid marker `{s}` (expected m<i> or b<i>)"))?;
    match kind {
        "m" => Ok(Marker::complex(index)),
        "b" => Ok(Marker::binary(index)),
        _ => Err(format!("invalid marker `{s}` (expected m<i> or b<i>)")),
    }
}

fn parse_relation(s: &str, sym: &SymbolTable) -> Result<RelationType, String> {
    if let Some(&r) = sym.relations.get(s) {
        return Ok(r);
    }
    if let Some(d) = s.strip_prefix('r') {
        if let Ok(v) = d.parse::<u16>() {
            return Ok(RelationType(v));
        }
    }
    Err(format!("unknown relation `{s}`"))
}

fn parse_color(s: &str, sym: &SymbolTable) -> Result<Color, String> {
    if let Some(&c) = sym.colors.get(s) {
        return Ok(c);
    }
    if let Some(d) = s.strip_prefix("color") {
        if let Ok(v) = d.parse::<u8>() {
            return Ok(Color(v));
        }
    }
    Err(format!("unknown color `{s}`"))
}

fn parse_node(s: &str, sym: &SymbolTable) -> Result<NodeId, String> {
    if let Some(&n) = sym.nodes.get(s) {
        return Ok(n);
    }
    if let Some(d) = s.strip_prefix('n') {
        if let Ok(v) = d.parse::<u32>() {
            return Ok(NodeId(v));
        }
    }
    Err(format!("unknown node `{s}`"))
}

fn parse_rule(s: &str, sym: &SymbolTable) -> Result<PropRule, String> {
    let (name, rest) = s
        .split_once('(')
        .ok_or_else(|| format!("invalid rule `{s}` (expected name(r1[,r2]))"))?;
    let inner = rest
        .strip_suffix(')')
        .ok_or_else(|| format!("invalid rule `{s}` (missing `)`)"))?;
    let args: Vec<&str> = inner.split(',').map(str::trim).collect();
    let one = |args: &[&str]| -> Result<RelationType, String> {
        if args.len() == 1 {
            parse_relation(args[0], sym)
        } else {
            Err(format!("rule `{name}` expects one relation"))
        }
    };
    let two = |args: &[&str]| -> Result<(RelationType, RelationType), String> {
        if args.len() == 2 {
            Ok((parse_relation(args[0], sym)?, parse_relation(args[1], sym)?))
        } else {
            Err(format!("rule `{name}` expects two relations"))
        }
    };
    match name {
        "once" => Ok(PropRule::Once(one(&args)?)),
        "star" => Ok(PropRule::Star(one(&args)?)),
        "spread" => {
            let (a, b) = two(&args)?;
            Ok(PropRule::Spread(a, b))
        }
        "seq" => {
            let (a, b) = two(&args)?;
            Ok(PropRule::Seq(a, b))
        }
        "union" => {
            let (a, b) = two(&args)?;
            Ok(PropRule::Union(a, b))
        }
        other => Err(format!("unknown rule type `{other}`")),
    }
}

fn parse_step_func(s: &str) -> Result<StepFunc, String> {
    match s {
        "identity" => Ok(StepFunc::Identity),
        "add-weight" => Ok(StepFunc::AddWeight),
        "mul-weight" => Ok(StepFunc::MulWeight),
        "min-weight" => Ok(StepFunc::MinWeight),
        "max-weight" => Ok(StepFunc::MaxWeight),
        other => Err(format!("unknown step function `{other}`")),
    }
}

fn parse_combine(s: &str) -> Result<CombineFunc, String> {
    match s {
        "add" => Ok(CombineFunc::Add),
        "min" => Ok(CombineFunc::Min),
        "max" => Ok(CombineFunc::Max),
        "left" => Ok(CombineFunc::Left),
        "right" => Ok(CombineFunc::Right),
        other => Err(format!("unknown combine function `{other}`")),
    }
}

fn parse_value_func(s: &str) -> Result<ValueFunc, String> {
    let (name, rest) = s
        .split_once('(')
        .ok_or_else(|| format!("invalid value function `{s}`"))?;
    let inner = rest
        .strip_suffix(')')
        .ok_or_else(|| format!("invalid value function `{s}` (missing `)`)"))?;
    match name {
        "scale" => Ok(ValueFunc::Scale(parse_f32(inner)?)),
        "offset" => Ok(ValueFunc::Offset(parse_f32(inner)?)),
        "const" => Ok(ValueFunc::Const(parse_f32(inner)?)),
        "clear-if" | "keep-if" => {
            let (cmp, threshold) = parse_condition(inner)?;
            Ok(if name == "clear-if" {
                ValueFunc::ClearIf(cmp, threshold)
            } else {
                ValueFunc::KeepIf(cmp, threshold)
            })
        }
        other => Err(format!("unknown value function `{other}`")),
    }
}

fn parse_condition(s: &str) -> Result<(Cmp, f32), String> {
    for (txt, cmp) in [
        ("<=", Cmp::Le),
        (">=", Cmp::Ge),
        ("==", Cmp::Eq),
        ("<", Cmp::Lt),
        (">", Cmp::Gt),
    ] {
        if let Some(rest) = s.strip_prefix(txt) {
            return Ok((cmp, parse_f32(rest.trim())?));
        }
    }
    Err(format!("invalid condition `{s}`"))
}

/// Renders `program` back to assembly text, preferring symbolic names
/// from `symbols` and falling back to numeric spellings.
pub fn disassemble(program: &Program, symbols: &SymbolTable) -> String {
    let mut out = String::new();
    for instr in program {
        out.push_str(&format_instruction(instr, symbols));
        out.push('\n');
    }
    out
}

fn fmt_marker(m: Marker) -> String {
    match m.kind() {
        MarkerKind::Complex => format!("m{}", m.index()),
        MarkerKind::Binary => format!("b{}", m.index()),
    }
}

fn fmt_rel(r: RelationType, sym: &SymbolTable) -> String {
    sym.rel_name(r)
        .map_or_else(|| format!("r{}", r.0), str::to_owned)
}

fn fmt_color(c: Color, sym: &SymbolTable) -> String {
    sym.color_name(c)
        .map_or_else(|| format!("color{}", c.0), str::to_owned)
}

fn fmt_node(n: NodeId, sym: &SymbolTable) -> String {
    sym.node_name(n)
        .map_or_else(|| format!("n{}", n.0), str::to_owned)
}

fn fmt_rule(rule: &PropRule, sym: &SymbolTable) -> String {
    match rule {
        PropRule::Once(r) => format!("once({})", fmt_rel(*r, sym)),
        PropRule::Star(r) => format!("star({})", fmt_rel(*r, sym)),
        PropRule::Spread(a, b) => format!("spread({},{})", fmt_rel(*a, sym), fmt_rel(*b, sym)),
        PropRule::Seq(a, b) => format!("seq({},{})", fmt_rel(*a, sym), fmt_rel(*b, sym)),
        PropRule::Union(a, b) => format!("union({},{})", fmt_rel(*a, sym), fmt_rel(*b, sym)),
        PropRule::Custom(p) => format!("custom[{}]", p.states().len()),
    }
}

fn format_instruction(instr: &Instruction, sym: &SymbolTable) -> String {
    use Instruction::*;
    let m = instr.mnemonic();
    match instr {
        Create {
            source,
            relation,
            weight,
            destination,
        } => format!(
            "{m} {} {} {} {}",
            fmt_node(*source, sym),
            fmt_rel(*relation, sym),
            weight,
            fmt_node(*destination, sym)
        ),
        Delete {
            source,
            relation,
            destination,
        } => format!(
            "{m} {} {} {}",
            fmt_node(*source, sym),
            fmt_rel(*relation, sym),
            fmt_node(*destination, sym)
        ),
        SetColor { node, color } => {
            format!("{m} {} {}", fmt_node(*node, sym), fmt_color(*color, sym))
        }
        SearchNode {
            node,
            marker,
            value,
        } => format!(
            "{m} {} {} {}",
            fmt_node(*node, sym),
            fmt_marker(*marker),
            value
        ),
        SearchRelation {
            relation,
            marker,
            value,
        } => format!(
            "{m} {} {} {}",
            fmt_rel(*relation, sym),
            fmt_marker(*marker),
            value
        ),
        SearchColor {
            color,
            marker,
            value,
        } => format!(
            "{m} {} {} {}",
            fmt_color(*color, sym),
            fmt_marker(*marker),
            value
        ),
        Propagate {
            source,
            target,
            rule,
            func,
        } => format!(
            "{m} {} {} {} {func}",
            fmt_marker(*source),
            fmt_marker(*target),
            fmt_rule(rule, sym)
        ),
        MarkerCreate {
            marker,
            forward,
            end,
            reverse,
        }
        | MarkerDelete {
            marker,
            forward,
            end,
            reverse,
        } => format!(
            "{m} {} {} {} {}",
            fmt_marker(*marker),
            fmt_rel(*forward, sym),
            fmt_node(*end, sym),
            fmt_rel(*reverse, sym)
        ),
        MarkerSetColor { marker, color } => {
            format!("{m} {} {}", fmt_marker(*marker), fmt_color(*color, sym))
        }
        AndMarker {
            a,
            b,
            target,
            combine,
        }
        | OrMarker {
            a,
            b,
            target,
            combine,
        } => format!(
            "{m} {} {} {} {combine}",
            fmt_marker(*a),
            fmt_marker(*b),
            fmt_marker(*target)
        ),
        NotMarker { source, target } => {
            format!("{m} {} {}", fmt_marker(*source), fmt_marker(*target))
        }
        SetMarker { marker, value } => format!("{m} {} {}", fmt_marker(*marker), value),
        ClearMarker { marker } => format!("{m} {}", fmt_marker(*marker)),
        FuncMarker { marker, func } => format!("{m} {} {func}", fmt_marker(*marker)),
        CollectMarker { marker } | CollectColor { marker } => {
            format!("{m} {}", fmt_marker(*marker))
        }
        CollectRelation { marker, relation } => {
            format!("{m} {} {}", fmt_marker(*marker), fmt_rel(*relation, sym))
        }
        Barrier => m.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbols() -> SymbolTable {
        let mut sym = SymbolTable::new();
        sym.relation("is-a", RelationType(0))
            .relation("first", RelationType(1))
            .relation("last", RelationType(2))
            .color("NP", Color(1))
            .color("VP", Color(2))
            .node("seeing-event", NodeId(10));
        sym
    }

    const FIG5: &str = "\
; configuration phase
search-color NP m1 0.0
search-color VP m2 0.0
; propagation phase
propagate m2 m3 spread(is-a,first) add-weight
propagate m1 m4 spread(is-a,last) add-weight
; accumulation phase
and-marker m3 m4 m5 add
collect-marker m5
";

    #[test]
    fn assembles_fig5_fragment() {
        let p = assemble(FIG5, &symbols()).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(
            p.instructions()[2],
            Instruction::Propagate {
                source: Marker::complex(2),
                target: Marker::complex(3),
                rule: PropRule::Spread(RelationType(0), RelationType(1)),
                func: StepFunc::AddWeight,
            }
        );
    }

    #[test]
    fn roundtrip_through_disassembler() {
        let sym = symbols();
        let p = assemble(FIG5, &sym).unwrap();
        let text = disassemble(&p, &sym);
        let p2 = assemble(&text, &sym).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("comm-end\nbogus-op m1\n", &symbols()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus-op"));
        assert_eq!(err.to_string(), "line 2: unknown mnemonic `bogus-op`");
    }

    #[test]
    fn arity_checked() {
        let err = assemble("set-marker m1", &symbols()).unwrap_err();
        assert!(err.message.contains("expects 2"));
    }

    #[test]
    fn numeric_fallback_spellings() {
        let p = assemble(
            "create n1 r7 0.25 n2\nset-color n1 color9\n",
            &SymbolTable::new(),
        )
        .unwrap();
        assert_eq!(
            p.instructions()[0],
            Instruction::Create {
                source: NodeId(1),
                relation: RelationType(7),
                weight: 0.25,
                destination: NodeId(2),
            }
        );
    }

    #[test]
    fn func_marker_conditions() {
        let p = assemble(
            "func-marker m1 clear-if(>=2.5)\nfunc-marker m2 keep-if(<1)\n",
            &SymbolTable::new(),
        )
        .unwrap();
        assert_eq!(
            p.instructions()[0],
            Instruction::FuncMarker {
                marker: Marker::complex(1),
                func: ValueFunc::ClearIf(Cmp::Ge, 2.5),
            }
        );
        assert_eq!(
            p.instructions()[1],
            Instruction::FuncMarker {
                marker: Marker::complex(2),
                func: ValueFunc::KeepIf(Cmp::Lt, 1.0),
            }
        );
    }

    #[test]
    fn unknown_symbols_rejected() {
        let err = assemble("search-color Unknown m1 0.0", &symbols()).unwrap_err();
        assert!(err.message.contains("unknown color"));
        let err = assemble("propagate m1 m2 spread(nope,is-a) identity", &symbols()).unwrap_err();
        assert!(err.message.contains("unknown relation"));
    }

    #[test]
    fn marker_kinds_parse() {
        let p = assemble("not-marker b3 m4", &SymbolTable::new()).unwrap();
        assert_eq!(
            p.instructions()[0],
            Instruction::NotMarker {
                source: Marker::binary(3),
                target: Marker::complex(4),
            }
        );
    }
}
