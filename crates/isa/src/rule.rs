//! Propagation rules: the traversal strategies attached to markers.
//!
//! Movement of markers is guided by *propagation rules* of the form
//! `rule-type(r1, r2)`. Each marker individually selects which paths to
//! follow; for example `spread(r1, r2)` sends markers along a chain of
//! `r1` links until a link of type `r2` is encountered, at which time they
//! switch to `r2`.
//!
//! Because the microcode table of propagation rules is downloaded at
//! compile time, SNAP-1 messages carry only a token naming the rule. We
//! reproduce that split: the named [`PropRule`] is what programs and
//! messages carry, and every rule *compiles* to a tiny deterministic state
//! machine ([`RuleProgram`]) that all execution engines interpret
//! identically. A marker in flight tracks its current [`RuleState`]; at
//! each node the engine traverses the links named by the state's arcs and
//! the marker continues in each arc's successor state.

use core::fmt;
use serde::{Deserialize, Serialize};
use snap_kb::RelationType;

/// Maximum number of states a custom rule program may use (the prototype
/// microcodes rules into a small fixed table).
pub const MAX_RULE_STATES: usize = 8;

/// A named propagation rule, as carried by `PROPAGATE` instructions and
/// marker messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PropRule {
    /// One step along `r` and stop.
    Once(RelationType),
    /// Transitive closure along `r` (follow chains of `r` to any depth).
    Star(RelationType),
    /// Follow chains of `r1` until an `r2` link is met, then switch to
    /// following chains of `r2` — the paper's `spread(r1, r2)`.
    Spread(RelationType, RelationType),
    /// Exactly one step along `r1` followed by one step along `r2`.
    Seq(RelationType, RelationType),
    /// Transitive closure along either `r1` or `r2`.
    Union(RelationType, RelationType),
    /// A custom microcoded traversal program.
    Custom(RuleProgram),
}

impl PropRule {
    /// Compiles the rule to its state-machine form.
    pub fn compile(&self) -> RuleProgram {
        match *self {
            PropRule::Once(r) => RuleProgram::from_states(vec![
                RuleState::new(vec![RuleArc::new(r, 1)]),
                RuleState::terminal(),
            ]),
            PropRule::Star(r) => {
                RuleProgram::from_states(vec![RuleState::new(vec![RuleArc::new(r, 0)])])
            }
            PropRule::Spread(r1, r2) => RuleProgram::from_states(vec![
                RuleState::new(vec![RuleArc::new(r1, 0), RuleArc::new(r2, 1)]),
                RuleState::new(vec![RuleArc::new(r2, 1)]),
            ]),
            PropRule::Seq(r1, r2) => RuleProgram::from_states(vec![
                RuleState::new(vec![RuleArc::new(r1, 1)]),
                RuleState::new(vec![RuleArc::new(r2, 2)]),
                RuleState::terminal(),
            ]),
            PropRule::Union(r1, r2) => RuleProgram::from_states(vec![RuleState::new(vec![
                RuleArc::new(r1, 0),
                RuleArc::new(r2, 0),
            ])]),
            PropRule::Custom(ref p) => p.clone(),
        }
    }
}

impl fmt::Display for PropRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropRule::Once(r) => write!(f, "once({r})"),
            PropRule::Star(r) => write!(f, "star({r})"),
            PropRule::Spread(r1, r2) => write!(f, "spread({r1},{r2})"),
            PropRule::Seq(r1, r2) => write!(f, "seq({r1},{r2})"),
            PropRule::Union(r1, r2) => write!(f, "union({r1},{r2})"),
            PropRule::Custom(p) => write!(f, "custom[{} states]", p.states().len()),
        }
    }
}

/// One transition of a rule state machine: traverse links of `relation`
/// and continue in state `next`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleArc {
    /// Relation type whose links this arc traverses.
    pub relation: RelationType,
    /// Successor state index.
    pub next: u8,
}

impl RuleArc {
    /// Creates an arc.
    pub fn new(relation: RelationType, next: u8) -> Self {
        RuleArc { relation, next }
    }
}

/// One state of a rule program: the set of arcs a marker in this state
/// follows from its current node. A state with no arcs is terminal.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RuleState {
    arcs: Vec<RuleArc>,
}

impl RuleState {
    /// A state with the given arcs.
    pub fn new(arcs: Vec<RuleArc>) -> Self {
        RuleState { arcs }
    }

    /// A terminal state (no outgoing arcs; the marker stops here).
    pub fn terminal() -> Self {
        RuleState::default()
    }

    /// The state's arcs.
    pub fn arcs(&self) -> &[RuleArc] {
        &self.arcs
    }

    /// `true` if the marker stops in this state.
    pub fn is_terminal(&self) -> bool {
        self.arcs.is_empty()
    }
}

/// A compiled propagation-rule state machine. State 0 is initial.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleProgram {
    states: Vec<RuleState>,
}

impl RuleProgram {
    /// Builds a program from explicit states.
    ///
    /// # Panics
    ///
    /// Panics if there are no states, more than [`MAX_RULE_STATES`], or an
    /// arc points outside the state table.
    pub fn from_states(states: Vec<RuleState>) -> Self {
        assert!(!states.is_empty(), "rule program needs at least one state");
        assert!(
            states.len() <= MAX_RULE_STATES,
            "rule program exceeds {MAX_RULE_STATES} states"
        );
        for (i, s) in states.iter().enumerate() {
            for arc in s.arcs() {
                assert!(
                    (arc.next as usize) < states.len(),
                    "state {i} arc points to missing state {}",
                    arc.next
                );
            }
        }
        RuleProgram { states }
    }

    /// The program's states; index 0 is the initial state.
    pub fn states(&self) -> &[RuleState] {
        &self.states
    }

    /// The state with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range — rule tokens are validated at
    /// compile time, so an out-of-range state indicates engine corruption.
    pub fn state(&self, state: u8) -> &RuleState {
        &self.states[state as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: u16) -> RelationType {
        RelationType(x)
    }

    #[test]
    fn once_compiles_to_two_states() {
        let p = PropRule::Once(r(1)).compile();
        assert_eq!(p.states().len(), 2);
        assert_eq!(p.state(0).arcs().len(), 1);
        assert!(p.state(1).is_terminal());
    }

    #[test]
    fn star_loops_in_state_zero() {
        let p = PropRule::Star(r(1)).compile();
        assert_eq!(p.states().len(), 1);
        assert_eq!(p.state(0).arcs()[0].next, 0);
        assert!(!p.state(0).is_terminal());
    }

    #[test]
    fn spread_switches_to_second_relation() {
        let p = PropRule::Spread(r(1), r(2)).compile();
        // In state 0 both relations are live; r2 moves to state 1 which
        // only follows r2 — "switch to r2".
        let arcs0 = p.state(0).arcs();
        assert_eq!(arcs0.len(), 2);
        assert_eq!(arcs0[0], RuleArc::new(r(1), 0));
        assert_eq!(arcs0[1], RuleArc::new(r(2), 1));
        let arcs1 = p.state(1).arcs();
        assert_eq!(arcs1, &[RuleArc::new(r(2), 1)]);
    }

    #[test]
    fn seq_is_exactly_two_steps() {
        let p = PropRule::Seq(r(1), r(2)).compile();
        assert_eq!(p.states().len(), 3);
        assert!(p.state(2).is_terminal());
    }

    #[test]
    fn custom_rule_roundtrip() {
        let prog = RuleProgram::from_states(vec![
            RuleState::new(vec![RuleArc::new(r(5), 1)]),
            RuleState::new(vec![RuleArc::new(r(6), 1), RuleArc::new(r(7), 0)]),
        ]);
        let rule = PropRule::Custom(prog.clone());
        assert_eq!(rule.compile(), prog);
    }

    #[test]
    #[should_panic(expected = "missing state")]
    fn dangling_arc_rejected() {
        RuleProgram::from_states(vec![RuleState::new(vec![RuleArc::new(r(1), 3)])]);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_program_rejected() {
        RuleProgram::from_states(vec![]);
    }

    #[test]
    fn display_names() {
        assert_eq!(PropRule::Spread(r(1), r(2)).to_string(), "spread(r1,r2)");
        assert_eq!(PropRule::Once(r(9)).to_string(), "once(r9)");
    }
}
