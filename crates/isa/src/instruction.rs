//! The 20 high-level SNAP instructions (Table II of the paper).
//!
//! The instruction set was formalized from instruction-level profiles of
//! NLU, concept-classification, and property-inheritance applications. The
//! programmer deals with logical data structures — markers, relations, and
//! nodes — while physical allocation stays transparent regardless of the
//! number of PEs or the size of the semantic network.
//!
//! Where the paper's operand table is ambiguous, the interpretation used
//! here is documented on each variant; all execution engines share it.

use crate::func::{CombineFunc, StepFunc, ValueFunc};
use crate::rule::PropRule;
use core::fmt;
use serde::{Deserialize, Serialize};
use snap_kb::{Color, Marker, NodeId, RelationType};

/// Instruction classes used by the paper's profiles (Figs. 6, 18, 19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// `PROPAGATE` — dominates execution time (64.5% at 17% frequency).
    Propagate,
    /// `AND-MARKER` / `OR-MARKER` / `NOT-MARKER`.
    Boolean,
    /// `SET-MARKER` / `CLEAR-MARKER` / `FUNC-MARKER`.
    SetClear,
    /// `SEARCH-NODE` / `SEARCH-RELATION` / `SEARCH-COLOR`.
    Search,
    /// `COLLECT-*` retrieval operations.
    Collect,
    /// Node and marker-node maintenance.
    Maintenance,
    /// Explicit barrier (`COMM-END`).
    Barrier,
}

impl InstrClass {
    /// All classes, in profile-report order.
    pub const ALL: [InstrClass; 7] = [
        InstrClass::Propagate,
        InstrClass::Boolean,
        InstrClass::SetClear,
        InstrClass::Search,
        InstrClass::Collect,
        InstrClass::Maintenance,
        InstrClass::Barrier,
    ];
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::Propagate => "propagate",
            InstrClass::Boolean => "boolean",
            InstrClass::SetClear => "set/clear",
            InstrClass::Search => "search",
            InstrClass::Collect => "collect",
            InstrClass::Maintenance => "maintenance",
            InstrClass::Barrier => "barrier",
        };
        f.write_str(s)
    }
}

/// One SNAP instruction.
///
/// The set is intentionally exhaustive: the paper formalizes exactly 20
/// high-level instructions, and engines match on all of them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    // ----- node maintenance -----
    /// `CREATE source-node, relation, weight, end-node`: add a link,
    /// loading the knowledge base incrementally.
    Create {
        /// Link source.
        source: NodeId,
        /// Link type.
        relation: RelationType,
        /// Link weight.
        weight: f32,
        /// Link destination.
        destination: NodeId,
    },
    /// `DELETE source-node, relation, end-node`: remove a link.
    Delete {
        /// Link source.
        source: NodeId,
        /// Link type.
        relation: RelationType,
        /// Link destination.
        destination: NodeId,
    },
    /// `SET-COLOR node, color`: change a node's concept type.
    SetColor {
        /// Node to re-color.
        node: NodeId,
        /// New color.
        color: Color,
    },

    // ----- search -----
    /// `SEARCH-NODE node, marker, value`: initialize `marker` with `value`
    /// at one node.
    SearchNode {
        /// Node to mark.
        node: NodeId,
        /// Marker to activate.
        marker: Marker,
        /// Initial value (complex markers only).
        value: f32,
    },
    /// `SEARCH-RELATION relation, marker, value`: activate `marker` at
    /// every node having an **outgoing** link of the given type (a
    /// distributed search executed by all PEs in parallel).
    SearchRelation {
        /// Relation to search for.
        relation: RelationType,
        /// Marker to activate.
        marker: Marker,
        /// Initial value.
        value: f32,
    },
    /// `SEARCH-COLOR color, marker, value`: activate `marker` at every
    /// node of the given color.
    SearchColor {
        /// Color to search for.
        color: Color,
        /// Marker to activate.
        marker: Marker,
        /// Initial value.
        value: f32,
    },

    // ----- propagation -----
    /// `PROPAGATE marker-1, marker-2, rule-type(r1,r2), function`: from
    /// every node where `source` is set, send `target` along the paths
    /// dictated by `rule`, applying `func` to the value at each traversed
    /// link. When several marker instances reach the same node, the
    /// instance with the **smaller value** wins the binding (documented
    /// tie-break: smaller origin node ID) — cost semantics shared by every
    /// engine.
    Propagate {
        /// Marker selecting the origin nodes (`marker-1`).
        source: Marker,
        /// Marker propagated through the network (`marker-2`).
        target: Marker,
        /// Traversal strategy.
        rule: PropRule,
        /// Per-step value update.
        func: StepFunc,
    },

    // ----- marker node maintenance -----
    /// `MARKER-CREATE marker, forward-relation, end-node,
    /// reverse-relation`: bind every node carrying `marker` to `end` by
    /// creating `node --forward--> end` and `end --reverse--> node` links.
    MarkerCreate {
        /// Marker selecting nodes to bind.
        marker: Marker,
        /// Relation for the node→end links.
        forward: RelationType,
        /// Node to bind to.
        end: NodeId,
        /// Relation for the end→node links.
        reverse: RelationType,
    },
    /// `MARKER-DELETE`: remove the links a matching `MARKER-CREATE` made.
    MarkerDelete {
        /// Marker selecting bound nodes.
        marker: Marker,
        /// Relation of the node→end links.
        forward: RelationType,
        /// Bound node.
        end: NodeId,
        /// Relation of the end→node links.
        reverse: RelationType,
    },
    /// `MARKER-SET-COLOR marker, color`: re-color every marked node.
    MarkerSetColor {
        /// Marker selecting nodes.
        marker: Marker,
        /// New color.
        color: Color,
    },

    // ----- boolean (global, word-parallel) -----
    /// `AND-MARKER marker-1, marker-2, marker-3, function`: set `target`
    /// where both sources are set; combine values with `combine`.
    AndMarker {
        /// First source marker.
        a: Marker,
        /// Second source marker.
        b: Marker,
        /// Result marker.
        target: Marker,
        /// Value combination.
        combine: CombineFunc,
    },
    /// `OR-MARKER marker-1, marker-2, marker-3, function`: set `target`
    /// where either source is set; where both are set, combine values.
    OrMarker {
        /// First source marker.
        a: Marker,
        /// Second source marker.
        b: Marker,
        /// Result marker.
        target: Marker,
        /// Value combination where both sources are active.
        combine: CombineFunc,
    },
    /// `NOT-MARKER marker-1, marker-2`: set `target` exactly where
    /// `source` is clear.
    NotMarker {
        /// Source marker.
        source: Marker,
        /// Result marker.
        target: Marker,
    },

    // ----- set/clear (global, unconditional) -----
    /// `SET-MARKER marker, value`: activate at **all** nodes with `value`.
    SetMarker {
        /// Marker to set everywhere.
        marker: Marker,
        /// Value written to complex markers.
        value: f32,
    },
    /// `CLEAR-MARKER marker`: deactivate everywhere.
    ClearMarker {
        /// Marker to clear.
        marker: Marker,
    },
    /// `FUNC-MARKER marker, function`: apply `func` to the marker's value
    /// at every active node (may deactivate, for thresholding).
    FuncMarker {
        /// Marker to update.
        marker: Marker,
        /// Value function.
        func: ValueFunc,
    },

    // ----- retrieval -----
    /// `COLLECT-MARKER marker`: return the IDs (and values) of nodes
    /// where `marker` is active.
    CollectMarker {
        /// Marker to collect.
        marker: Marker,
    },
    /// `COLLECT-RELATION marker, relation`: return the outgoing links of
    /// the given type at nodes where `marker` is active.
    CollectRelation {
        /// Marker selecting nodes.
        marker: Marker,
        /// Relation type to report.
        relation: RelationType,
    },
    /// `COLLECT-COLOR marker`: return the colors of nodes where `marker`
    /// is active.
    CollectColor {
        /// Marker selecting nodes.
        marker: Marker,
    },

    // ----- synchronization -----
    /// `COMM-END`: explicit barrier — wait until all in-flight
    /// propagations terminate before continuing.
    Barrier,
}

impl Instruction {
    /// The profile class of this instruction.
    pub fn class(&self) -> InstrClass {
        use Instruction::*;
        match self {
            Propagate { .. } => InstrClass::Propagate,
            AndMarker { .. } | OrMarker { .. } | NotMarker { .. } => InstrClass::Boolean,
            SetMarker { .. } | ClearMarker { .. } | FuncMarker { .. } => InstrClass::SetClear,
            SearchNode { .. } | SearchRelation { .. } | SearchColor { .. } => InstrClass::Search,
            CollectMarker { .. } | CollectRelation { .. } | CollectColor { .. } => {
                InstrClass::Collect
            }
            Create { .. }
            | Delete { .. }
            | SetColor { .. }
            | MarkerCreate { .. }
            | MarkerDelete { .. }
            | MarkerSetColor { .. } => InstrClass::Maintenance,
            Barrier => InstrClass::Barrier,
        }
    }

    /// Markers this instruction reads (used by β-parallelism analysis and
    /// by the controller to decide which barriers are required).
    pub fn reads(&self) -> Vec<Marker> {
        self.reads_fixed().into_iter().flatten().collect()
    }

    /// Allocation-free [`Instruction::reads`]: no instruction reads more
    /// than two markers, so the set fits a fixed pair. Iterate with
    /// `.into_iter().flatten()`. Pooled serving planners use this form.
    pub fn reads_fixed(&self) -> [Option<Marker>; 2] {
        use Instruction::*;
        match self {
            Propagate { source, .. } => [Some(*source), None],
            AndMarker { a, b, .. } | OrMarker { a, b, .. } => [Some(*a), Some(*b)],
            NotMarker { source, .. } => [Some(*source), None],
            FuncMarker { marker, .. } => [Some(*marker), None],
            MarkerCreate { marker, .. }
            | MarkerDelete { marker, .. }
            | MarkerSetColor { marker, .. }
            | CollectMarker { marker }
            | CollectRelation { marker, .. }
            | CollectColor { marker } => [Some(*marker), None],
            _ => [None, None],
        }
    }

    /// Markers this instruction writes.
    pub fn writes(&self) -> Vec<Marker> {
        self.writes_fixed().into_iter().flatten().collect()
    }

    /// Allocation-free [`Instruction::writes`] — the write-set twin of
    /// [`Instruction::reads_fixed`].
    pub fn writes_fixed(&self) -> [Option<Marker>; 2] {
        use Instruction::*;
        match self {
            Propagate { target, .. } => [Some(*target), None],
            AndMarker { target, .. } | OrMarker { target, .. } | NotMarker { target, .. } => {
                [Some(*target), None]
            }
            SearchNode { marker, .. }
            | SearchRelation { marker, .. }
            | SearchColor { marker, .. }
            | SetMarker { marker, .. }
            | ClearMarker { marker }
            | FuncMarker { marker, .. } => [Some(*marker), None],
            _ => [None, None],
        }
    }

    /// The instruction's mnemonic, as used by the assembler.
    pub fn mnemonic(&self) -> &'static str {
        use Instruction::*;
        match self {
            Create { .. } => "create",
            Delete { .. } => "delete",
            SetColor { .. } => "set-color",
            SearchNode { .. } => "search-node",
            SearchRelation { .. } => "search-relation",
            SearchColor { .. } => "search-color",
            Propagate { .. } => "propagate",
            MarkerCreate { .. } => "marker-create",
            MarkerDelete { .. } => "marker-delete",
            MarkerSetColor { .. } => "marker-set-color",
            AndMarker { .. } => "and-marker",
            OrMarker { .. } => "or-marker",
            NotMarker { .. } => "not-marker",
            SetMarker { .. } => "set-marker",
            ClearMarker { .. } => "clear-marker",
            FuncMarker { .. } => "func-marker",
            CollectMarker { .. } => "collect-marker",
            CollectRelation { .. } => "collect-relation",
            CollectColor { .. } => "collect-color",
            Barrier => "comm-end",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::PropRule;

    fn sample_propagate() -> Instruction {
        Instruction::Propagate {
            source: Marker::binary(1),
            target: Marker::complex(4),
            rule: PropRule::Spread(RelationType(0), RelationType(1)),
            func: StepFunc::AddWeight,
        }
    }

    #[test]
    fn classes_cover_all_twenty_instructions() {
        use Instruction::*;
        let instrs: Vec<Instruction> = vec![
            Create {
                source: NodeId(0),
                relation: RelationType(0),
                weight: 1.0,
                destination: NodeId(1),
            },
            Delete {
                source: NodeId(0),
                relation: RelationType(0),
                destination: NodeId(1),
            },
            SetColor {
                node: NodeId(0),
                color: Color(1),
            },
            SearchNode {
                node: NodeId(0),
                marker: Marker::binary(0),
                value: 0.0,
            },
            SearchRelation {
                relation: RelationType(0),
                marker: Marker::binary(0),
                value: 0.0,
            },
            SearchColor {
                color: Color(0),
                marker: Marker::binary(0),
                value: 0.0,
            },
            sample_propagate(),
            MarkerCreate {
                marker: Marker::binary(0),
                forward: RelationType(1),
                end: NodeId(0),
                reverse: RelationType(2),
            },
            MarkerDelete {
                marker: Marker::binary(0),
                forward: RelationType(1),
                end: NodeId(0),
                reverse: RelationType(2),
            },
            MarkerSetColor {
                marker: Marker::binary(0),
                color: Color(1),
            },
            AndMarker {
                a: Marker::binary(0),
                b: Marker::binary(1),
                target: Marker::binary(2),
                combine: CombineFunc::Min,
            },
            OrMarker {
                a: Marker::binary(0),
                b: Marker::binary(1),
                target: Marker::binary(2),
                combine: CombineFunc::Add,
            },
            NotMarker {
                source: Marker::binary(0),
                target: Marker::binary(1),
            },
            SetMarker {
                marker: Marker::binary(0),
                value: 0.0,
            },
            ClearMarker {
                marker: Marker::binary(0),
            },
            FuncMarker {
                marker: Marker::complex(0),
                func: ValueFunc::Scale(2.0),
            },
            CollectMarker {
                marker: Marker::binary(0),
            },
            CollectRelation {
                marker: Marker::binary(0),
                relation: RelationType(0),
            },
            CollectColor {
                marker: Marker::binary(0),
            },
            Barrier,
        ];
        assert_eq!(instrs.len(), 20, "the paper formalizes 20 instructions");
        for i in &instrs {
            // Every instruction maps to a class and a mnemonic.
            let _ = i.class();
            assert!(!i.mnemonic().is_empty());
        }
        assert_eq!(instrs[6].class(), InstrClass::Propagate);
        assert_eq!(instrs[10].class(), InstrClass::Boolean);
        assert_eq!(instrs[13].class(), InstrClass::SetClear);
        assert_eq!(instrs[3].class(), InstrClass::Search);
        assert_eq!(instrs[16].class(), InstrClass::Collect);
        assert_eq!(instrs[0].class(), InstrClass::Maintenance);
        assert_eq!(instrs[19].class(), InstrClass::Barrier);
    }

    #[test]
    fn propagate_reads_source_writes_target() {
        let p = sample_propagate();
        assert_eq!(p.reads(), vec![Marker::binary(1)]);
        assert_eq!(p.writes(), vec![Marker::complex(4)]);
    }

    #[test]
    fn boolean_reads_both_sources() {
        let i = Instruction::AndMarker {
            a: Marker::binary(3),
            b: Marker::complex(4),
            target: Marker::binary(5),
            combine: CombineFunc::Min,
        };
        assert_eq!(i.reads(), vec![Marker::binary(3), Marker::complex(4)]);
        assert_eq!(i.writes(), vec![Marker::binary(5)]);
    }

    #[test]
    fn func_marker_reads_and_writes_same_marker() {
        let i = Instruction::FuncMarker {
            marker: Marker::complex(2),
            func: ValueFunc::ClearIf(crate::func::Cmp::Gt, 1.0),
        };
        assert_eq!(i.reads(), i.writes());
    }
}
