//! Property test: every assemblable instruction survives a
//! disassemble → assemble round trip unchanged.

use proptest::prelude::*;
use snap_isa::{
    assemble, disassemble, Cmp, CombineFunc, Instruction, Program, PropRule, StepFunc, SymbolTable,
    ValueFunc,
};
use snap_kb::{Color, Marker, NodeId, RelationType};

fn marker_strategy() -> impl Strategy<Value = Marker> {
    (0u8..64, any::<bool>()).prop_map(|(i, complex)| {
        if complex {
            Marker::complex(i)
        } else {
            Marker::binary(i)
        }
    })
}

fn rule_strategy() -> impl Strategy<Value = PropRule> {
    let rel = (0u16..100).prop_map(RelationType);
    prop_oneof![
        rel.clone().prop_map(PropRule::Once),
        rel.clone().prop_map(PropRule::Star),
        (rel.clone(), rel.clone()).prop_map(|(a, b)| PropRule::Spread(a, b)),
        (rel.clone(), rel.clone()).prop_map(|(a, b)| PropRule::Seq(a, b)),
        (rel.clone(), rel).prop_map(|(a, b)| PropRule::Union(a, b)),
    ]
}

fn step_strategy() -> impl Strategy<Value = StepFunc> {
    prop_oneof![
        Just(StepFunc::Identity),
        Just(StepFunc::AddWeight),
        Just(StepFunc::MulWeight),
        Just(StepFunc::MinWeight),
        Just(StepFunc::MaxWeight),
    ]
}

fn combine_strategy() -> impl Strategy<Value = CombineFunc> {
    prop_oneof![
        Just(CombineFunc::Add),
        Just(CombineFunc::Min),
        Just(CombineFunc::Max),
        Just(CombineFunc::Left),
        Just(CombineFunc::Right),
    ]
}

fn value_func_strategy() -> impl Strategy<Value = ValueFunc> {
    let cmp = prop_oneof![
        Just(Cmp::Lt),
        Just(Cmp::Le),
        Just(Cmp::Gt),
        Just(Cmp::Ge),
        Just(Cmp::Eq)
    ];
    prop_oneof![
        (0u32..100).prop_map(|k| ValueFunc::Scale(k as f32 / 4.0)),
        (0u32..100).prop_map(|k| ValueFunc::Offset(k as f32 / 4.0)),
        (0u32..100).prop_map(|k| ValueFunc::Const(k as f32 / 4.0)),
        (cmp.clone(), 0u32..100).prop_map(|(c, k)| ValueFunc::ClearIf(c, k as f32 / 4.0)),
        (cmp, 0u32..100).prop_map(|(c, k)| ValueFunc::KeepIf(c, k as f32 / 4.0)),
    ]
}

fn instruction_strategy() -> impl Strategy<Value = Instruction> {
    let node = (0u32..1000).prop_map(NodeId);
    let rel = (0u16..100).prop_map(RelationType);
    let color = (0u8..=255).prop_map(Color);
    let value = (0i32..4000).prop_map(|v| v as f32 / 8.0);
    prop_oneof![
        (node.clone(), rel.clone(), value.clone(), node.clone()).prop_map(
            |(source, relation, weight, destination)| Instruction::Create {
                source,
                relation,
                weight,
                destination
            }
        ),
        (node.clone(), rel.clone(), node.clone()).prop_map(|(source, relation, destination)| {
            Instruction::Delete {
                source,
                relation,
                destination,
            }
        }),
        (node.clone(), color.clone())
            .prop_map(|(node, color)| Instruction::SetColor { node, color }),
        (node.clone(), marker_strategy(), value.clone()).prop_map(|(node, marker, value)| {
            Instruction::SearchNode {
                node,
                marker,
                value,
            }
        }),
        (rel.clone(), marker_strategy(), value.clone()).prop_map(|(relation, marker, value)| {
            Instruction::SearchRelation {
                relation,
                marker,
                value,
            }
        }),
        (color.clone(), marker_strategy(), value.clone()).prop_map(|(color, marker, value)| {
            Instruction::SearchColor {
                color,
                marker,
                value,
            }
        }),
        (
            marker_strategy(),
            marker_strategy(),
            rule_strategy(),
            step_strategy()
        )
            .prop_map(|(source, target, rule, func)| Instruction::Propagate {
                source,
                target,
                rule,
                func
            }),
        (marker_strategy(), rel.clone(), node.clone(), rel.clone()).prop_map(
            |(marker, forward, end, reverse)| Instruction::MarkerCreate {
                marker,
                forward,
                end,
                reverse
            }
        ),
        (marker_strategy(), color.clone())
            .prop_map(|(marker, color)| { Instruction::MarkerSetColor { marker, color } }),
        (
            marker_strategy(),
            marker_strategy(),
            marker_strategy(),
            combine_strategy()
        )
            .prop_map(|(a, b, target, combine)| Instruction::AndMarker {
                a,
                b,
                target,
                combine
            }),
        (
            marker_strategy(),
            marker_strategy(),
            marker_strategy(),
            combine_strategy()
        )
            .prop_map(|(a, b, target, combine)| Instruction::OrMarker {
                a,
                b,
                target,
                combine
            }),
        (marker_strategy(), marker_strategy())
            .prop_map(|(source, target)| Instruction::NotMarker { source, target }),
        (marker_strategy(), value)
            .prop_map(|(marker, value)| Instruction::SetMarker { marker, value }),
        marker_strategy().prop_map(|marker| Instruction::ClearMarker { marker }),
        (marker_strategy(), value_func_strategy())
            .prop_map(|(marker, func)| Instruction::FuncMarker { marker, func }),
        marker_strategy().prop_map(|marker| Instruction::CollectMarker { marker }),
        (marker_strategy(), rel)
            .prop_map(|(marker, relation)| Instruction::CollectRelation { marker, relation }),
        marker_strategy().prop_map(|marker| Instruction::CollectColor { marker }),
        Just(Instruction::Barrier),
    ]
}

proptest! {
    #[test]
    fn prop_disassemble_assemble_roundtrip(
        instrs in proptest::collection::vec(instruction_strategy(), 1..24)
    ) {
        let program: Program = instrs.into_iter().collect();
        let symbols = SymbolTable::new();
        let text = disassemble(&program, &symbols);
        let parsed = assemble(&text, &symbols).expect("own output assembles");
        prop_assert_eq!(program, parsed);
    }
}
