//! Timing models of the cluster's multiport memories, used by the
//! discrete-event engine.
//!
//! Within a cluster, functional units communicate through four-port
//! memories that implement concurrent-read-exclusive-write (CREW) access:
//! each port is dedicated to one unit, so there is no bus contention, but
//! a port serializes its own accesses and critical sections must go
//! through the cluster arbiter. These models track *when* an access
//! completes and gather the occupancy/arbitration statistics reported in
//! the paper's overhead analysis.

use serde::{Deserialize, Serialize};

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// Timing model of one multiport memory region.
///
/// Each port belongs to a single functional unit. Accesses on different
/// ports proceed concurrently (the four-port parts allow simultaneous
/// access "from four independent ports without read contention"); accesses
/// on the same port queue behind each other.
///
/// # Examples
///
/// ```
/// use snap_mem::MultiportModel;
/// let mut mem = MultiportModel::new(4);
/// let t1 = mem.access(0, 0, 80);
/// let t2 = mem.access(1, 0, 80); // different port: concurrent
/// assert_eq!(t1, 80);
/// assert_eq!(t2, 80);
/// let t3 = mem.access(0, 0, 80); // same port: queued
/// assert_eq!(t3, 160);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiportModel {
    busy_until: Vec<SimTime>,
    accesses: Vec<u64>,
}

impl MultiportModel {
    /// Creates a region with `ports` dedicated ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "a memory region needs at least one port");
        MultiportModel {
            busy_until: vec![0; ports],
            accesses: vec![0; ports],
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.busy_until.len()
    }

    /// Performs an access of `duration` ns on `port` starting no earlier
    /// than `now`; returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn access(&mut self, port: usize, now: SimTime, duration: SimTime) -> SimTime {
        let start = now.max(self.busy_until[port]);
        let done = start + duration;
        self.busy_until[port] = done;
        self.accesses[port] += 1;
        done
    }

    /// Total accesses performed on `port`.
    pub fn access_count(&self, port: usize) -> u64 {
        self.accesses[port]
    }

    /// Earliest time `port` is free.
    pub fn free_at(&self, port: usize) -> SimTime {
        self.busy_until[port]
    }
}

/// Timing model of the cluster arbiter guarding the semaphore table.
///
/// The arbiter serves asynchronous requests from each port, assigning one
/// grant at a time on a first-come-first-served basis. Memory references
/// outside a critical section do not involve the arbiter.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArbiterModel {
    busy_until: SimTime,
    grants: u64,
    conflicts: u64,
    total_wait: SimTime,
}

impl ArbiterModel {
    /// Creates an idle arbiter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests the arbiter at `now` for a critical section of
    /// `duration` ns. Returns `(grant_time, completion_time)`.
    pub fn acquire(&mut self, now: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let grant = now.max(self.busy_until);
        if grant > now {
            self.conflicts += 1;
            self.total_wait += grant - now;
        }
        let done = grant + duration;
        self.busy_until = done;
        self.grants += 1;
        (grant, done)
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Number of requests that had to wait for an earlier grant.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total nanoseconds requesters spent waiting.
    pub fn total_wait(&self) -> SimTime {
        self.total_wait
    }
}

/// Bounded FIFO mailbox model with burst statistics.
///
/// Marker-activation messages are buffered in the marker activation
/// memory and the ICN four-port mailboxes. When a traffic burst exceeds
/// the buffering capacity, the sending processor blocks — the model
/// reports those events so the network-capacity analysis of Fig. 8 can be
/// reproduced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MailboxModel<T> {
    queue: std::collections::VecDeque<T>,
    capacity: usize,
    max_depth: usize,
    enqueued: u64,
    rejected: u64,
}

impl<T> MailboxModel<T> {
    /// Creates a mailbox holding at most `capacity` messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mailbox capacity must be positive");
        MailboxModel {
            queue: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            max_depth: 0,
            enqueued: 0,
            rejected: 0,
        }
    }

    /// Attempts to enqueue; on a full mailbox returns `Err(message)` so
    /// the caller can model sender blocking.
    pub fn push(&mut self, message: T) -> Result<(), T> {
        if self.queue.len() == self.capacity {
            self.rejected += 1;
            return Err(message);
        }
        self.queue.push_back(message);
        self.enqueued += 1;
        self.max_depth = self.max_depth.max(self.queue.len());
        Ok(())
    }

    /// Dequeues the oldest message.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Deepest the queue has ever been — burst absorption high-water mark.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Total messages accepted.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Push attempts rejected because the mailbox was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_are_independent_but_serialized_individually() {
        let mut mem = MultiportModel::new(4);
        assert_eq!(mem.access(0, 100, 50), 150);
        assert_eq!(mem.access(1, 100, 50), 150, "distinct ports overlap");
        assert_eq!(mem.access(0, 100, 50), 200, "same port queues");
        assert_eq!(mem.access_count(0), 2);
        assert_eq!(mem.access_count(1), 1);
        assert_eq!(mem.free_at(0), 200);
    }

    #[test]
    fn arbiter_serializes_critical_sections_fcfs() {
        let mut arb = ArbiterModel::new();
        let (g1, d1) = arb.acquire(0, 100);
        assert_eq!((g1, d1), (0, 100));
        // Second request arrives while the first holds the grant.
        let (g2, d2) = arb.acquire(40, 100);
        assert_eq!((g2, d2), (100, 200));
        assert_eq!(arb.grants(), 2);
        assert_eq!(arb.conflicts(), 1);
        assert_eq!(arb.total_wait(), 60);
        // A request after the section is free proceeds immediately.
        let (g3, _) = arb.acquire(500, 10);
        assert_eq!(g3, 500);
        assert_eq!(arb.conflicts(), 1);
    }

    #[test]
    fn mailbox_tracks_bursts_and_rejections() {
        let mut mb = MailboxModel::new(2);
        assert!(mb.push(1).is_ok());
        assert!(mb.push(2).is_ok());
        assert_eq!(mb.push(3), Err(3));
        assert_eq!(mb.max_depth(), 2);
        assert_eq!(mb.rejected(), 1);
        assert_eq!(mb.pop(), Some(1));
        assert!(mb.push(3).is_ok());
        assert_eq!(mb.enqueued(), 3);
        assert_eq!(mb.pop(), Some(2));
        assert_eq!(mb.pop(), Some(3));
        assert!(mb.pop().is_none());
        assert!(mb.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        MultiportModel::new(0);
    }
}
