//! Real concurrent counterparts of the multiport-memory hardware, used by
//! the threaded execution engine.
//!
//! * [`SharedRegion`] — a CREW region: concurrent readers, one writer,
//!   like the four-port marker-processing memory;
//! * [`Arbiter`] — first-come-first-served mutual exclusion over the
//!   cluster's semaphore table (the hardware interlock unit);
//! * [`TaskQueue`] — a bounded MPMC queue for PU→MU task hand-off and
//!   CU mailboxes, with the same burst statistics as the DES model.

use crossbeam::queue::ArrayQueue;
use parking_lot::{Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use snap_fault::FaultInjector;
use snap_obs::Tracer;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A concurrent-read-exclusive-write shared memory region with access
/// counters.
///
/// # Examples
///
/// ```
/// use snap_mem::SharedRegion;
/// let region = SharedRegion::new(vec![0u32; 8]);
/// *region.write() = vec![1; 8];
/// assert_eq!(region.read()[0], 1);
/// assert_eq!(region.reads(), 1);
/// assert_eq!(region.writes(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SharedRegion<T> {
    data: RwLock<T>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl<T> SharedRegion<T> {
    /// Wraps `value` in a CREW region.
    pub fn new(value: T) -> Self {
        SharedRegion {
            data: RwLock::new(value),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Acquires shared read access (concurrent with other readers).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.data.read()
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.data.write()
    }

    /// Number of read acquisitions so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of write acquisitions so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Unwraps the region, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

/// First-come-first-served arbiter guarding a semaphore table.
///
/// Ordinary test-and-set is insufficient on a multiport memory because
/// concurrent readers of a semaphore would all claim ownership; the
/// hardware interlock delays each requester until a grant is returned.
/// This implementation hands out FIFO tickets; `lock` blocks until the
/// caller's ticket is served.
#[derive(Debug)]
pub struct Arbiter {
    queue: Mutex<VecDeque<usize>>,
    served: Condvar,
    next_ticket: AtomicUsize,
    grants: AtomicU64,
    conflicts: AtomicU64,
    /// Fault hook: starves grants (holds them back briefly after the
    /// ticket is served) per the attached plan.
    injector: Option<(Arc<FaultInjector>, u8)>,
    /// Observability hook: reports each grant/deferral decision to the
    /// cluster's trace track.
    tracer: Tracer,
    track: u16,
}

impl Default for Arbiter {
    fn default() -> Self {
        Self::new()
    }
}

impl Arbiter {
    /// Creates an idle arbiter.
    pub fn new() -> Self {
        Self::build(None, Tracer::disabled(), 0)
    }

    /// Creates an arbiter whose grants on cluster `cluster` are subject
    /// to `injector`'s starvation plan.
    pub fn with_injector(injector: Arc<FaultInjector>, cluster: u8) -> Self {
        Self::build(
            Some((injector, cluster)),
            Tracer::disabled(),
            u16::from(cluster),
        )
    }

    /// Creates an arbiter with an optional injector and a tracer that
    /// records every arbitration decision on cluster `cluster`'s track.
    pub fn with_instruments(
        injector: Option<Arc<FaultInjector>>,
        tracer: Tracer,
        cluster: u8,
    ) -> Self {
        Self::build(injector.map(|i| (i, cluster)), tracer, u16::from(cluster))
    }

    fn build(injector: Option<(Arc<FaultInjector>, u8)>, tracer: Tracer, track: u16) -> Self {
        Arbiter {
            queue: Mutex::new(VecDeque::new()),
            served: Condvar::new(),
            next_ticket: AtomicUsize::new(0),
            grants: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            injector,
            tracer,
            track,
        }
    }

    /// Blocks until the arbiter grants exclusive access, then runs `f`
    /// inside the critical section and releases the grant.
    pub fn with_grant<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = self.tracer.is_enabled().then(Instant::now);
        let mut deferred = false;
        let ticket = self.next_ticket.fetch_add(1, Ordering::SeqCst);
        let mut queue = self.queue.lock();
        queue.push_back(ticket);
        if queue.front() != Some(&ticket) {
            self.conflicts.fetch_add(1, Ordering::Relaxed);
            deferred = true;
        }
        while queue.front() != Some(&ticket) {
            self.served.wait(&mut queue);
        }
        drop(queue);
        if let Some((injector, cluster)) = &self.injector {
            // Starvation strikes between winning arbitration and the
            // grant actually issuing, like a wedged interlock unit:
            // FIFO order and mutual exclusion are preserved, later
            // tickets just wait longer.
            let ns = injector.starvation_ns(*cluster, ticket as u64);
            if ns > 0 {
                deferred = true;
                spin_for(Duration::from_nanos(ns));
            }
        }
        if let Some(t0) = t0 {
            let wait_ns = if deferred {
                (t0.elapsed().as_nanos() as u64).max(1)
            } else {
                0
            };
            self.tracer
                .arbiter(self.track, wait_ns, self.tracer.wall_stamp());
        }
        self.grants.fetch_add(1, Ordering::Relaxed);
        let result = f();
        let mut queue = self.queue.lock();
        let front = queue.pop_front();
        debug_assert_eq!(front, Some(ticket), "grants release in FIFO order");
        self.served.notify_all();
        result
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants.load(Ordering::Relaxed)
    }

    /// Number of requests that arrived while another grant was pending.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }
}

/// Bounded multi-producer multi-consumer task queue with burst statistics.
///
/// Mirrors the marker-processing / marker-activation memories: the PU
/// enqueues decoded tasks, the MUs dequeue and execute them; the CU's
/// mailboxes buffer inter-cluster messages. `push` spins (yielding) when
/// full, modelling the blocked sender of an overflowing burst.
#[derive(Debug)]
pub struct TaskQueue<T> {
    queue: ArrayQueue<T>,
    enqueued: AtomicU64,
    blocked: AtomicU64,
    max_depth: AtomicUsize,
    /// Fault hook: stalls hand-offs (after enqueue, so no task is ever
    /// lost) per the attached plan.
    injector: Option<(Arc<FaultInjector>, u8)>,
}

impl<T> TaskQueue<T> {
    /// Creates a queue holding at most `capacity` tasks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Arc<Self> {
        Self::build(capacity, None)
    }

    /// Creates a queue whose hand-offs on cluster `cluster` are subject
    /// to `injector`'s PE-stall plan.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_injector(capacity: usize, injector: Arc<FaultInjector>, cluster: u8) -> Arc<Self> {
        Self::build(capacity, Some((injector, cluster)))
    }

    fn build(capacity: usize, injector: Option<(Arc<FaultInjector>, u8)>) -> Arc<Self> {
        Arc::new(TaskQueue {
            queue: ArrayQueue::new(capacity),
            enqueued: AtomicU64::new(0),
            blocked: AtomicU64::new(0),
            max_depth: AtomicUsize::new(0),
            injector,
        })
    }

    fn maybe_stall(&self) {
        if let Some((injector, cluster)) = &self.injector {
            let counter = self.enqueued.load(Ordering::Relaxed);
            let ns = injector.stall_ns(*cluster, counter);
            if ns > 0 {
                spin_for(Duration::from_nanos(ns));
            }
        }
    }

    /// Enqueues `task`, blocking (with yields) while the queue is full.
    pub fn push(&self, task: T) {
        let mut task = task;
        let mut first = true;
        loop {
            match self.queue.push(task) {
                Ok(()) => break,
                Err(t) => {
                    if first {
                        self.blocked.fetch_add(1, Ordering::Relaxed);
                        first = false;
                    }
                    task = t;
                    std::thread::yield_now();
                }
            }
        }
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.max_depth
            .fetch_max(self.queue.len(), Ordering::Relaxed);
        self.maybe_stall();
    }

    /// Attempts to enqueue without blocking.
    ///
    /// # Errors
    ///
    /// Returns the task back if the queue is full.
    pub fn try_push(&self, task: T) -> Result<(), T> {
        match self.queue.push(task) {
            Ok(()) => {
                self.enqueued.fetch_add(1, Ordering::Relaxed);
                self.max_depth
                    .fetch_max(self.queue.len(), Ordering::Relaxed);
                self.maybe_stall();
                Ok(())
            }
            Err(t) => {
                self.blocked.fetch_add(1, Ordering::Relaxed);
                Err(t)
            }
        }
    }

    /// Dequeues a task if one is available.
    pub fn pop(&self) -> Option<T> {
        self.queue.pop()
    }

    /// Tasks currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total tasks accepted.
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Number of times a producer found the queue full.
    pub fn blocked(&self) -> u64 {
        self.blocked.load(Ordering::Relaxed)
    }

    /// Deepest the queue has been.
    pub fn max_depth(&self) -> usize {
        self.max_depth.load(Ordering::Relaxed)
    }
}

/// Busy-waits for sub-millisecond injected stalls (`thread::sleep` is
/// too coarse at ns granularity).
fn spin_for(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn shared_region_counts_accesses() {
        let r = SharedRegion::new(5u32);
        assert_eq!(*r.read(), 5);
        *r.write() += 1;
        assert_eq!(*r.read(), 6);
        assert_eq!(r.reads(), 2);
        assert_eq!(r.writes(), 1);
        assert_eq!(r.into_inner(), 6);
    }

    #[test]
    fn arbiter_provides_mutual_exclusion() {
        let arb = Arc::new(Arbiter::new());
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let arb = Arc::clone(&arb);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    arb.with_grant(|| {
                        // Non-atomic read-modify-write protected by grant.
                        let v = *counter.lock();
                        std::hint::black_box(v);
                        *counter.lock() = v + 1;
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 800);
        assert_eq!(arb.grants(), 800);
    }

    #[test]
    fn task_queue_is_fifo_for_single_producer() {
        let q = TaskQueue::new(16);
        for i in 0..10 {
            q.push(i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.enqueued(), 10);
        assert_eq!(q.max_depth(), 10);
    }

    #[test]
    fn task_queue_try_push_reports_full() {
        let q = TaskQueue::new(1);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
        assert_eq!(q.blocked(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn task_queue_concurrent_producers_consumers_lose_nothing() {
        let q = TaskQueue::new(8);
        let total = 4 * 500;
        let mut producers = Vec::new();
        for p in 0..4 {
            let q = Arc::clone(&q);
            producers.push(thread::spawn(move || {
                for i in 0..500 {
                    q.push(p * 1000 + i);
                }
            }));
        }
        let mut consumers = Vec::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let seen = Arc::clone(&seen);
            consumers.push(thread::spawn(move || loop {
                if let Some(v) = q.pop() {
                    let mut s = seen.lock();
                    s.push(v);
                    if s.len() == total {
                        return;
                    }
                } else {
                    let s = seen.lock();
                    if s.len() == total {
                        return;
                    }
                    drop(s);
                    thread::yield_now();
                }
            }));
        }
        for h in producers {
            h.join().unwrap();
        }
        for h in consumers {
            h.join().unwrap();
        }
        let mut s = seen.lock();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), total, "every task delivered exactly once");
    }

    use snap_fault::{FaultInjector, FaultPlan};

    #[test]
    fn starved_arbiter_still_excludes_and_counts() {
        let injector = Arc::new(FaultInjector::new(
            FaultPlan::seeded(3).starvation(0.5, 20_000),
        ));
        let arb = Arc::new(Arbiter::with_injector(Arc::clone(&injector), 4));
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let arb = Arc::clone(&arb);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    arb.with_grant(|| {
                        let v = *counter.lock();
                        std::hint::black_box(v);
                        *counter.lock() = v + 1;
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 200);
        assert_eq!(arb.grants(), 200);
        assert!(injector.report().injected_starvations > 0);
    }

    #[test]
    fn stalled_task_queue_loses_nothing() {
        let injector = Arc::new(FaultInjector::new(FaultPlan::seeded(3).stalls(0.5, 10_000)));
        let q = TaskQueue::with_injector(16, Arc::clone(&injector), 2);
        for i in 0..40 {
            q.push(i);
            if i % 2 == 1 {
                assert_eq!(q.pop(), Some(i - 1));
                assert_eq!(q.pop(), Some(i));
            }
        }
        assert!(q.is_empty());
        assert_eq!(q.enqueued(), 40);
        assert!(injector.report().injected_stalls > 0);
    }
}
