//! # snap-mem — multiport memory substrate of the SNAP-1 cluster
//!
//! SNAP-1 interconnects the functional units of a cluster (PU, MUs, CU)
//! with four-port memories rather than buses: concurrent-read /
//! exclusive-write access eliminates bus contention at low design cost,
//! while a hardware *cluster arbiter* provides mutual exclusion for the
//! semaphore table guarding type-1 (shared variable) traffic. Type-2
//! (PU↔MU microinstruction) and type-3 (MU→CU inter-cluster) traffic use
//! single-writer/single-reader queue areas and bypass the arbiter.
//!
//! Two families of types are provided:
//!
//! * **models** ([`MultiportModel`], [`ArbiterModel`], [`MailboxModel`]) —
//!   deterministic timing models used by the discrete-event engine;
//! * **threaded** ([`SharedRegion`], [`Arbiter`], [`TaskQueue`]) — real
//!   concurrent structures used by the threaded engine, carrying the same
//!   statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod threaded;

pub use model::{ArbiterModel, MailboxModel, MultiportModel, SimTime};
pub use threaded::{Arbiter, SharedRegion, TaskQueue};
