//! `hotpath` — wall-clock propagation throughput and end-to-end engine
//! runtimes, written to `BENCH_hotpath.json` at the repository root.
//!
//! Unlike the figure experiments (which report deterministic simulated
//! time and regenerate `results/`), this harness measures real elapsed
//! time on the current machine, so its output lives in a separate JSON
//! file that every future change can be compared against.
//!
//! Two measurements per workload:
//!
//! * **kernel throughput** — the same SPFA propagation driver run over
//!   the historical datapath (nested-segment
//!   [`NestedRelationTable`] scan, hashed visited map, a fresh arrival
//!   `Vec` per task) and over the current one
//!   ([`expand_into`] on the CSR table, dense visited map, one reused
//!   arrival buffer). Both visit the identical task set, so the
//!   tasks/sec ratio isolates the datapath speedup;
//! * **end-to-end runtime** — the fig16 α workload and the fig19
//!   parse-batch workload on the sequential, DES, and threaded engines,
//!   plus the threaded engine's envelope-batching evidence
//!   (tasks sent vs. envelopes on the wire).

use crate::output::{ms, ratio, ExperimentOutput};
use crate::workloads::{alpha_network, alpha_program, parse_batch, CHAIN_REL, SRC_COLOR};
use snap_core::propagate::{expand_into, PropArrival, PropTask, VisitedMap};
use snap_core::{EngineKind, Snap1, VisitedStrategy, VALUE_EPSILON};
use snap_isa::{PropRule, RuleProgram, StepFunc};
use snap_kb::reference::NestedRelationTable;
use snap_kb::{NodeId, SemanticNetwork};
use snap_nlu::{kb::rel, DomainSpec, PartOfSpeech};
use snap_stats::Table;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::time::Instant;

/// Propagation depth cap for the kernel drivers (the barrier's level
/// range; deep enough that no workload here ever hits it).
const KERNEL_MAX_HOPS: u8 = 63;

/// One kernel measurement: tasks expanded, arrivals produced, and the
/// best (minimum) wall time over the repeat iterations.
struct KernelRun {
    tasks: u64,
    arrivals: u64,
    best_ns: u128,
}

impl KernelRun {
    fn tasks_per_sec(&self) -> f64 {
        self.tasks as f64 * 1e9 / self.best_ns.max(1) as f64
    }
}

/// The historical improvement rule, verbatim: first visit, or a value
/// below the best by more than epsilon, or an epsilon-tie broken toward
/// the smaller origin ID.
fn legacy_should_expand(
    map: &mut HashMap<(usize, u8, NodeId), (f32, NodeId)>,
    state: u8,
    node: NodeId,
    value: f32,
    origin: NodeId,
) -> bool {
    match map.get_mut(&(0, state, node)) {
        None => {
            map.insert((0, state, node), (value, origin));
            true
        }
        Some((best, best_origin)) => {
            if value < *best - VALUE_EPSILON
                || ((value - *best).abs() <= VALUE_EPSILON && origin < *best_origin)
            {
                *best = value.min(*best);
                *best_origin = origin;
                true
            } else {
                false
            }
        }
    }
}

/// One SPFA pass over the pre-CSR datapath: nested-segment table scan,
/// tuple-keyed hash map, and a freshly allocated arrival vector per
/// task — the hot path as it was before the overhaul.
fn legacy_pass(
    table: &NestedRelationTable,
    rule: &RuleProgram,
    func: StepFunc,
    sources: &[NodeId],
    max_hops: u8,
) -> (u64, u64) {
    let mut visited: HashMap<(usize, u8, NodeId), (f32, NodeId)> = HashMap::new();
    let mut queue: VecDeque<PropTask> = VecDeque::new();
    for &node in sources {
        if legacy_should_expand(&mut visited, 0, node, 0.0, node) {
            queue.push_back(PropTask {
                prop: 0,
                node,
                state: 0,
                value: 0.0,
                origin: node,
                level: 0,
            });
        }
    }
    let (mut tasks, mut produced) = (0u64, 0u64);
    while let Some(task) = queue.pop_front() {
        tasks += 1;
        let state = rule.state(task.state);
        let _segments = table.segments(task.node);
        let mut arrivals: Vec<PropArrival> = Vec::new();
        if !state.is_terminal() {
            for link in table.links(task.node) {
                for arc in state.arcs() {
                    if link.relation == arc.relation {
                        arrivals.push(PropArrival {
                            node: link.destination,
                            state: arc.next,
                            value: func.apply(task.value, link.weight),
                        });
                    }
                }
            }
        }
        produced += arrivals.len() as u64;
        if task.level >= max_hops {
            continue;
        }
        for a in arrivals {
            if legacy_should_expand(&mut visited, a.state, a.node, a.value, task.origin) {
                queue.push_back(PropTask {
                    prop: 0,
                    node: a.node,
                    state: a.state,
                    value: a.value,
                    origin: task.origin,
                    level: task.level + 1,
                });
            }
        }
    }
    (tasks, produced)
}

/// The same SPFA pass over the current datapath: [`expand_into`] on the
/// CSR relation table, a dense visited map, and one reused arrival
/// buffer.
fn csr_pass(
    net: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    sources: &[NodeId],
    max_hops: u8,
) -> (u64, u64) {
    let mut visited = VisitedMap::with_strategy(VisitedStrategy::Auto, net.node_count());
    let mut queue: VecDeque<PropTask> = VecDeque::new();
    for &node in sources {
        if visited.should_expand(0, 0, node, 0.0, node) {
            queue.push_back(PropTask {
                prop: 0,
                node,
                state: 0,
                value: 0.0,
                origin: node,
                level: 0,
            });
        }
    }
    let (mut tasks, mut produced) = (0u64, 0u64);
    let mut arrivals: Vec<PropArrival> = Vec::new();
    while let Some(task) = queue.pop_front() {
        tasks += 1;
        expand_into(net, rule, func, &task, &mut arrivals);
        produced += arrivals.len() as u64;
        if task.level >= max_hops {
            continue;
        }
        for a in &arrivals {
            if visited.should_expand(0, a.state, a.node, a.value, task.origin) {
                queue.push_back(PropTask {
                    prop: 0,
                    node: a.node,
                    state: a.state,
                    value: a.value,
                    origin: task.origin,
                    level: task.level + 1,
                });
            }
        }
    }
    (tasks, produced)
}

/// Times `pass` over `iters` repetitions, keeping the fastest.
fn measure(iters: usize, mut pass: impl FnMut() -> (u64, u64)) -> KernelRun {
    let mut best = KernelRun {
        tasks: 0,
        arrivals: 0,
        best_ns: u128::MAX,
    };
    for _ in 0..iters {
        let t0 = Instant::now();
        let (tasks, arrivals) = pass();
        let ns = t0.elapsed().as_nanos();
        if ns < best.best_ns {
            best.best_ns = ns;
        }
        best.tasks = tasks;
        best.arrivals = arrivals;
    }
    best
}

/// Rebuilds `net`'s relation table in the historical nested-segment
/// representation (construction time is excluded from the measurement,
/// as the CSR table inside `net` is likewise prebuilt).
fn nested_copy(net: &SemanticNetwork) -> NestedRelationTable {
    let mut table = NestedRelationTable::new();
    for node in net.nodes() {
        table.ensure_node(node);
        for link in net.links(node) {
            table
                .add_link(node, link.relation, link.weight, link.destination)
                .expect("rebuilding an existing link set");
        }
    }
    table
}

/// Legacy-vs-CSR kernel comparison on one workload.
struct KernelResult {
    legacy: KernelRun,
    csr: KernelRun,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.csr.tasks_per_sec() / self.legacy.tasks_per_sec()
    }
}

fn kernel_compare(
    net: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    sources: &[NodeId],
    iters: usize,
) -> KernelResult {
    let table = nested_copy(net);
    let legacy = measure(iters, || {
        legacy_pass(&table, rule, func, sources, KERNEL_MAX_HOPS)
    });
    let csr = measure(iters, || {
        csr_pass(net, rule, func, sources, KERNEL_MAX_HOPS)
    });
    assert_eq!(
        (legacy.tasks, legacy.arrivals),
        (csr.tasks, csr.arrivals),
        "kernel datapaths diverged on the same workload"
    );
    KernelResult { legacy, csr }
}

/// One engine's end-to-end wall time on a workload, with the traffic
/// counters that evidence envelope batching and the partition context
/// that explains them (a zero envelope count on a fully-local partition
/// is locality, not a broken counter).
struct EngineRun {
    wall_ns: u128,
    envelopes: u64,
    tasks_sent: u64,
    clusters: usize,
    partition: String,
    cut_fraction: f64,
    collects: Vec<snap_core::CollectOutput>,
}

/// Panics unless every engine's collect results are identical to the
/// sequential run's — a timing bench must never paper over a count
/// mismatch with a table footnote.
fn assert_engines_agree(name: &str, runs: &[(EngineKind, EngineRun)]) {
    let (_, oracle) = runs
        .iter()
        .find(|(k, _)| *k == EngineKind::Sequential)
        .expect("sequential engine in sweep");
    for (kind, run) in runs {
        assert_eq!(
            oracle.collects, run.collects,
            "{name}: {kind:?} collect results diverged from the sequential engine"
        );
    }
}

fn engine_machine(kind: EngineKind, clusters: usize) -> Snap1 {
    Snap1::builder().clusters(clusters).engine(kind).build()
}

fn partition_context(report: &snap_core::RunReport) -> (String, f64) {
    report
        .partition
        .as_ref()
        .map_or(("unknown".into(), 0.0), |p| {
            (format!("{:?}", p.scheme), p.cut_fraction)
        })
}

fn run_alpha(kind: EngineKind, alpha: usize, depth: usize, clusters: usize) -> EngineRun {
    let machine = engine_machine(kind, clusters);
    let mut net = alpha_network(alpha, depth).expect("alpha network");
    let program = alpha_program();
    let t0 = Instant::now();
    let report = machine.run(&mut net, &program).expect("alpha run");
    let (partition, cut_fraction) = partition_context(&report);
    EngineRun {
        wall_ns: t0.elapsed().as_nanos(),
        envelopes: report.traffic.total_messages,
        tasks_sent: report.traffic.tasks_sent,
        clusters,
        partition,
        cut_fraction,
        collects: report.collects,
    }
}

fn run_parse(kind: EngineKind, kb_nodes: usize, sentences: usize, clusters: usize) -> EngineRun {
    let machine = engine_machine(kind, clusters);
    let t0 = Instant::now();
    let results = parse_batch(kb_nodes, sentences, &machine, 0x4001_BEEF).expect("parse batch");
    let wall_ns = t0.elapsed().as_nanos();
    let (mut envelopes, mut tasks_sent) = (0u64, 0u64);
    let mut collects = Vec::new();
    for r in &results {
        envelopes += r.report.traffic.total_messages;
        tasks_sent += r.report.traffic.tasks_sent;
        collects.extend(r.report.collects.iter().cloned());
    }
    let (partition, cut_fraction) = results
        .first()
        .map_or(("unknown".into(), 0.0), |r| partition_context(&r.report));
    EngineRun {
        wall_ns,
        envelopes,
        tasks_sent,
        clusters,
        partition,
        cut_fraction,
        collects,
    }
}

/// The repository root (two levels above this crate's manifest).
fn repo_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    std::path::Path::new(&manifest)
        .join("../..")
        .components()
        .collect()
}

fn json_kernel(name: &str, k: &KernelResult, host_cpus: usize) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"tasks\": {},\n",
            "      \"arrivals\": {},\n",
            "      \"legacy_ns\": {},\n",
            "      \"csr_ns\": {},\n",
            "      \"legacy_tasks_per_sec\": {:.0},\n",
            "      \"csr_tasks_per_sec\": {:.0},\n",
            "      \"speedup\": {:.2},\n",
            "      \"wall_reliable\": {}\n",
            "    }}"
        ),
        name,
        k.csr.tasks,
        k.csr.arrivals,
        k.legacy.best_ns,
        k.csr.best_ns,
        k.legacy.tasks_per_sec(),
        k.csr.tasks_per_sec(),
        k.speedup(),
        // Both drivers are single-threaded: the wall number only needs
        // one unshared core.
        host_cpus >= 1,
    )
}

fn json_engine(name: &str, runs: &[(EngineKind, EngineRun)], host_cpus: usize) -> String {
    let fields: Vec<String> = runs
        .iter()
        .map(|(kind, r)| {
            let label = match kind {
                EngineKind::Sequential => "sequential",
                EngineKind::Des => "des",
                EngineKind::Threaded => "threaded",
            };
            // Sequential and DES run on one thread; the threaded engine
            // needs a core per cluster worker before its wall time means
            // anything (the same rule the scaling bench applies).
            let reliable = match kind {
                EngineKind::Threaded => host_cpus >= r.clusters,
                _ => host_cpus >= 1,
            };
            let mut s = format!(
                "      \"{}_wall_ms\": {:.2},\n      \"{}_wall_reliable\": {}",
                label,
                r.wall_ns as f64 / 1e6,
                label,
                reliable
            );
            if *kind == EngineKind::Threaded {
                s.push_str(&format!(
                    concat!(
                        ",\n      \"threaded_envelopes\": {},\n",
                        "      \"threaded_tasks_sent\": {},\n",
                        "      \"threaded_clusters\": {},\n",
                        "      \"threaded_partition\": \"{}\",\n",
                        "      \"threaded_cut_fraction\": {:.4}"
                    ),
                    r.envelopes, r.tasks_sent, r.clusters, r.partition, r.cut_fraction
                ));
            }
            s
        })
        .collect();
    format!("    \"{}\": {{\n{}\n    }}", name, fields.join(",\n"))
}

/// Runs the experiment and writes `BENCH_hotpath.json` at the repo root.
///
/// # Panics
///
/// Panics if a run fails or the JSON file cannot be written.
pub fn run(quick: bool) -> ExperimentOutput {
    run_to(quick, repo_root().join("BENCH_hotpath.json"))
}

/// [`run`] with an explicit output path (tests point it at a temp dir so
/// a test run never overwrites the checked-in baseline).
fn run_to(quick: bool, path: PathBuf) -> ExperimentOutput {
    let iters = if quick { 2 } else { 3 };
    let (alpha, depth) = if quick { (32, 24) } else { (192, 96) };
    let kb_nodes = if quick { 2_500 } else { 12_000 };
    let sentences = if quick { 1 } else { 2 };
    let clusters = 8;

    // Kernel throughput: fig16 α chains (Star over one relation). The
    // networks are flushed up front, as every engine does at run entry —
    // otherwise expansion takes the staged-links fallback scan.
    let star = PropRule::Star(CHAIN_REL).compile();
    let mut alpha_net = alpha_network(alpha, depth).expect("alpha network");
    alpha_net.flush_links();
    let alpha_sources: Vec<NodeId> = alpha_net.nodes_with_color(SRC_COLOR).collect();
    let fig16_kernel = kernel_compare(
        &alpha_net,
        &star,
        StepFunc::AddWeight,
        &alpha_sources,
        iters,
    );

    // Kernel throughput: fig19 large parse KB (Spread over the
    // subsumption relations, sourced at the noun lexicon).
    let mut kb = DomainSpec::sized(kb_nodes).build().expect("parse KB");
    kb.network.flush_links();
    let spread = PropRule::Spread(rel::IS_A, rel::ELEM_OF).compile();
    let kb_sources: Vec<NodeId> = kb
        .words(PartOfSpeech::Noun)
        .iter()
        .filter_map(|w| kb.word(w))
        .collect();
    let fig19_kernel = kernel_compare(
        &kb.network,
        &spread,
        StepFunc::AddWeight,
        &kb_sources,
        iters,
    );

    // End-to-end engine runtimes.
    let engines = [
        EngineKind::Sequential,
        EngineKind::Des,
        EngineKind::Threaded,
    ];
    let fig16_engines: Vec<(EngineKind, EngineRun)> = engines
        .iter()
        .map(|&k| (k, run_alpha(k, alpha, depth, clusters)))
        .collect();
    let fig19_engines: Vec<(EngineKind, EngineRun)> = engines
        .iter()
        .map(|&k| (k, run_parse(k, kb_nodes, sentences, clusters)))
        .collect();
    assert_engines_agree("fig16 alpha", &fig16_engines);
    assert_engines_agree("fig19 parse", &fig19_engines);

    // BENCH_hotpath.json at the repo root. `host_cpus` qualifies every
    // wall number: this file is compared across machines, so each row
    // says whether the host could actually time it honestly.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"hotpath\",\n",
            "  \"quick\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"kernel\": {{\n{},\n{}\n  }},\n",
            "  \"end_to_end\": {{\n{},\n{}\n  }}\n",
            "}}\n"
        ),
        quick,
        host_cpus,
        json_kernel("fig16_alpha", &fig16_kernel, host_cpus),
        json_kernel("fig19_parse_kb", &fig19_kernel, host_cpus),
        json_engine("fig16_alpha", &fig16_engines, host_cpus),
        json_engine("fig19_parse", &fig19_engines, host_cpus),
    );
    std::fs::write(&path, &json).expect("write BENCH_hotpath.json");

    // Rendered output.
    let mut kernel_table = Table::new(
        [
            "workload",
            "tasks",
            "legacy ktasks/s",
            "csr ktasks/s",
            "speedup",
        ]
        .map(str::to_string)
        .to_vec(),
    );
    for (name, k) in [
        ("fig16 alpha", &fig16_kernel),
        ("fig19 parse KB", &fig19_kernel),
    ] {
        kernel_table.row(vec![
            name.to_string(),
            k.csr.tasks.to_string(),
            ratio(k.legacy.tasks_per_sec() / 1e3),
            ratio(k.csr.tasks_per_sec() / 1e3),
            ratio(k.speedup()),
        ]);
    }
    let mut engine_table = Table::new(
        ["workload", "engine", "wall ms", "envelopes", "tasks sent"]
            .map(str::to_string)
            .to_vec(),
    );
    for (name, runs) in [
        ("fig16 alpha", &fig16_engines),
        ("fig19 parse", &fig19_engines),
    ] {
        for (kind, r) in runs.iter() {
            engine_table.row(vec![
                name.to_string(),
                format!("{kind:?}"),
                ms(r.wall_ns as u64),
                r.envelopes.to_string(),
                r.tasks_sent.to_string(),
            ]);
        }
    }

    let mut out = ExperimentOutput::new("hotpath", "Wall-clock hot-path throughput");
    out.table("propagation kernel: legacy vs CSR datapath", kernel_table);
    out.table("end-to-end engine wall time", engine_table);
    out.note(format!(
        "fig19 large-KB sequential kernel speedup: {} (target >= 2.0)",
        ratio(fig19_kernel.speedup())
    ));
    for (name, engines) in [
        ("fig16 alpha", &fig16_engines),
        ("fig19 parse", &fig19_engines),
    ] {
        let Some((_, thr)) = engines.iter().find(|(k, _)| *k == EngineKind::Threaded) else {
            continue;
        };
        if thr.envelopes > 0 {
            out.note(format!(
                "{name} threaded batching: {} tasks in {} envelopes ({} tasks/envelope)",
                thr.tasks_sent,
                thr.envelopes,
                ratio(thr.tasks_sent as f64 / thr.envelopes as f64)
            ));
        } else {
            out.note(format!(
                "{name} threaded envelopes: 0 — the {} partition over {} clusters \
                 cut {:.2}% of links, so propagation stayed intra-cluster",
                thr.partition,
                thr.clusters,
                thr.cut_fraction * 100.0
            ));
        }
    }
    if host_cpus < clusters {
        out.note(format!(
            "host_cpus: {host_cpus} < {clusters} clusters — threaded wall rows are marked \
             \"wall_reliable\": false"
        ));
    } else {
        out.note(format!("host_cpus: {host_cpus}"));
    }
    out.note(format!("wrote {}", path.display()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree_and_json_is_written() {
        let dir = std::env::temp_dir().join(format!("snapbench-hotpath-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_hotpath.json");
        let out = run_to(true, path.clone());
        assert!(out.notes.iter().any(|n| n.contains("speedup")));
        assert!(out.notes.iter().any(|n| n.contains("host_cpus")));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"fig19_parse_kb\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"host_cpus\""));
        assert!(json.contains("\"wall_reliable\": true"));
        assert!(json.contains("\"threaded_wall_reliable\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
