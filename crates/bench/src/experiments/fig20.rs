//! Fig. 20 — operation counts vs knowledge-base size.
//!
//! Growing the knowledge base activates more irrelevant candidate
//! sequences, which must be removed by propagating cancel markers
//! during the multiple-hypothesis-resolution phase — so total
//! propagation work rises with size (expected to level off around
//! 5000). Set/clear, boolean, and collection counts stay roughly
//! constant.

use crate::output::{ratio, ExperimentOutput};
use crate::workloads::parse_batch;
use snap_core::Snap1;
use snap_isa::InstrClass;
use snap_stats::Table;

/// Runs the experiment.
///
/// # Panics
///
/// Panics if a run fails.
pub fn run(quick: bool) -> ExperimentOutput {
    let sizes: Vec<usize> = if quick {
        vec![600, 1_200, 2_400]
    } else {
        vec![1_000, 2_000, 4_000, 8_000, 12_000]
    };
    let sentences = if quick { 2 } else { 10 };
    let machine = Snap1::new();

    let mut table = Table::new(vec![
        "KB nodes",
        "propagations (node expansions)",
        "propagate instrs",
        "set/clear instrs",
        "boolean instrs",
        "collect instrs",
    ]);
    let mut expansions = Vec::new();
    let mut setclear = Vec::new();
    for &n in &sizes {
        let results = parse_batch(n, sentences, &machine, 0x0F160020).expect("parse batch");
        let mut exp = 0u64;
        let (mut p, mut sc, mut bo, mut co) = (0u64, 0u64, 0u64, 0u64);
        for r in &results {
            exp += r.report.expansions;
            p += r.report.count_of(InstrClass::Propagate);
            sc += r.report.count_of(InstrClass::SetClear);
            bo += r.report.count_of(InstrClass::Boolean);
            co += r.report.count_of(InstrClass::Collect);
        }
        table.row(vec![
            n.to_string(),
            exp.to_string(),
            p.to_string(),
            sc.to_string(),
            bo.to_string(),
            co.to_string(),
        ]);
        expansions.push(exp as f64);
        setclear.push(sc as f64);
    }

    let growth = expansions.last().unwrap() / expansions.first().unwrap();
    let sc_growth = setclear.last().unwrap() / setclear.first().unwrap();
    let mut out = ExperimentOutput::new("fig20", "Operation counts vs knowledge-base size");
    out.table("per-class operation counts across the parse batch", table);
    out.note(format!(
        "propagation work grows with KB size (×{}) while set/clear stays \
         roughly constant (×{}) — {}",
        ratio(growth),
        ratio(sc_growth),
        if growth > sc_growth * 1.5 {
            "HOLDS"
        } else {
            "CHECK"
        }
    ));
    out.note(
        "the paper counts 'propagations'; this reproduction reports node \
         expansions (units of propagation work) plus raw instruction counts",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_work_grows_with_kb() {
        let out = run(true);
        assert!(out.notes[0].contains("HOLDS"), "{:?}", out.notes);
    }
}
