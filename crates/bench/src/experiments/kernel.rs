//! `kernel` — scalar loop vs bitset wave kernel, written to
//! `BENCH_kernel.json` at the repository root.
//!
//! Four propagation drivers race over the same workloads:
//!
//! * **scalar** — the engine-faithful loop: [`ReadyQueue`] popped
//!   through a FIFO [`Picker`], dense [`VisitedMap`], one reused
//!   arrival buffer. This is the executable spec the wave kernel is
//!   measured against;
//! * **bitset-push** — [`propagate_wave`] with an over-unity pull
//!   density, so every wave scatters through the CSR out-runs;
//! * **bitset-pull** — pull density 0, so every wave gathers through
//!   the reverse CSR;
//! * **bitset-auto** — the default Beamer-style density switch.
//!
//! Every cell must report the identical task and arrival counts — a
//! divergence panics the bench, which is what the CI kernel-smoke job
//! runs in quick mode. On top of the counter assertions, the sequential
//! engine is run end-to-end under `KernelStrategy::Scalar` and
//! `::Bitset` and the collects and measured reports asserted equal.

use crate::output::{build_profile, ratio, rustc_version, ExperimentOutput};
use crate::workloads::{alpha_network, alpha_program, CHAIN_REL, SRC_COLOR};
use snap_core::kernel::{propagate_wave, WaveSink, WaveStats};
use snap_core::propagate::{expand_into, PropArrival, PropTask, VisitedMap};
use snap_core::{
    CoreError, EngineKind, KernelStrategy, Picker, ReadyQueue, ScheduleStrategy, Snap1,
    VisitedStrategy, CONTROL_STREAM,
};
use snap_isa::{PropRule, RuleProgram, StepFunc};
use snap_kb::{NodeId, SemanticNetwork};
use snap_nlu::{kb::rel, DomainSpec, PartOfSpeech};
use snap_stats::Table;
use std::path::PathBuf;
use std::time::Instant;

/// Propagation depth cap (deep enough that no workload here hits it).
const KERNEL_MAX_HOPS: u8 = 63;

/// Forces every wave into the push direction (no real frontier reaches
/// an over-unity density).
const PUSH_ONLY: f64 = 1e9;

/// Forces every wave into the pull direction.
const PULL_ONLY: f64 = 0.0;

/// The default direction-switch density (MachineConfig's default).
fn auto_density() -> f64 {
    snap_core::MachineConfig::snap1_eval().pull_density
}

/// Counters every driver must agree on, plus the best wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counts {
    tasks: u64,
    arrivals: u64,
}

struct Cell {
    counts: Counts,
    best_ns: u128,
    stats: WaveStats,
}

impl Cell {
    fn tasks_per_sec(&self) -> f64 {
        self.counts.tasks as f64 * 1e9 / self.best_ns.max(1) as f64
    }
}

/// The engine-faithful scalar loop: exactly what
/// `sequential::run_propagate` does under `KernelStrategy::Scalar`,
/// minus the region/report bookkeeping both sides share.
fn scalar_pass(
    net: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    sources: &[NodeId],
) -> Counts {
    let mut visited = VisitedMap::with_strategy(VisitedStrategy::Auto, net.node_count());
    let mut queue: ReadyQueue<PropTask> = ReadyQueue::new();
    let mut picker = Picker::new(ScheduleStrategy::Fifo, CONTROL_STREAM);
    for &node in sources {
        if visited.should_expand(0, 0, node, 0.0, node) {
            queue.push(PropTask {
                prop: 0,
                node,
                state: 0,
                value: 0.0,
                origin: node,
                level: 0,
            });
        }
    }
    let mut counts = Counts::default();
    let mut arrivals: Vec<PropArrival> = Vec::new();
    while let Some(task) = queue.pop(&mut picker) {
        expand_into(net, rule, func, &task, &mut arrivals);
        counts.tasks += 1;
        if task.level >= KERNEL_MAX_HOPS {
            continue;
        }
        for a in &arrivals {
            counts.arrivals += 1;
            if visited.should_expand(0, a.state, a.node, a.value, task.origin) {
                queue.push(PropTask {
                    prop: 0,
                    node: a.node,
                    state: a.state,
                    value: a.value,
                    origin: task.origin,
                    level: task.level + 1,
                });
            }
        }
    }
    counts
}

/// Counting sink: the wave kernel's event stream reduced to the counter
/// pair the scalar loop reports.
#[derive(Default)]
struct CountSink {
    counts: Counts,
}

impl WaveSink for CountSink {
    fn on_expand(&mut self, _task: &PropTask, _segments: usize, _links: usize, _arrivals: usize) {
        self.counts.tasks += 1;
    }

    fn on_arrival(&mut self, _task: &PropTask, _arrival: &PropArrival) -> Result<(), CoreError> {
        self.counts.arrivals += 1;
        Ok(())
    }
}

fn wave_pass(
    net: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    seeds: &[(NodeId, f32)],
    density: f64,
) -> (Counts, WaveStats) {
    let mut sink = CountSink::default();
    let stats = propagate_wave(
        net,
        rule,
        func,
        0,
        KERNEL_MAX_HOPS,
        density,
        seeds,
        &mut sink,
    )
    .expect("counting sink never errors");
    (sink.counts, stats)
}

/// Times one repetition of `pass` into `cell`, keeping the fastest.
/// An untimed run immediately before the timed one warms the caches,
/// so a cell is never charged for whatever the previous driver left
/// behind (the pull passes in particular scribble over a reverse CSR
/// plus scratch larger than L2).
fn sample(cell: &mut Cell, mut pass: impl FnMut() -> (Counts, WaveStats)) {
    pass();
    let t0 = Instant::now();
    let (counts, stats) = pass();
    let ns = t0.elapsed().as_nanos();
    if ns < cell.best_ns {
        cell.best_ns = ns;
    }
    cell.counts = counts;
    cell.stats = stats;
}

/// One workload's four cells, all asserted to identical counters.
struct Workload {
    name: &'static str,
    scalar: Cell,
    push: Cell,
    pull: Cell,
    auto: Cell,
}

impl Workload {
    fn speedup(&self, cell: &Cell) -> f64 {
        cell.tasks_per_sec() / self.scalar.tasks_per_sec()
    }
}

fn race(
    name: &'static str,
    net: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    sources: &[NodeId],
    iters: usize,
) -> Workload {
    let seeds: Vec<(NodeId, f32)> = sources.iter().map(|&n| (n, 0.0)).collect();
    let empty = || Cell {
        counts: Counts::default(),
        best_ns: u128::MAX,
        stats: WaveStats::default(),
    };
    let (mut scalar, mut push, mut pull, mut auto) = (empty(), empty(), empty(), empty());
    // Interleave the four drivers round-robin so clock drift on a
    // shared core hits every cell equally instead of whichever driver
    // happens to be measured last.
    for _ in 0..iters {
        sample(&mut scalar, || {
            (scalar_pass(net, rule, func, sources), WaveStats::default())
        });
        sample(&mut push, || wave_pass(net, rule, func, &seeds, PUSH_ONLY));
        sample(&mut pull, || wave_pass(net, rule, func, &seeds, PULL_ONLY));
        sample(&mut auto, || {
            wave_pass(net, rule, func, &seeds, auto_density())
        });
    }
    for (label, cell) in [("push", &push), ("pull", &pull), ("auto", &auto)] {
        assert_eq!(
            cell.counts, scalar.counts,
            "{name}: bitset-{label} diverged from the scalar spec"
        );
    }
    Workload {
        name,
        scalar,
        push,
        pull,
        auto,
    }
}

/// Runs the fig16 α workload end-to-end on the sequential engine under
/// both kernel strategies (and both forced directions) and asserts the
/// collects and measured reports are identical.
fn assert_engine_identical(alpha: usize, depth: usize) {
    let program = alpha_program();
    let run_with = |kernel: KernelStrategy, density: f64| {
        let machine = Snap1::builder()
            .clusters(8)
            .engine(EngineKind::Sequential)
            .kernel(kernel)
            .pull_density(density)
            .build();
        let mut net = alpha_network(alpha, depth).expect("alpha network");
        machine.run(&mut net, &program).expect("alpha run")
    };
    let scalar = run_with(KernelStrategy::Scalar, auto_density());
    for (kernel, density) in [
        (KernelStrategy::Bitset, PUSH_ONLY),
        (KernelStrategy::Bitset, PULL_ONLY),
        (KernelStrategy::Auto, auto_density()),
    ] {
        let wave = run_with(kernel, density);
        assert_eq!(
            wave.collects, scalar.collects,
            "engine collects diverged under {kernel:?}/{density}"
        );
        assert_eq!(wave.expansions, scalar.expansions, "{kernel:?}/{density}");
        assert_eq!(
            wave.traffic.local_activations, scalar.traffic.local_activations,
            "{kernel:?}/{density}"
        );
        assert_eq!(wave.total_ns, scalar.total_ns, "{kernel:?}/{density}");
    }
}

/// The repository root (two levels above this crate's manifest).
fn repo_root() -> PathBuf {
    // Without cargo's manifest dir (direct binary invocation) the best
    // guess is the current directory — never walk upward from an
    // unknown cwd.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(manifest) => std::path::Path::new(&manifest)
            .join("../..")
            .components()
            .collect(),
        Err(_) => PathBuf::from("."),
    }
}

fn json_workload(w: &Workload, host_cpus: usize) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"tasks\": {},\n",
            "      \"arrivals\": {},\n",
            "      \"scalar_ns\": {},\n",
            "      \"push_ns\": {},\n",
            "      \"pull_ns\": {},\n",
            "      \"auto_ns\": {},\n",
            "      \"scalar_tasks_per_sec\": {:.0},\n",
            "      \"push_speedup\": {:.2},\n",
            "      \"pull_speedup\": {:.2},\n",
            "      \"auto_speedup\": {:.2},\n",
            "      \"auto_waves\": {},\n",
            "      \"auto_pull_waves\": {},\n",
            "      \"wall_reliable\": {},\n",
            "      \"profile\": \"{}\",\n",
            "      \"rustc\": \"{}\"\n",
            "    }}"
        ),
        w.name,
        w.scalar.counts.tasks,
        w.scalar.counts.arrivals,
        w.scalar.best_ns,
        w.push.best_ns,
        w.pull.best_ns,
        w.auto.best_ns,
        w.scalar.tasks_per_sec(),
        w.speedup(&w.push),
        w.speedup(&w.pull),
        w.speedup(&w.auto),
        w.auto.stats.waves,
        w.auto.stats.pull_waves,
        // Every driver here is single-threaded; one unshared core is all
        // the wall number needs.
        host_cpus >= 1,
        build_profile(),
        rustc_version(),
    )
}

/// Runs the experiment and writes `BENCH_kernel.json` at the repo root.
///
/// # Panics
///
/// Panics if any bitset cell diverges from the scalar spec's counters,
/// if the engine-level comparison diverges, or the JSON cannot be
/// written.
pub fn run(quick: bool) -> ExperimentOutput {
    run_to(quick, repo_root().join("BENCH_kernel.json"))
}

/// [`run`] with an explicit output path (tests point it at a temp dir
/// so a test run never overwrites the checked-in baseline).
fn run_to(quick: bool, path: PathBuf) -> ExperimentOutput {
    let iters = if quick { 3 } else { 11 };
    let (alpha, depth) = if quick { (32, 24) } else { (192, 96) };
    let kb_nodes = if quick { 2_500 } else { 12_000 };

    // fig16 α chains: Star over one relation from the source color.
    let star = PropRule::Star(CHAIN_REL).compile();
    let mut alpha_net = alpha_network(alpha, depth).expect("alpha network");
    alpha_net.flush_links();
    let alpha_sources: Vec<NodeId> = alpha_net.nodes_with_color(SRC_COLOR).collect();
    let fig16 = race(
        "fig16_alpha",
        &alpha_net,
        &star,
        StepFunc::AddWeight,
        &alpha_sources,
        iters,
    );

    // fig19 parse KB: Spread over the subsumption relations from the
    // noun lexicon.
    let mut kb = DomainSpec::sized(kb_nodes).build().expect("parse KB");
    kb.network.flush_links();
    let spread = PropRule::Spread(rel::IS_A, rel::ELEM_OF).compile();
    let kb_sources: Vec<NodeId> = kb
        .words(PartOfSpeech::Noun)
        .iter()
        .filter_map(|w| kb.word(w))
        .collect();
    let fig19 = race(
        "fig19_parse_kb",
        &kb.network,
        &spread,
        StepFunc::AddWeight,
        &kb_sources,
        iters,
    );

    // End-to-end: the sequential engine must report identically under
    // every kernel strategy.
    assert_engine_identical(alpha.min(32), depth.min(24));

    let workloads = [&fig16, &fig19];
    let geomean_auto = workloads
        .iter()
        .map(|w| w.speedup(&w.auto).ln())
        .sum::<f64>()
        .exp()
        .powf(1.0 / workloads.len() as f64);

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kernel\",\n",
            "  \"quick\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"profile\": \"{}\",\n",
            "  \"rustc\": \"{}\",\n",
            "  \"workloads\": {{\n{},\n{}\n  }},\n",
            "  \"geomean_auto_speedup\": {:.2}\n",
            "}}\n"
        ),
        quick,
        host_cpus,
        build_profile(),
        rustc_version(),
        json_workload(&fig16, host_cpus),
        json_workload(&fig19, host_cpus),
        geomean_auto,
    );
    std::fs::write(&path, &json).expect("write BENCH_kernel.json");

    let mut table = Table::new(
        [
            "workload",
            "tasks",
            "scalar ktasks/s",
            "push x",
            "pull x",
            "auto x",
            "auto pull waves",
        ]
        .map(str::to_string)
        .to_vec(),
    );
    for w in workloads {
        table.row(vec![
            w.name.to_string(),
            w.scalar.counts.tasks.to_string(),
            ratio(w.scalar.tasks_per_sec() / 1e3),
            ratio(w.speedup(&w.push)),
            ratio(w.speedup(&w.pull)),
            ratio(w.speedup(&w.auto)),
            format!("{}/{}", w.auto.stats.pull_waves, w.auto.stats.waves),
        ]);
    }

    let mut out = ExperimentOutput::new("kernel", "Scalar loop vs bitset wave kernel");
    out.table(
        "propagation kernel: direction-optimized bitset vs scalar",
        table,
    );
    out.note(format!(
        "geomean auto speedup: {} (target >= 1.5); every cell asserted \
         task- and arrival-identical to the scalar spec",
        ratio(geomean_auto)
    ));
    out.note("sequential engine: collects and reports identical under Scalar/Bitset/Auto");
    out.note(format!(
        "host_cpus: {host_cpus} (all drivers single-threaded)"
    ));
    out.note(format!("wrote {}", path.display()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_agree_and_json_is_written() {
        let dir = std::env::temp_dir().join(format!("snapbench-kernel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_kernel.json");
        let out = run_to(true, path.clone());
        assert!(out.notes.iter().any(|n| n.contains("geomean")));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"fig16_alpha\""));
        assert!(json.contains("\"auto_speedup\""));
        assert!(json.contains("\"geomean_auto_speedup\""));
        assert!(json.contains("\"host_cpus\""));
        assert!(json.contains("\"wall_reliable\": true"));
        assert!(json.contains("\"profile\""));
        assert!(json.contains("\"rustc\": \"rustc"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
