//! Fig. 8 — time distribution of marker traffic.
//!
//! Parsing generates **bursts** of marker activation: the paper measures
//! the inter-cluster marker-activation messages at each barrier
//! synchronization, finding an average of 11.49 messages per
//! synchronization point with typical bursts of over 30 — the ICN must
//! absorb these or senders block.

use crate::output::{ratio, ExperimentOutput};
use crate::workloads::parse_batch;
use snap_core::Snap1;
use snap_kb::PartitionScheme;
use snap_stats::{Summary, Table};

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the underlying machine rejects a generated program.
pub fn run(quick: bool) -> ExperimentOutput {
    let (kb_nodes, sentences) = if quick { (1_500, 2) } else { (12_000, 8) };
    // Semantically-based allocation, as the machine would be run.
    // Counter-level tracing is free without the `obs` feature and
    // cheap with it; a traced build surfaces per-phase message counts
    // next to the burst table below.
    let machine = Snap1::builder()
        .clusters(16)
        .partition(PartitionScheme::Semantic)
        .trace(snap_core::ObsConfig::counters_only())
        .build();
    let reports = parse_batch(kb_nodes, sentences, &machine, 0x0F160008).expect("parse batch");

    let mut series: Vec<u64> = Vec::new();
    let mut faults = snap_core::FaultReport::default();
    for r in &reports {
        series.extend(&r.report.traffic.messages_per_sync);
        faults = faults.merged(&r.report.faults);
    }
    let summary: Summary = series.iter().map(|&m| m as f64).collect();

    let mut table = Table::new(vec!["sync point", "messages"]);
    for (i, &m) in series.iter().enumerate() {
        table.row(vec![i.to_string(), m.to_string()]);
    }
    let mut stats = Table::new(vec!["statistic", "value"]);
    stats.row(vec!["sync points".into(), summary.count().to_string()]);
    stats.row(vec!["mean messages/sync".into(), ratio(summary.mean())]);
    stats.row(vec!["max burst".into(), format!("{}", summary.max())]);

    let mut out = ExperimentOutput::new("fig08", "Marker traffic per barrier synchronization");
    out.table("messages at each synchronization point", table);
    out.table("summary", stats);
    out.note(format!(
        "mean {:.2} messages/sync (paper: 11.49); max burst {} (paper: bursts over 30) — \
         bursty traffic: {}",
        summary.mean(),
        summary.max(),
        if summary.max() > summary.mean() * 2.0 {
            "HOLDS"
        } else {
            "CHECK"
        }
    ));
    out.note(
        "absolute message counts exceed the paper's — the synthetic KB is \
         denser and the template-extraction pass is network-wide; the \
         burst *shape* is the reproduced property",
    );
    if !faults.is_empty() {
        out.note(format!("faults: {faults}"));
    }
    if let Some(last) = reports.last() {
        out.note_trace(&last.report);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_bursty_series() {
        let out = run(true);
        assert_eq!(out.tables.len(), 2);
        assert!(out.notes[0].contains("HOLDS"), "{:?}", out.notes);
    }
}
