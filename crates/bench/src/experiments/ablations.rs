//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Tiered vs naive termination detection** — the naive (idle-only)
//!    detector falsely reports barrier completion while markers are in
//!    transit; the tiered counters never do.
//! 2. **Partitioning function** — sequential vs round-robin vs semantic
//!    allocation changes the inter-cluster message volume.
//! 3. **Marker units per cluster** — intra-cluster MIMD capacity.
//! 4. **SIMD-only (lockstep waves) vs SIMD/MIMD** — the CM-2-style
//!    per-wave round-trip on the SNAP array.

use crate::output::{ms, ratio, ExperimentOutput};
use crate::workloads::{alpha_network, alpha_program, parse_batch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snap_core::{MachineConfig, Snap1};
use snap_kb::PartitionScheme;
use snap_stats::Table;
use snap_sync::{NaiveSyncModel, TieredSyncModel};

/// Measures false-completion rates of the naive detector under random
/// message schedules (the tiered detector is exact by construction).
fn sync_ablation(quick: bool) -> (Table, String) {
    let trials = if quick { 200 } else { 2_000 };
    let mut rng = StdRng::seed_from_u64(0xAB1A);
    let mut naive_false = 0u64;
    let mut tiered_false = 0u64;
    let mut checks = 0u64;
    for _ in 0..trials {
        let pes = 4;
        let mut tiered = TieredSyncModel::new(pes);
        let mut naive = NaiveSyncModel::new(pes);
        let mut in_flight = 0i64;
        // Random schedule: sends, receives, busy toggles.
        for _ in 0..rng.gen_range(3..40) {
            match rng.gen_range(0..3) {
                0 => {
                    tiered.created(0);
                    in_flight += 1;
                }
                1 if in_flight > 0 => {
                    tiered.consumed(0);
                    in_flight -= 1;
                }
                _ => {
                    let pe = rng.gen_range(0..pes);
                    let idle = rng.gen_bool(0.7);
                    tiered.set_idle(pe, idle);
                    naive.set_idle(pe, idle);
                }
            }
            // A mid-schedule completion check, as the controller would.
            let all_idle = (0..pes).all(|_| true); // naive sees only idle flags
            let _ = all_idle;
            checks += 1;
            let truly_done = in_flight == 0;
            if naive.is_complete() && !truly_done {
                naive_false += 1;
            }
            if tiered.is_complete() && !truly_done {
                tiered_false += 1;
            }
        }
    }
    let mut table = Table::new(vec!["detector", "false completions", "checks"]);
    table.row(vec![
        "naive (idle only)".into(),
        naive_false.to_string(),
        checks.to_string(),
    ]);
    table.row(vec![
        "tiered (paper)".into(),
        tiered_false.to_string(),
        checks.to_string(),
    ]);
    let note = format!(
        "naive detector falsely completed {naive_false} times; tiered never did — {}",
        if tiered_false == 0 && naive_false > 0 {
            "HOLDS"
        } else {
            "CHECK"
        }
    );
    (table, note)
}

/// Compares partitioning functions by inter-cluster traffic and time.
fn partition_ablation(quick: bool) -> Table {
    let (kb_nodes, sentences) = if quick { (1_200, 2) } else { (6_000, 6) };
    let mut table = Table::new(vec!["partition", "messages", "propagate ms"]);
    for (name, scheme) in [
        ("sequential", PartitionScheme::Sequential),
        ("round-robin", PartitionScheme::RoundRobin),
        ("semantic", PartitionScheme::Semantic),
    ] {
        let machine = Snap1::builder().clusters(16).partition(scheme).build();
        let results = parse_batch(kb_nodes, sentences, &machine, 0xAB1B).expect("parse");
        let msgs: u64 = results
            .iter()
            .map(|r| r.report.traffic.total_messages)
            .sum();
        let prop: u64 = results
            .iter()
            .map(|r| r.report.time_of(snap_isa::InstrClass::Propagate))
            .sum();
        table.row(vec![name.into(), msgs.to_string(), ms(prop)]);
    }
    table
}

/// Sweeps marker units per cluster at fixed cluster count.
fn mu_ablation() -> (Table, String) {
    let mut table = Table::new(vec!["MUs/cluster", "PEs", "time ms"]);
    let mut times = Vec::new();
    for mus in [1usize, 2, 3] {
        let config = MachineConfig::uniform(8, mus);
        let pes = config.pe_count();
        let machine = Snap1::builder().config(config).build();
        let mut net = alpha_network(256, 10).expect("network");
        let t = machine
            .run(&mut net, &alpha_program())
            .expect("run")
            .time_of(snap_isa::InstrClass::Propagate);
        table.row(vec![mus.to_string(), pes.to_string(), ms(t)]);
        times.push(t as f64);
    }
    let note = format!(
        "more MUs per cluster shorten propagation (1→3 MUs: ×{}) — {}",
        ratio(times[0] / times[2]),
        if times[2] < times[0] * 0.6 {
            "HOLDS"
        } else {
            "CHECK"
        }
    );
    (table, note)
}

/// ICN buffering capacity: the network must absorb marker bursts or
/// senders block (§II-C, Fig. 8).
fn icn_buffer_ablation(quick: bool) -> (Table, String) {
    let (kb_nodes, sentences) = if quick { (1_200, 2) } else { (4_000, 4) };
    let mut table = Table::new(vec!["outbox slots", "blocked sends", "total ms"]);
    let mut rows = Vec::new();
    for capacity in [4usize, 64, 1024] {
        let machine = Snap1::builder()
            .clusters(16)
            .partition(PartitionScheme::RoundRobin)
            .cu_outbox_capacity(capacity)
            .build();
        let results = parse_batch(kb_nodes, sentences, &machine, 0xAB1D).expect("parse");
        let blocked: u64 = results.iter().map(|r| r.report.traffic.blocked_sends).sum();
        let t: u64 = results.iter().map(|r| r.report.total_ns).sum();
        table.row(vec![capacity.to_string(), blocked.to_string(), ms(t)]);
        rows.push((blocked, t));
    }
    let note = format!(
        "a cramped outbox blocks senders ({} blocked at 4 slots vs {} at 1024) and \
         cannot be faster — {}",
        rows[0].0,
        rows[2].0,
        if rows[0].0 > rows[2].0 && rows[0].1 >= rows[2].1 {
            "HOLDS"
        } else {
            "CHECK"
        }
    );
    (table, note)
}

/// Lockstep (SIMD-only) vs MIMD propagation on the same array.
fn lockstep_ablation(quick: bool) -> (Table, String) {
    let (kb_nodes, sentences) = if quick { (1_200, 2) } else { (4_000, 4) };
    let mut table = Table::new(vec!["mode", "total ms"]);
    let mut times = Vec::new();
    for (name, lockstep) in [
        ("MIMD (SNAP-1)", false),
        ("lockstep waves (SIMD-only)", true),
    ] {
        let machine = Snap1::builder()
            .clusters(16)
            .lockstep_waves(lockstep)
            .build();
        let results = parse_batch(kb_nodes, sentences, &machine, 0xAB1C).expect("parse");
        let t: u64 = results.iter().map(|r| r.report.total_ns).sum();
        table.row(vec![name.into(), ms(t)]);
        times.push(t as f64);
    }
    let note = format!(
        "selective MIMD propagation beats per-wave round-trips ×{} — {}",
        ratio(times[1] / times[0]),
        if times[1] > times[0] {
            "HOLDS"
        } else {
            "CHECK"
        }
    );
    (table, note)
}

/// Runs all ablations.
///
/// # Panics
///
/// Panics if a run fails.
pub fn run(quick: bool) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("ablations", "Design-choice ablations");
    let (sync_table, sync_note) = sync_ablation(quick);
    out.table("tiered vs naive termination detection", sync_table);
    out.note(sync_note);
    out.table(
        "partitioning function vs traffic",
        partition_ablation(quick),
    );
    let (mu_table, mu_note) = mu_ablation();
    out.table("marker units per cluster", mu_table);
    out.note(mu_note);
    let (ls_table, ls_note) = lockstep_ablation(quick);
    out.table("MIMD vs lockstep propagation", ls_table);
    out.note(ls_note);
    let (icn_table, icn_note) = icn_buffer_ablation(quick);
    out.table("ICN burst-buffer capacity", icn_table);
    out.note(icn_note);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ablations_hold() {
        let out = run(true);
        let holds = out.notes.iter().filter(|n| n.contains("HOLDS")).count();
        assert!(holds >= 3, "{:?}", out.notes);
    }
}
