//! Tables III & IV — execution times for MUC-4 sentences.
//!
//! The paper parses newswire sentences in real time: phrasal-parser time
//! (serial, KB-independent) plus memory-based-parser time measured at
//! two knowledge-base sizes (5K and 9K nodes). Total time grows roughly
//! proportionally to sentence length, and each sentence needs hundreds
//! of SNAP instructions with propagation paths of 10–15 steps.

use crate::output::{ms, ExperimentOutput};
use crate::workloads::parse_batch;
use snap_core::Snap1;
use snap_nlu::{DomainSpec, MemoryBasedParser, SentenceGenerator};
use snap_stats::Table;

/// Runs the experiment.
///
/// # Panics
///
/// Panics if knowledge-base construction or parsing fails.
pub fn run(quick: bool) -> ExperimentOutput {
    let kb_sizes = if quick {
        vec![1_000, 2_000]
    } else {
        vec![5_000, 9_000]
    };
    let machine = Snap1::new(); // 16 clusters / 72 PEs, as in Section IV

    // Each KB size gets its own sentence set from the same seed: the
    // template-driven generator yields length-matched sentences, so the
    // cross-size comparison is apples-to-apples even though the derived
    // vocabularies differ.
    let mut mb_times: Vec<Vec<u64>> = vec![Vec::new(); kb_sizes.len()];
    let mut instr_counts: Vec<u64> = Vec::new();
    let mut depths: Vec<u8> = Vec::new();
    let mut pp_times: Vec<u64> = Vec::new();
    let mut sentences = Vec::new();

    for (k, &size) in kb_sizes.iter().enumerate() {
        let mut kb = DomainSpec::sized(size).build().expect("kb");
        let parser = MemoryBasedParser::new(&kb);
        let kb_ro = kb.clone();
        let set = SentenceGenerator::new(&kb_ro, 0x07AB0004).evaluation_set();
        for sentence in &set {
            let result = parser
                .parse(&mut kb.network, &machine, sentence)
                .expect("parse");
            mb_times[k].push(result.mb_time_ns);
            if k == 0 {
                pp_times.push(result.pp_time_ns);
                instr_counts.push(result.report.instruction_count());
                depths.push(result.report.max_propagation_depth);
            }
        }
        if k == 0 {
            sentences = set;
        }
    }

    let mut table = Table::new(vec![
        "input".to_string(),
        "words".to_string(),
        "instrs".to_string(),
        "max path".to_string(),
        "P.P. ms".to_string(),
        format!("M.B. ms ({}K)", kb_sizes[0] / 1000),
        format!("M.B. ms ({}K)", kb_sizes[1] / 1000),
        "total ms".to_string(),
    ]);
    for (i, sentence) in sentences.iter().enumerate() {
        table.row(vec![
            format!("S{}", i + 1),
            sentence.len().to_string(),
            instr_counts[i].to_string(),
            depths[i].to_string(),
            ms(pp_times[i]),
            ms(mb_times[0][i]),
            ms(mb_times[1][i]),
            ms(pp_times[i] + mb_times[1][i]),
        ]);
    }

    let total_first = pp_times[0] + mb_times[1][0];
    let total_last = pp_times[3] + mb_times[1][3];
    let len_ratio = sentences[3].len() as f64 / sentences[0].len() as f64;
    let time_ratio = total_last as f64 / total_first as f64;
    let real_time = pp_times
        .iter()
        .zip(&mb_times[1])
        .all(|(&pp, &mb)| pp + mb < 1_000_000_000);
    // The per-sentence KB-size comparison is noisy (sentences are
    // regenerated per KB); check the growth claim on a larger matched
    // batch instead.
    let batch_mean = |size: usize| -> f64 {
        let results = parse_batch(size, 8, &machine, 0x07AB0005).expect("probe batch");
        results.iter().map(|r| r.mb_time_ns as f64).sum::<f64>() / results.len() as f64
    };
    let mean_small = batch_mean(kb_sizes[0]);
    let mean_large = batch_mean(kb_sizes[1]);
    let mb_grows = mean_large >= mean_small;

    let mut out = ExperimentOutput::new("table4", "Execution times for MUC-4-like sentences");
    out.table("parse times per sentence and knowledge-base size", table);
    out.note(format!(
        "real-time (< 1 s/sentence): {}",
        if real_time { "HOLDS" } else { "CHECK" }
    ));
    out.note(format!(
        "time grows with sentence length: S4/S1 length ×{len_ratio:.1}, time ×{time_ratio:.1} — {}",
        if time_ratio > 1.2 { "HOLDS" } else { "CHECK" }
    ));
    out.note(format!(
        "M.B. time increases gradually with KB size (batch mean {:.2} → {:.2} ms): {}",
        mean_small / 1e6,
        mean_large / 1e6,
        if mb_grows { "HOLDS" } else { "CHECK" }
    ));
    out.note(format!(
        "propagation path lengths (paper: 10–15 max): measured max {}",
        depths.iter().max().unwrap()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_times_scale_and_stay_real_time() {
        let out = run(true);
        let holds = out.notes.iter().filter(|n| n.contains("HOLDS")).count();
        assert!(holds >= 2, "{:?}", out.notes);
    }
}
