//! Fig. 16 — speedup under α-parallelism.
//!
//! Speedup versus processor count for α ∈ {10, 100, 1000} source
//! activations: obtaining 20-fold speedup requires α on the order of
//! 100; at α = 1000 speedup is nearly linear up to the full 72-PE
//! configuration; for typical α (128–512) speedup is 18–33-fold.

use crate::output::{ratio, ExperimentOutput};
use crate::workloads::{alpha_network, alpha_program};
use snap_core::{EngineKind, MachineConfig, Snap1};
use snap_stats::Table;

/// Machine configurations swept (cluster count, MUs per cluster).
fn sweep(quick: bool) -> Vec<MachineConfig> {
    let mut configs = vec![
        MachineConfig::uniform(1, 1),
        MachineConfig::uniform(1, 3),
        MachineConfig::uniform(2, 3),
        MachineConfig::uniform(4, 3),
        MachineConfig::uniform(8, 3),
    ];
    if !quick {
        configs.push(MachineConfig::uniform(16, 3));
        configs.push(MachineConfig::snap1_eval()); // 72 PEs, as in the paper
    }
    configs
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if a run fails.
pub fn run(quick: bool) -> ExperimentOutput {
    let alphas: Vec<usize> = if quick {
        vec![10, 100]
    } else {
        vec![10, 100, 1000]
    };
    let depth = 12; // the paper's propagation paths run 10–15 steps

    let mut table = Table::new(
        vec!["PEs".to_string(), "clusters".to_string()]
            .into_iter()
            .chain(alphas.iter().map(|a| format!("speedup α={a}")))
            .collect::<Vec<String>>(),
    );

    // Baseline: the single-PE sequential engine.
    let mut base_times = Vec::new();
    for &alpha in &alphas {
        let mut net = alpha_network(alpha, depth).expect("network");
        let machine = Snap1::builder()
            .config(MachineConfig::uniform(1, 1))
            .engine(EngineKind::Sequential)
            .build();
        base_times.push(
            machine
                .run(&mut net, &alpha_program())
                .expect("run")
                .time_of(snap_isa::InstrClass::Propagate) as f64,
        );
    }

    let mut final_speedups = vec![0.0; alphas.len()];
    for config in sweep(quick) {
        let pes = config.pe_count();
        let clusters = config.clusters;
        let mut row = vec![pes.to_string(), clusters.to_string()];
        for (i, &alpha) in alphas.iter().enumerate() {
            let mut net = alpha_network(alpha, depth).expect("network");
            let machine = Snap1::builder().config(config.clone()).build();
            let t = machine
                .run(&mut net, &alpha_program())
                .expect("run")
                .time_of(snap_isa::InstrClass::Propagate) as f64;
            let speedup = base_times[i] / t;
            row.push(ratio(speedup));
            final_speedups[i] = speedup;
        }
        table.row(row);
    }

    let mut out = ExperimentOutput::new("fig16", "Speedup vs processors under α-parallelism");
    out.table(
        "propagation-phase speedup over the single-PE sequential engine",
        table,
    );
    let ordered = final_speedups.windows(2).all(|w| w[1] > w[0]);
    out.note(format!(
        "larger α yields larger speedup at full configuration \
         (paper: α=1000 near-linear, α=100 ≈ 20×, α=10 small): {}",
        if ordered { "HOLDS" } else { "CHECK" }
    ));
    if !quick {
        out.note(format!(
            "at 72 PEs: α=10 → {:.1}×, α=100 → {:.1}×, α=1000 → {:.1}×",
            final_speedups[0], final_speedups[1], final_speedups[2]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_ordering_holds() {
        let out = run(true);
        assert!(out.notes[0].contains("HOLDS"), "{:?}", out.notes);
    }
}
