//! Table I — design requirements and constraints, validated.
//!
//! The paper's Table I lists the capacities the prototype was designed
//! to: 32K semantic-network nodes, 256 node colors, 64K relation types,
//! 16 relation slots per node (with preprocessor splitting beyond), and
//! 64 complex + 64 binary markers per node. This experiment exercises
//! each limit on the running machine rather than just asserting the
//! constants.

use crate::output::ExperimentOutput;
use snap_core::{EngineKind, Snap1};
use snap_isa::{Program, PropRule, StepFunc};
use snap_kb::{
    Color, Marker, NetworkConfig, NodeId, RelationType, SemanticNetwork, SLOTS_PER_NODE,
};
use snap_stats::Table;

/// Runs the validation.
///
/// # Panics
///
/// Panics if any requirement fails to validate (it is a test, in table
/// form).
pub fn run(quick: bool) -> ExperimentOutput {
    let mut table = Table::new(vec!["requirement", "design value", "validated"]);
    let node_target = if quick { 4_096 } else { 32 * 1024 };

    // --- capacity: N nodes, stored and processed ---
    {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        for i in 0..node_target {
            net.add_node(Color((i % 256) as u8)).unwrap();
        }
        for i in 0..node_target - 1 {
            net.add_link(NodeId(i as u32), RelationType(0), 0.1, NodeId(i as u32 + 1))
                .unwrap();
        }
        assert!(
            net.add_node(Color(0)).is_err() || node_target < 32 * 1024,
            "capacity enforced at 32K"
        );
        let program = Program::builder()
            .search_node(NodeId(0), Marker::binary(0), 0.0)
            .propagate(
                Marker::binary(0),
                Marker::binary(1),
                PropRule::Star(RelationType(0)),
                StepFunc::Identity,
            )
            .collect_marker(Marker::binary(1))
            .build();
        let machine = Snap1::builder()
            .clusters(16)
            .engine(EngineKind::Des)
            .build();
        let report = machine.run(&mut net, &program).unwrap();
        assert!(!report.collects[0].is_empty());
        table.row(vec![
            "semantic network nodes".into(),
            "32K".into(),
            format!("{node_target} stored + propagated"),
        ]);
    }

    // --- 256 colors ---
    {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        for c in 0..=255u8 {
            net.add_node(Color(c)).unwrap();
        }
        for c in [0u8, 127, 255] {
            assert_eq!(net.nodes_with_color(Color(c)).count(), 1);
        }
        table.row(vec![
            "node colors".into(),
            "256".into(),
            "all 256 colors searchable".into(),
        ]);
    }

    // --- 64K relation types ---
    {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let a = net.add_node(Color(0)).unwrap();
        let b = net.add_node(Color(0)).unwrap();
        for r in [0u16, 1_000, 65_534] {
            net.add_link(a, RelationType(r), 0.0, b).unwrap();
        }
        assert!(
            net.add_link(a, RelationType::SUBNODE, 0.0, b).is_err(),
            "the reserved type is the only excluded one"
        );
        table.row(vec![
            "relation types".into(),
            "64K".into(),
            "types up to 65534 stored; 65535 reserved".into(),
        ]);
    }

    // --- 16 relation slots with subnode splitting ---
    {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let hub = net.add_node(Color(0)).unwrap();
        for _ in 0..100 {
            let leaf = net.add_node(Color(1)).unwrap();
            net.add_link(hub, RelationType(1), 0.1, leaf).unwrap();
        }
        assert_eq!(net.fanout(hub), 100);
        assert_eq!(net.segments(hub), 100usize.div_ceil(SLOTS_PER_NODE));
        // Propagation still reaches everything through the subnodes.
        let program = Program::builder()
            .search_node(hub, Marker::binary(0), 0.0)
            .propagate(
                Marker::binary(0),
                Marker::binary(1),
                PropRule::Once(RelationType(1)),
                StepFunc::Identity,
            )
            .collect_marker(Marker::binary(1))
            .build();
        let report = Snap1::builder()
            .clusters(4)
            .build()
            .run(&mut net, &program)
            .unwrap();
        assert_eq!(report.collects[0].len(), 100);
        table.row(vec![
            "relation slots per node".into(),
            format!("{SLOTS_PER_NODE} (+subnodes)"),
            "fanout 100 split into 7 segments, fully traversed".into(),
        ]);
    }

    // --- 64 complex + 64 binary markers ---
    {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let n = net.add_node(Color(0)).unwrap();
        let mut b = Program::builder();
        for i in 0..64u8 {
            b = b.search_node(n, Marker::complex(i), i as f32).search_node(
                n,
                Marker::binary(i),
                0.0,
            );
        }
        b = b
            .collect_marker(Marker::complex(63))
            .collect_marker(Marker::binary(63));
        let report = Snap1::builder()
            .clusters(1)
            .build()
            .run(&mut net, &b.build())
            .unwrap();
        assert_eq!(report.collects[0].len(), 1);
        assert_eq!(report.collects[1].len(), 1);
        // Register 64 is out of range.
        let bad = Program::builder()
            .set_marker(Marker::binary(64), 0.0)
            .build();
        assert!(Snap1::builder()
            .clusters(1)
            .build()
            .run(&mut net, &bad)
            .is_err());
        table.row(vec![
            "markers per node".into(),
            "64 complex + 64 binary".into(),
            "all 128 registers usable; #64 rejected".into(),
        ]);
    }

    // --- the 20-instruction ISA ---
    table.row(vec![
        "marker-propagation instructions".into(),
        "20".into(),
        "see snap-isa (exhaustively matched by every engine)".into(),
    ]);

    let mut out = ExperimentOutput::new("table1", "Design requirements (Table I), validated");
    out.table("requirement validation", table);
    out.note("every design-point capacity is enforced and exercised end-to-end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_requirements_validate() {
        let out = run(true);
        assert_eq!(out.tables[0].1.row_count(), 6);
    }
}
