//! `serve` — query-serving throughput and latency, written to
//! `BENCH_serve.json` at the repository root.
//!
//! Two measurements over the fig19 parse KB, serving parse-style
//! queries (seed one noun, spread up the subsumption taxonomy, collect
//! the bindings) through [`snap_serve::Server`]. The query mix is
//! Zipf-distributed over 32 distinct seeds — the serving regime, where
//! a few hot queries dominate the stream — so deep batches both fuse
//! row probes across distinct queries and coalesce bit-identical
//! repeats onto shared lanes:
//!
//! * **saturated throughput** — the admission queue is pre-filled and
//!   drained at batch depths 1..16. The headline speedup is against the
//!   **one-query-at-a-time baseline**: the same query stream answered by
//!   [`Snap1::run_shared`] one call per query, the status-quo path
//!   before the serving layer existed, which rebuilds the region map and
//!   partition statistics per call. The serving layer amortizes that
//!   setup across the stream (pooled contexts, one region map) and the
//!   fused batch executor pays each CSR row probe and rank merge once
//!   per batch; the depth-1 serve row is also reported so the
//!   fusion-plus-coalescing gain is visible separately
//!   (`speedup_vs_depth1`);
//! * **open-loop load sweep** — arrivals scheduled at a fixed offered
//!   rate (fractions and multiples of the measured saturated rate),
//!   latency measured from the *scheduled* arrival instant so queueing
//!   delay is charged to the server, reported as p50/p99/p999. The
//!   overload rows shed at admission; their exact
//!   offered/admitted/completed/shed counts are asserted to balance.
//!
//! Every completion — batched or not, loaded or overloaded — is checked
//! against a solo run of the serial sequential engine on the shared
//! snapshot: collects, expansions, local activations, and simulated
//! nanoseconds must all be identical, or the bench panics. This is the
//! same oracle the serve differential tests pin down; here it runs on
//! every measured query, so a throughput number can never be bought
//! with a wrong answer.

use crate::output::{build_profile, ratio, rustc_version, ExperimentOutput};
use snap_core::{EngineKind, RunReport, Snap1};
use snap_isa::{Program, PropRule, StepFunc};
use snap_kb::{Marker, NodeId, SemanticNetwork};
use snap_nlu::{kb::rel, DomainSpec, PartOfSpeech};
use snap_serve::{Admission, Completion, ServeConfig, Server};
use snap_stats::Table;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Batch depths swept in the saturated-throughput section.
const DEPTHS: [usize; 5] = [1, 2, 4, 8, 16];

/// Offered-load multipliers (of the measured saturated rate) swept in
/// the open-loop section; the >1 row is deliberate overload.
const LOADS: [f64; 3] = [0.5, 0.9, 1.5];

/// Open-loop rows run at these batch depths.
const OPEN_DEPTHS: [usize; 2] = [1, 8];

/// Queue bound for the open-loop rows, small enough that the overload
/// row actually sheds.
const OPEN_QUEUE: usize = 32;

/// Saturated cells and the serial baseline report the fastest of this
/// many repetitions: one offer-and-drain cycle is a few milliseconds,
/// short enough that a single scheduler preemption used to carve a
/// visible notch into the depth curve (the depth-8 row once measured
/// *below* depth 1). Min-of-reps keeps the curve a property of the
/// code, not of the host's timeslicing.
fn sat_reps(quick: bool) -> usize {
    if quick {
        3
    } else {
        5
    }
}

/// Zipf exponent of the query mix (s in `rank^-s`).
const ZIPF_S: f64 = 1.2;

/// Deterministic Zipf(`ZIPF_S`)-distributed rank sequence over `n`
/// ranks: the hottest query is rank 0. A fixed LCG keeps the stream
/// identical across runs and machines.
fn zipf_sequence(n: usize, len: usize, seed: u64) -> Vec<usize> {
    let cumulative: Vec<f64> = (0..n)
        .scan(0.0, |acc, r| {
            *acc += 1.0 / ((r + 1) as f64).powf(ZIPF_S);
            Some(*acc)
        })
        .collect();
    let total = *cumulative.last().expect("at least one rank");
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
            cumulative.partition_point(|&c| c < u).min(n - 1)
        })
        .collect()
}

/// The parse-style query: seed one word, walk the subsumption
/// taxonomy, collect every binding. All instances share one shape (the
/// seed node is masked by the server's shape key), so they fuse.
fn parse_query(node: NodeId) -> Program {
    Program::builder()
        .search_node(node, Marker::binary(1), 0.0)
        .propagate(
            Marker::binary(1),
            Marker::complex(2),
            PropRule::Spread(rel::IS_A, rel::ELEM_OF),
            StepFunc::AddWeight,
        )
        .collect_marker(Marker::complex(2))
        .build()
}

/// Memoizing oracle: one solo sequential run per distinct seed node.
struct Oracle {
    machine: Snap1,
    memo: HashMap<u32, RunReport>,
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            machine: Snap1::builder().engine(EngineKind::Sequential).build(),
            memo: HashMap::new(),
        }
    }

    /// Panics unless `c` is identical to the solo sequential run for
    /// `node` — down to the simulated nanoseconds.
    fn check(&mut self, net: &Arc<SemanticNetwork>, node: NodeId, c: &Completion) {
        let want = self.memo.entry(node.0).or_insert_with(|| {
            self.machine
                .run_shared(net, &parse_query(node))
                .expect("oracle run")
        });
        let got = c
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("query {:?} failed: {e}", c.id));
        assert_eq!(
            got.collects, want.collects,
            "collects diverged, seed {node:?}"
        );
        assert_eq!(got.expansions, want.expansions, "seed {node:?}");
        assert_eq!(
            got.traffic.local_activations, want.traffic.local_activations,
            "seed {node:?}"
        );
        assert_eq!(got.total_ns, want.total_ns, "seed {node:?}");
    }
}

/// One saturated-throughput cell.
struct SatRow {
    depth: usize,
    queries: usize,
    wall_ns: u128,
    qps: f64,
}

/// The status-quo baseline: the same `queries`-long stream answered one
/// call at a time through the serial engine's shared entry point. Each
/// call pays the full per-query setup (region map, partition stats,
/// fresh region) the serving layer amortizes.
fn serial_baseline(
    net: &Arc<SemanticNetwork>,
    seeds: &[NodeId],
    mix: &[usize],
    queries: usize,
    reps: usize,
) -> SatRow {
    let machine = Snap1::builder().engine(EngineKind::Sequential).build();
    let mut wall_ns = u128::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        for i in 0..queries {
            let program = parse_query(seeds[mix[i % mix.len()]]);
            machine
                .run_shared(net, &program)
                .expect("serial baseline run");
        }
        wall_ns = wall_ns.min(t0.elapsed().as_nanos());
    }
    SatRow {
        depth: 0,
        queries,
        wall_ns,
        qps: queries as f64 * 1e9 / wall_ns.max(1) as f64,
    }
}

/// One open-loop cell.
struct OpenRow {
    depth: usize,
    load: f64,
    offered_qps: f64,
    measured_qps: f64,
    offered: u64,
    admitted: u64,
    completed: u64,
    shed_overload: u64,
    shed_invalid: u64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_nanos() as f64 / 1e3
}

/// Pre-fills the queue with `queries` drawn from the Zipf `mix` and
/// drains it at `depth`, repeated `reps` times on one server (so later
/// repetitions exercise the warmed context pool) keeping the fastest
/// wall time. Every completion of every repetition is verified against
/// the oracle outside the timed window — pooled-and-reset contexts must
/// stay bit-identical to fresh ones.
fn saturated(
    net: &Arc<SemanticNetwork>,
    seeds: &[NodeId],
    mix: &[usize],
    oracle: &mut Oracle,
    depth: usize,
    queries: usize,
    reps: usize,
) -> SatRow {
    let cfg = ServeConfig {
        max_batch: depth,
        queue_capacity: queries,
        ..ServeConfig::default()
    };
    let mut server = Server::new(Arc::clone(net), cfg).expect("flushed snapshot");
    let mut wall_ns = u128::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        for i in 0..queries {
            let adm = server.offer(parse_query(seeds[mix[i % mix.len()]]));
            assert!(matches!(adm, Admission::Admitted(_)), "capacity == queries");
        }
        let done = server.drain();
        wall_ns = wall_ns.min(t0.elapsed().as_nanos());
        assert_eq!(done.len(), queries);
        server.assert_accounting();
        for c in &done {
            // IDs count offers across repetitions and `queries` is a
            // multiple of the mix length, so the modulo still names the
            // offer position within the repetition.
            let node = seeds[mix[c.id.0 as usize % mix.len()]];
            oracle.check(net, node, c);
            assert!(c.batch_depth <= depth, "batch never exceeds max_batch");
        }
    }
    SatRow {
        depth,
        queries,
        wall_ns,
        qps: queries as f64 * 1e9 / wall_ns.max(1) as f64,
    }
}

/// Open-loop run: `queries` arrivals scheduled `interval` apart;
/// latency is measured from the scheduled instant, and offers the
/// bounded queue rejects are shed and counted.
#[allow(clippy::too_many_arguments)]
fn open_loop(
    net: &Arc<SemanticNetwork>,
    seeds: &[NodeId],
    mix: &[usize],
    oracle: &mut Oracle,
    depth: usize,
    load: f64,
    offered_qps: f64,
    queries: usize,
) -> OpenRow {
    let cfg = ServeConfig {
        max_batch: depth,
        queue_capacity: OPEN_QUEUE,
        ..ServeConfig::default()
    };
    let mut server = Server::new(Arc::clone(net), cfg).expect("flushed snapshot");
    let interval = Duration::from_nanos((1e9 / offered_qps) as u64);
    let mut scheduled: HashMap<u64, (Duration, NodeId)> = HashMap::new();
    let mut latencies: Vec<Duration> = Vec::new();
    // Verification happens after the clock stops; completions are only
    // collected inside the loop.
    let mut finished: Vec<Completion> = Vec::new();
    let start = Instant::now();
    let mut next = 0usize;
    loop {
        let now = start.elapsed();
        while next < queries && interval * next as u32 <= now {
            let node = seeds[mix[next % mix.len()]];
            if let Admission::Admitted(id) = server.offer(parse_query(node)) {
                scheduled.insert(id.0, (interval * next as u32, node));
            }
            next += 1;
        }
        if server.queue_len() == 0 {
            if next >= queries {
                break;
            }
            std::hint::spin_loop();
            continue;
        }
        let done = server.pump();
        let t = start.elapsed();
        for c in done {
            let (at, _) = scheduled[&c.id.0];
            latencies.push(t.saturating_sub(at));
            finished.push(c);
        }
    }
    let wall_ns = start.elapsed().as_nanos();
    for c in &finished {
        let (_, node) = scheduled[&c.id.0];
        oracle.check(net, node, c);
    }
    server.assert_accounting();
    let s = server.stats();
    assert_eq!(s.offered, queries as u64, "every arrival was offered");
    assert_eq!(
        s.offered,
        s.admitted + s.shed(),
        "offer accounting balances"
    );
    assert_eq!(s.admitted, s.completed, "queue drained before exit");
    assert_eq!(latencies.len() as u64, s.completed);
    latencies.sort_unstable();
    OpenRow {
        depth,
        load,
        offered_qps,
        measured_qps: s.completed as f64 * 1e9 / wall_ns.max(1) as f64,
        offered: s.offered,
        admitted: s.admitted,
        completed: s.completed,
        shed_overload: s.shed_overload,
        shed_invalid: s.shed_invalid,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
    }
}

/// The repository root (two levels above this crate's manifest).
fn repo_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    std::path::Path::new(&manifest)
        .join("../..")
        .components()
        .collect()
}

fn json_sat(rows: &[SatRow], serial_qps: f64, depth1_qps: f64, host_cpus: usize) -> String {
    let profile = build_profile();
    let rustc = rustc_version();
    rows.iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{ \"batch_depth\": {}, \"queries\": {}, \"wall_ms\": {:.2}, ",
                    "\"qps\": {:.0}, \"speedup_vs_serial\": {:.2}, ",
                    "\"speedup_vs_depth1\": {:.2}, \"wall_reliable\": {}, ",
                    "\"profile\": \"{}\", \"rustc\": \"{}\" }}"
                ),
                r.depth,
                r.queries,
                r.wall_ns as f64 / 1e6,
                r.qps,
                r.qps / serial_qps,
                r.qps / depth1_qps,
                host_cpus >= 1,
                profile,
                rustc,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn json_open(rows: &[OpenRow], host_cpus: usize) -> String {
    let profile = build_profile();
    let rustc = rustc_version();
    rows.iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{ \"batch_depth\": {}, \"load\": {:.2}, \"offered_qps\": {:.0}, ",
                    "\"measured_qps\": {:.0}, \"offered\": {}, \"admitted\": {}, ",
                    "\"completed\": {}, \"shed_overload\": {}, \"shed_invalid\": {}, ",
                    "\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, ",
                    "\"wall_reliable\": {}, \"profile\": \"{}\", \"rustc\": \"{}\" }}"
                ),
                r.depth,
                r.load,
                r.offered_qps,
                r.measured_qps,
                r.offered,
                r.admitted,
                r.completed,
                r.shed_overload,
                r.shed_invalid,
                r.p50_us,
                r.p99_us,
                r.p999_us,
                host_cpus >= 1,
                profile,
                rustc,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

/// Runs the experiment and writes `BENCH_serve.json` at the repo root.
///
/// # Panics
///
/// Panics if any completion diverges from the sequential oracle, if the
/// shed accounting does not balance exactly, or (in full mode) if
/// batched serving misses its 2x floor over the one-query-at-a-time
/// baseline at depth >= 8.
pub fn run(quick: bool) -> ExperimentOutput {
    run_to(quick, repo_root().join("BENCH_serve.json"))
}

/// [`run`] with an explicit output path (tests point it at a temp dir
/// so a test run never overwrites the checked-in baseline).
fn run_to(quick: bool, path: PathBuf) -> ExperimentOutput {
    let kb_nodes = if quick { 2_500 } else { 12_000 };
    let sat_queries = if quick { 96 } else { 512 };
    let open_queries = if quick { 48 } else { 256 };

    let mut kb = DomainSpec::sized(kb_nodes).build().expect("parse KB");
    kb.network.flush_links();
    let nouns: Vec<NodeId> = kb
        .words(PartOfSpeech::Noun)
        .iter()
        .filter_map(|w| kb.word(w))
        .collect();
    // A spread of distinct seeds across the lexicon: frontiers differ
    // per query but converge on the shared upper taxonomy, which is
    // exactly the row-probe overlap batching amortizes.
    let stride = (nouns.len() / 32).max(1);
    let seeds: Vec<NodeId> = nouns.iter().copied().step_by(stride).take(32).collect();
    assert!(!seeds.is_empty(), "parse KB has a noun lexicon");
    let net = Arc::new(kb.network);
    let mut oracle = Oracle::new();
    let mix = zipf_sequence(seeds.len(), sat_queries.max(open_queries), 0x5EED_CAFE);

    // The one-query-at-a-time baseline, then saturated serve throughput
    // per batch depth.
    let reps = sat_reps(quick);
    let serial = serial_baseline(&net, &seeds, &mix, sat_queries, reps);
    let sat: Vec<SatRow> = DEPTHS
        .iter()
        .map(|&d| saturated(&net, &seeds, &mix, &mut oracle, d, sat_queries, reps))
        .collect();
    let depth1_qps = sat[0].qps;
    // The depth curve must be (near-)monotone: deeper batches only add
    // fusion and coalescing opportunities, so a cell measuring below its
    // shallower neighbour is a scheduling regression, not noise —
    // min-of-reps already filtered the timeslicing outliers. Quick mode
    // runs tiny problem sizes on shared CI hosts, so it gets a looser
    // tolerance.
    let monotone_tol = if quick { 0.85 } else { 0.95 };
    for w in sat.windows(2) {
        assert!(
            w[1].qps >= w[0].qps * monotone_tol,
            "depth curve regressed: depth {} at {:.0} qps fell below depth {} at {:.0} qps \
             (tolerance {monotone_tol})",
            w[1].depth,
            w[1].qps,
            w[0].depth,
            w[0].qps,
        );
    }
    let best_deep = sat
        .iter()
        .filter(|r| r.depth >= 8)
        .map(|r| r.qps / serial.qps)
        .fold(0.0, f64::max);
    let best_fused = sat
        .iter()
        .filter(|r| r.depth >= 8)
        .map(|r| r.qps / depth1_qps)
        .fold(0.0, f64::max);
    if !quick {
        assert!(
            best_deep >= 2.0,
            "batched serving speedup {best_deep:.2} over the one-query-at-a-time \
             baseline at depth >= 8 is below the 2x floor"
        );
    }

    // Open-loop latency under offered load, rated off the saturated
    // throughput at each depth.
    let mut open: Vec<OpenRow> = Vec::new();
    for &d in &OPEN_DEPTHS {
        let sat_qps = sat
            .iter()
            .find(|r| r.depth == d)
            .expect("open depths are swept")
            .qps;
        for &load in &LOADS {
            open.push(open_loop(
                &net,
                &seeds,
                &mix,
                &mut oracle,
                d,
                load,
                sat_qps * load,
                open_queries,
            ));
        }
    }
    let overload_shed: u64 = open
        .iter()
        .filter(|r| r.load > 1.0)
        .map(|r| r.shed_overload)
        .sum();

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"quick\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"kb_nodes\": {},\n",
            "  \"profile\": \"{}\",\n",
            "  \"rustc\": \"{}\",\n",
            "  \"serial_one_at_a_time\": {{ \"queries\": {}, \"wall_ms\": {:.2}, ",
            "\"qps\": {:.0}, \"profile\": \"{}\", \"rustc\": \"{}\" }},\n",
            "  \"saturated\": [\n{}\n  ],\n",
            "  \"open_loop\": [\n{}\n  ],\n",
            "  \"best_speedup_depth8_plus\": {:.2},\n",
            "  \"best_fused_speedup_vs_depth1\": {:.2}\n",
            "}}\n"
        ),
        quick,
        host_cpus,
        kb_nodes,
        build_profile(),
        rustc_version(),
        serial.queries,
        serial.wall_ns as f64 / 1e6,
        serial.qps,
        build_profile(),
        rustc_version(),
        json_sat(&sat, serial.qps, depth1_qps, host_cpus),
        json_open(&open, host_cpus),
        best_deep,
        best_fused,
    );
    std::fs::write(&path, &json).expect("write BENCH_serve.json");

    let mut sat_table = Table::new(
        [
            "batch depth",
            "queries",
            "wall ms",
            "qps",
            "vs serial",
            "vs depth 1",
        ]
        .map(str::to_string)
        .to_vec(),
    );
    sat_table.row(vec![
        "serial".to_string(),
        serial.queries.to_string(),
        format!("{:.2}", serial.wall_ns as f64 / 1e6),
        format!("{:.0}", serial.qps),
        ratio(1.0),
        "-".to_string(),
    ]);
    for r in &sat {
        sat_table.row(vec![
            r.depth.to_string(),
            r.queries.to_string(),
            format!("{:.2}", r.wall_ns as f64 / 1e6),
            format!("{:.0}", r.qps),
            ratio(r.qps / serial.qps),
            ratio(r.qps / depth1_qps),
        ]);
    }
    let mut open_table = Table::new(
        [
            "depth",
            "load",
            "offered",
            "admitted",
            "completed",
            "shed",
            "p50 us",
            "p99 us",
            "p999 us",
        ]
        .map(str::to_string)
        .to_vec(),
    );
    for r in &open {
        open_table.row(vec![
            r.depth.to_string(),
            ratio(r.load),
            r.offered.to_string(),
            r.admitted.to_string(),
            r.completed.to_string(),
            (r.shed_overload + r.shed_invalid).to_string(),
            format!("{:.1}", r.p50_us),
            format!("{:.1}", r.p99_us),
            format!("{:.1}", r.p999_us),
        ]);
    }

    let mut out = ExperimentOutput::new("serve", "Query serving: fused batching and admission");
    out.table(
        "saturated throughput vs batch depth (fig19 parse KB)",
        sat_table,
    );
    out.table("open-loop latency and shedding", open_table);
    out.note(format!(
        "best speedup at depth >= 8 over the one-query-at-a-time serial baseline: {} \
         (target >= 2.0); fusion+coalescing alone (vs serve at depth 1): {}",
        ratio(best_deep),
        ratio(best_fused)
    ));
    out.note(format!(
        "query mix: Zipf(s={ZIPF_S}) over {} distinct parse queries — deep batches fuse \
         row probes and coalesce bit-identical repeats",
        seeds.len()
    ));
    out.note(format!(
        "every completion verified identical to the sequential oracle \
         ({} distinct seeds memoized)",
        oracle.memo.len()
    ));
    out.note(format!(
        "overload rows shed {overload_shed} offers; accounting asserted exact on every row"
    ));
    out.note(format!(
        "host_cpus: {host_cpus} (server and oracle single-threaded)"
    ));
    out.note(format!(
        "build: profile {}, {} — fastest of {reps} repetitions per cell",
        build_profile(),
        rustc_version()
    ));
    out.note(format!("wrote {}", path.display()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_verifies_and_writes_json() {
        let dir = std::env::temp_dir().join(format!("snapbench-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json");
        let out = run_to(true, path.clone());
        assert!(out.notes.iter().any(|n| n.contains("oracle")));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"saturated\""));
        assert!(json.contains("\"open_loop\""));
        assert!(json.contains("\"serial_one_at_a_time\""));
        assert!(json.contains("\"speedup_vs_serial\""));
        assert!(json.contains("\"speedup_vs_depth1\""));
        assert!(json.contains("\"shed_overload\""));
        assert!(json.contains("\"p999_us\""));
        assert!(json.contains("\"host_cpus\""));
        assert!(json.contains("\"wall_reliable\": true"));
        assert!(json.contains("\"profile\""));
        assert!(json.contains("\"rustc\": \"rustc"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
