//! Fig. 6 — relative instruction frequency and execution time.
//!
//! The paper profiles NLU applications on a single processor: while
//! `PROPAGATE` is only 17.0% of the instructions executed, it consumes
//! 64.5% of the overall processing time, so propagation is what the
//! architecture must optimize.

use crate::output::{ratio, ExperimentOutput};
use crate::workloads::parse_batch;
use snap_core::{EngineKind, RunReport, Snap1};
use snap_isa::InstrClass;
use snap_stats::Table;

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the underlying machine rejects a generated program (a bug,
/// not an input condition).
pub fn run(quick: bool) -> ExperimentOutput {
    let (kb_nodes, sentences) = if quick { (1_000, 3) } else { (9_000, 12) };
    let machine = Snap1::builder()
        .clusters(1)
        .mus_per_cluster(1)
        .engine(EngineKind::Sequential)
        .build();
    let reports = parse_batch(kb_nodes, sentences, &machine, 0x0F160006).expect("parse batch");

    let mut total = RunReport::default();
    for r in &reports {
        for (&class, &n) in &r.report.class_counts {
            *total.class_counts.entry(class).or_insert(0) += n;
        }
        for (&class, &ns) in &r.report.class_time_ns {
            *total.class_time_ns.entry(class).or_insert(0) += ns;
        }
    }

    let mut table = Table::new(vec!["class", "count", "count %", "time ms", "time %"]);
    for class in InstrClass::ALL {
        let n = total.count_of(class);
        if n == 0 {
            continue;
        }
        table.row(vec![
            class.to_string(),
            n.to_string(),
            ratio(total.count_fraction(class) * 100.0),
            crate::output::ms(total.time_of(class)),
            ratio(total.time_fraction(class) * 100.0),
        ]);
    }

    let prop_count = total.count_fraction(InstrClass::Propagate) * 100.0;
    let prop_time = total.time_fraction(InstrClass::Propagate) * 100.0;
    let mut out = ExperimentOutput::new(
        "fig06",
        "Relative instruction frequency and execution time (single PE)",
    );
    out.table(
        format!("instruction profile over {sentences} parsed sentences, {kb_nodes}-node KB"),
        table,
    );
    out.note(format!(
        "PROPAGATE: {prop_count:.1}% of instructions, {prop_time:.1}% of time \
         (paper: 17.0% / 64.5%) — propagation dominates time, not count: {}",
        if prop_time > prop_count * 2.0 {
            "HOLDS"
        } else {
            "CHECK"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagate_dominates_time_not_count() {
        let out = run(true);
        assert!(
            out.notes.iter().any(|n| n.contains("HOLDS")),
            "{:?}",
            out.notes
        );
        assert_eq!(out.tables.len(), 1);
    }
}
