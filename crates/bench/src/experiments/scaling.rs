//! `scaling` — speedup curves for the threaded engine over cluster
//! count and partition scheme, written to `BENCH_scaling.json` at the
//! repository root.
//!
//! For each workload (the fig16 α chains and the fig19 parse knowledge
//! base) the sweep runs every `(clusters, partition scheme)` cell on the
//! threaded engine (wall clock) and the DES (simulated time), checking
//! each cell's collect results against the sequential oracle — any
//! divergence panics, which is what the CI smoke job keys on. Wall-clock
//! numbers are honest about the host: `host_cpus` is recorded in the
//! JSON, and on a single-core box the simulated-time curve is the
//! scaling signal while wall time only bounds overhead.

use crate::output::{ms, ratio, ExperimentOutput};
use crate::workloads::{alpha_network, alpha_program};
use snap_core::{EngineKind, RunReport, Snap1};
use snap_isa::{Program, PropRule, StepFunc};
use snap_kb::{Marker, NodeId, PartitionScheme, RelationType, SemanticNetwork};
use snap_nlu::{kb::rel, DomainSpec, PartOfSpeech};
use snap_stats::Table;
use std::path::PathBuf;
use std::time::Instant;

/// Partition schemes on the sweep axis, in presentation order.
const SCHEMES: [PartitionScheme; 3] = [
    PartitionScheme::RoundRobin,
    PartitionScheme::Semantic,
    PartitionScheme::EdgeCut,
];

fn scheme_name(s: PartitionScheme) -> &'static str {
    match s {
        PartitionScheme::Sequential => "Sequential",
        PartitionScheme::RoundRobin => "RoundRobin",
        PartitionScheme::Semantic => "Semantic",
        PartitionScheme::EdgeCut => "EdgeCut",
    }
}

/// One workload: a prebuilt network and the program to run on it. The
/// network is cloned outside every timed region, so measurements cover
/// `Snap1::run` only — not KB construction.
struct Workload {
    name: &'static str,
    net: SemanticNetwork,
    program: Program,
}

/// One `(clusters, scheme)` sweep cell.
struct Cell {
    clusters: usize,
    scheme: PartitionScheme,
    /// Best threaded wall time over the repeat iterations (ns).
    wall_ns: u128,
    /// DES simulated time (ns).
    des_ns: u64,
    /// Inter-cluster envelopes on the wire (threaded run).
    envelopes: u64,
    /// Marker tasks carried by those envelopes (threaded run).
    tasks_sent: u64,
    /// Cut fraction of the partition the run used.
    cut_fraction: f64,
    /// Load balance (max cluster load over mean) of that partition.
    load_balance: f64,
}

/// Builds the fig19-style parse-KB workload: `Spread` over the
/// subsumption relations from a fixed sample of noun lexicon nodes.
fn parse_kb_workload(kb_nodes: usize) -> Workload {
    let kb = DomainSpec::sized(kb_nodes).build().expect("parse KB");
    let sources: Vec<NodeId> = kb
        .words(PartOfSpeech::Noun)
        .iter()
        .filter_map(|w| kb.word(w))
        .take(48)
        .collect();
    assert!(!sources.is_empty(), "parse KB has no noun lexicon");
    let mut b = Program::builder();
    for &node in &sources {
        b = b.search_node(node, Marker::binary(0), 0.0);
    }
    let program = b
        .propagate(
            Marker::binary(0),
            Marker::complex(1),
            PropRule::Spread(rel::IS_A, rel::ELEM_OF),
            StepFunc::AddWeight,
        )
        .collect_marker(Marker::complex(1))
        .build();
    Workload {
        name: "fig19_parse_kb",
        net: kb.network,
        program,
    }
}

/// Synthetic-topology workloads promoted from the partition fuzzer's
/// generators ([`snap_kb::synth`]): a preferential-attachment graph
/// (hub-heavy, like a grown KB), a one-hub star (worst case for any
/// balanced cut), and bridged communities (best case for a
/// locality-aware cut). Together they stress the partition axis in ways
/// the two paper workloads — which are fairly uniform — do not.
fn synth_workloads(quick: bool) -> Vec<Workload> {
    use snap_kb::synth::{bridge_network, scale_free_network, star_network};
    let (sf_n, star_leaves, bridge_size) = if quick {
        (600, 256, 64)
    } else {
        (2_000, 1_024, 256)
    };

    // Scale-free links point from newer nodes to older ones, so seeding
    // the newest nodes exercises the longest attachment chains.
    let mut scale_free = scale_free_network(sf_n, 2, 7);
    scale_free.flush_links();
    let mut b = Program::builder();
    for i in 0..16 {
        b = b.search_node(NodeId((sf_n - 1 - i) as u32), Marker::binary(0), 0.0);
    }
    let scale_free_program = b
        .propagate(
            Marker::binary(0),
            Marker::complex(1),
            PropRule::Star(RelationType(0)),
            StepFunc::AddWeight,
        )
        .collect_marker(Marker::complex(1))
        .build();

    let mut star = star_network(star_leaves);
    star.flush_links();
    let star_program = Program::builder()
        .search_node(NodeId(0), Marker::binary(0), 0.0)
        .propagate(
            Marker::binary(0),
            Marker::complex(1),
            PropRule::Star(RelationType(0)),
            StepFunc::AddWeight,
        )
        .collect_marker(Marker::complex(1))
        .build();

    // Spread walks the community lines (relation 0) and crosses the
    // single bridge links (relation 2).
    let mut bridged = bridge_network(4, bridge_size);
    bridged.flush_links();
    let bridged_program = Program::builder()
        .search_node(NodeId(0), Marker::binary(0), 0.0)
        .propagate(
            Marker::binary(0),
            Marker::complex(1),
            PropRule::Spread(RelationType(0), RelationType(2)),
            StepFunc::AddWeight,
        )
        .collect_marker(Marker::complex(1))
        .build();

    vec![
        Workload {
            name: "synth_scale_free",
            net: scale_free,
            program: scale_free_program,
        },
        Workload {
            name: "synth_star_hub",
            net: star,
            program: star_program,
        },
        Workload {
            name: "synth_bridged",
            net: bridged,
            program: bridged_program,
        },
    ]
}

/// Runs `workload` once on `kind` and returns the report. The collect
/// outputs of every run are compared against `oracle` (when given);
/// divergence panics — results must be engine- and partition-invariant.
fn run_once(
    workload: &Workload,
    kind: EngineKind,
    clusters: usize,
    scheme: PartitionScheme,
    oracle: Option<&RunReport>,
) -> (RunReport, u128) {
    let machine = Snap1::builder()
        .clusters(clusters)
        .partition(scheme)
        .engine(kind)
        .build();
    let mut net = workload.net.clone();
    let t0 = Instant::now();
    let report = machine
        .run(&mut net, &workload.program)
        .expect("scaling run");
    let wall_ns = t0.elapsed().as_nanos();
    if let Some(oracle) = oracle {
        assert_eq!(
            oracle.collects,
            report.collects,
            "{}: {kind:?} with {clusters} clusters / {} diverged from the sequential oracle",
            workload.name,
            scheme_name(scheme),
        );
    }
    (report, wall_ns)
}

/// Sweeps one `(clusters, scheme)` cell: threaded best-of-`iters` wall
/// time plus one deterministic DES run, both checked against the oracle.
fn run_cell(
    workload: &Workload,
    clusters: usize,
    scheme: PartitionScheme,
    iters: usize,
    oracle: &RunReport,
) -> Cell {
    let mut wall_ns = u128::MAX;
    let mut envelopes = 0;
    let mut tasks_sent = 0;
    let mut cut_fraction = 0.0;
    let mut load_balance = 0.0;
    for _ in 0..iters {
        let (report, ns) = run_once(
            workload,
            EngineKind::Threaded,
            clusters,
            scheme,
            Some(oracle),
        );
        wall_ns = wall_ns.min(ns);
        envelopes = report.traffic.total_messages;
        tasks_sent = report.traffic.tasks_sent;
        if let Some(p) = &report.partition {
            cut_fraction = p.cut_fraction;
            load_balance = p.load_balance;
        }
    }
    let (des_report, _) = run_once(workload, EngineKind::Des, clusters, scheme, Some(oracle));
    Cell {
        clusters,
        scheme,
        wall_ns,
        des_ns: des_report.total_ns,
        envelopes,
        tasks_sent,
        cut_fraction,
        load_balance,
    }
}

/// The repository root (two levels above this crate's manifest).
fn repo_root() -> PathBuf {
    // Without cargo's manifest dir (direct binary invocation) the best
    // guess is the current directory — never walk upward from an
    // unknown cwd.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(manifest) => std::path::Path::new(&manifest)
            .join("../..")
            .components()
            .collect(),
        Err(_) => PathBuf::from("."),
    }
}

fn json_workload(name: &str, seq_wall_ns: u128, cells: &[Cell], host_cpus: usize) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            let des_base = cells
                .iter()
                .find(|b| b.clusters == 1 && b.scheme == c.scheme)
                .map_or(c.des_ns, |b| b.des_ns);
            format!(
                concat!(
                    "      {{ \"clusters\": {}, \"scheme\": \"{}\", ",
                    "\"wall_ms\": {:.2}, \"speedup_wall\": {:.2}, \"wall_reliable\": {}, ",
                    "\"des_ms\": {:.3}, \"speedup_des\": {:.2}, ",
                    "\"envelopes\": {}, \"tasks_sent\": {}, ",
                    "\"cut_fraction\": {:.4}, \"load_balance\": {:.3} }}"
                ),
                c.clusters,
                scheme_name(c.scheme),
                c.wall_ns as f64 / 1e6,
                seq_wall_ns as f64 / c.wall_ns.max(1) as f64,
                host_cpus >= c.clusters,
                c.des_ns as f64 / 1e6,
                des_base as f64 / c.des_ns.max(1) as f64,
                c.envelopes,
                c.tasks_sent,
                c.cut_fraction,
                c.load_balance,
            )
        })
        .collect();
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"sequential_wall_ms\": {:.2},\n",
            "      \"rows\": [\n  {}\n      ]\n",
            "    }}"
        ),
        name,
        seq_wall_ns as f64 / 1e6,
        rows.join(",\n  "),
    )
}

/// Runs the sweep and writes `BENCH_scaling.json` at the repo root.
///
/// # Panics
///
/// Panics if any run fails, any engine's collect results diverge from
/// the sequential oracle, or the JSON file cannot be written.
pub fn run(quick: bool) -> ExperimentOutput {
    run_to(quick, repo_root().join("BENCH_scaling.json"))
}

/// [`run`] with an explicit output path (tests point it at a temp dir so
/// a test run never overwrites the checked-in baseline).
fn run_to(quick: bool, path: PathBuf) -> ExperimentOutput {
    let iters = if quick { 1 } else { 2 };
    let cluster_axis: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8, 16] };
    // α is prime so no swept cluster count divides it: under RoundRobin
    // every chain link then crosses a cluster boundary, giving the
    // locality-aware schemes something to win (α = 192 would tile every
    // power-of-two array perfectly and null the partition axis).
    let (alpha, depth) = if quick { (31, 24) } else { (191, 96) };
    let kb_nodes = if quick { 2_500 } else { 12_000 };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut workloads = vec![
        Workload {
            name: "fig16_alpha",
            net: alpha_network(alpha, depth).expect("alpha network"),
            program: alpha_program(),
        },
        parse_kb_workload(kb_nodes),
    ];
    workloads.extend(synth_workloads(quick));

    let mut out = ExperimentOutput::new("scaling", "Threaded-engine speedup curves");
    let mut json_sections = Vec::new();
    for workload in &workloads {
        // Sequential oracle: semantics reference and wall-clock baseline.
        let mut seq_wall_ns = u128::MAX;
        let mut oracle = None;
        for _ in 0..iters {
            let (report, ns) = run_once(
                workload,
                EngineKind::Sequential,
                1,
                PartitionScheme::Sequential,
                None,
            );
            seq_wall_ns = seq_wall_ns.min(ns);
            oracle = Some(report);
        }
        let oracle = oracle.expect("at least one sequential iteration");

        let mut cells = Vec::new();
        for &clusters in cluster_axis {
            for &scheme in &SCHEMES {
                cells.push(run_cell(workload, clusters, scheme, iters, &oracle));
            }
        }

        let mut table = Table::new(
            [
                "clusters",
                "scheme",
                "wall ms",
                "des ms",
                "des speedup",
                "envelopes",
                "cut frac",
            ]
            .map(str::to_string)
            .to_vec(),
        );
        for c in &cells {
            let des_base = cells
                .iter()
                .find(|b| b.clusters == 1 && b.scheme == c.scheme)
                .map_or(c.des_ns, |b| b.des_ns);
            table.row(vec![
                c.clusters.to_string(),
                scheme_name(c.scheme).to_string(),
                ms(c.wall_ns as u64),
                format!("{:.3}", c.des_ns as f64 / 1e6),
                ratio(des_base as f64 / c.des_ns.max(1) as f64),
                c.envelopes.to_string(),
                format!("{:.4}", c.cut_fraction),
            ]);
        }
        out.table(
            format!(
                "{} (sequential: {} ms)",
                workload.name,
                ms(seq_wall_ns as u64)
            ),
            table,
        );

        // Partition-quality note: EdgeCut should cut fewer links than
        // RoundRobin at the widest array swept.
        let widest = *cluster_axis.last().expect("non-empty cluster axis");
        let cut_of = |scheme| {
            cells
                .iter()
                .find(|c| c.clusters == widest && c.scheme == scheme)
                .map_or(0.0, |c| c.cut_fraction)
        };
        out.note(format!(
            "{} @ {} clusters cut fraction: EdgeCut {:.4} vs RoundRobin {:.4} vs Semantic {:.4}",
            workload.name,
            widest,
            cut_of(PartitionScheme::EdgeCut),
            cut_of(PartitionScheme::RoundRobin),
            cut_of(PartitionScheme::Semantic),
        ));
        json_sections.push(json_workload(workload.name, seq_wall_ns, &cells, host_cpus));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scaling\",\n",
            "  \"quick\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"workloads\": {{\n{}\n  }}\n",
            "}}\n"
        ),
        quick,
        host_cpus,
        json_sections.join(",\n"),
    );
    std::fs::write(&path, &json).expect("write BENCH_scaling.json");

    out.note(format!(
        "host_cpus: {host_cpus}{}",
        if host_cpus == 1 {
            " — wall-clock speedup is core-bound; the DES simulated-time curve carries the scaling signal"
        } else {
            ""
        }
    ));
    // Honesty flag: a threaded cell wider than the host oversubscribes
    // cores, so its wall time measures contention, not scaling. The JSON
    // rows carry the same verdict per cell as `wall_reliable`.
    let oversubscribed: Vec<String> = cluster_axis
        .iter()
        .filter(|&&c| c > host_cpus)
        .map(|c| c.to_string())
        .collect();
    if !oversubscribed.is_empty() {
        out.note(format!(
            "WARNING: cluster counts [{}] exceed host_cpus={host_cpus}; their wall_ms rows are \
             marked \"wall_reliable\": false — read speedup_des for those cells",
            oversubscribed.join(", "),
        ));
    }
    out.note("all threaded and DES collect results matched the sequential oracle".to_string());
    out.note(format!("wrote {}", path.display()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_oracle_and_json_is_written() {
        let dir = std::env::temp_dir().join(format!("snapbench-scaling-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_scaling.json");
        let out = run_to(true, path.clone());
        assert!(out
            .notes
            .iter()
            .any(|n| n.contains("matched the sequential oracle")));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"fig16_alpha\""));
        assert!(json.contains("\"fig19_parse_kb\""));
        assert!(json.contains("\"synth_scale_free\""));
        assert!(json.contains("\"synth_star_hub\""));
        assert!(json.contains("\"synth_bridged\""));
        assert!(json.contains("\"EdgeCut\""));
        assert!(json.contains("\"host_cpus\""));
        // Every threaded row carries the wall-clock honesty verdict, and
        // it must agree with the host: a single-threaded cell is always
        // reliable, a cell wider than the host never is.
        assert!(json.contains("\"wall_reliable\": true"));
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        if host < 4 {
            assert!(json.contains("\"wall_reliable\": false"));
            assert!(out
                .notes
                .iter()
                .any(|n| n.contains("WARNING") && n.contains("wall_reliable")));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
