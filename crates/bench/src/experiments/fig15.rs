//! Fig. 15 — inheritance: SNAP-1 vs CM-2.
//!
//! Root-to-leaf property inheritance measured against knowledge-base
//! size. The CM-2 must iterate between controller and array on every
//! propagation step, so its time is high but nearly flat; SNAP-1's
//! selective MIMD propagation is much faster at these sizes but its
//! slope is steeper, and the paper predicts the lines cross for larger
//! knowledge bases.

use crate::output::{ms, ratio, ExperimentOutput};
use snap_baseline::Cm2;
use snap_core::Snap1;
use snap_nlu::{hierarchy, inheritance_program};
use snap_stats::Table;

/// Runs the experiment.
///
/// # Panics
///
/// Panics if hierarchy construction or a run fails.
pub fn run(quick: bool) -> ExperimentOutput {
    let sizes: Vec<usize> = if quick {
        vec![100, 400, 1_600]
    } else {
        vec![100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600]
    };
    let snap = Snap1::new(); // 16 clusters / 72 PEs
    let cm2 = Cm2::new();

    let mut table = Table::new(vec!["nodes", "depth", "SNAP-1 ms", "CM-2 ms"]);
    let mut snap_times = Vec::new();
    let mut cm2_times = Vec::new();
    for &n in &sizes {
        let w = hierarchy(n, 4).expect("hierarchy");
        let program = inheritance_program(w.root);
        let mut net1 = w.network.clone();
        let snap_ns = snap.run(&mut net1, &program).expect("snap run").total_ns;
        let mut net2 = w.network.clone();
        let cm2_ns = cm2.run(&mut net2, &program).expect("cm2 run").total_ns;
        table.row(vec![
            n.to_string(),
            w.depth.to_string(),
            ms(snap_ns),
            ms(cm2_ns),
        ]);
        snap_times.push(snap_ns as f64);
        cm2_times.push(cm2_ns as f64);
    }

    // Slopes over the measured range (time growth per node-count
    // doubling, averaged).
    let growth = |t: &[f64]| (t.last().unwrap() / t.first().unwrap()).max(1.0);
    let span = (*sizes.last().unwrap() as f64 / sizes[0] as f64).log2();
    let snap_slope = growth(&snap_times).log2() / span;
    let cm2_slope = growth(&cm2_times).log2() / span;

    // Extrapolated crossover: SNAP grows ~linearly, CM-2 ~log — solve
    // snap(n) = cm2(n) with the measured end-point slopes.
    let crossover = {
        let (n0, snap0, cm20) = (
            *sizes.last().unwrap() as f64,
            *snap_times.last().unwrap(),
            *cm2_times.last().unwrap(),
        );
        let mut n = n0;
        let mut iterations = 0;
        while iterations < 64 {
            let snap_t = snap0 * (n / n0).powf(snap_slope.max(0.1));
            let cm2_t = cm20 * (n / n0).powf(cm2_slope.max(0.01));
            if snap_t >= cm2_t {
                break;
            }
            n *= 2.0;
            iterations += 1;
        }
        n
    };

    let snap_faster_here = snap_times.iter().zip(&cm2_times).all(|(s, c)| s < c);
    let mut out = ExperimentOutput::new("fig15", "Property inheritance: SNAP-1 vs CM-2");
    out.table(
        "root-to-leaf inheritance time vs knowledge-base size",
        table,
    );
    out.note(format!(
        "SNAP-1 faster over the measured range (paper: SNAP < 1 s, CM-2 < 10 s at 6.4K): {}",
        if snap_faster_here { "HOLDS" } else { "CHECK" }
    ));
    out.note(format!(
        "SNAP-1 slope steeper than CM-2 (paper: 'the slope of the increase is higher for \
         SNAP-1'): snap {} vs cm2 {} per doubling — {}",
        ratio(snap_slope),
        ratio(cm2_slope),
        if snap_slope > cm2_slope {
            "HOLDS"
        } else {
            "CHECK"
        }
    ));
    out.note(format!(
        "extrapolated crossover near {:.0} nodes (paper: 'the lines will cross when larger \
         knowledge bases are used')",
        crossover
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snap_wins_small_but_grows_faster() {
        let out = run(true);
        let holds = out.notes.iter().filter(|n| n.contains("HOLDS")).count();
        assert_eq!(holds, 2, "{:?}", out.notes);
    }
}
