//! Fig. 21 — components of parallel overhead.
//!
//! The four overhead categories behave differently as the array grows:
//! instruction **broadcast** is small and constant (dedicated global
//! bus); **message communication** grows slowly, ∝ log N (hypercube
//! hops); **barrier synchronization** is proportional to the PE count
//! with a small coefficient; and **result collection** is proportional
//! to the cluster count with the largest coefficient.

use crate::output::{ms, ratio, ExperimentOutput};
use crate::workloads::parse_batch;
use snap_core::{MachineConfig, OverheadBreakdown, Snap1};
use snap_kb::PartitionScheme;
use snap_stats::Table;

/// Runs the experiment.
///
/// # Panics
///
/// Panics if a run fails.
pub fn run(quick: bool) -> ExperimentOutput {
    let cluster_counts: Vec<usize> = if quick {
        vec![2, 8, 32]
    } else {
        vec![2, 4, 8, 16, 32]
    };
    let (kb_nodes, sentences) = if quick { (1_200, 2) } else { (8_000, 6) };

    let mut table = Table::new(vec![
        "clusters",
        "PEs",
        "broadcast ms",
        "mean hops/msg",
        "sync ms",
        "collect ms",
    ]);
    let mut rows: Vec<(usize, OverheadBreakdown)> = Vec::new();
    for &c in &cluster_counts {
        let mut config = MachineConfig::uniform(c, 3);
        config.partition = PartitionScheme::RoundRobin;
        let pes = config.pe_count();
        let machine = Snap1::builder().config(config).build();
        let results = parse_batch(kb_nodes, sentences, &machine, 0x0F160021).expect("parse batch");
        let mut total = OverheadBreakdown::default();
        let mut messages = 0u64;
        let mut hops = 0u64;
        for r in &results {
            total.broadcast_ns += r.report.overhead.broadcast_ns;
            total.communication_ns += r.report.overhead.communication_ns;
            total.sync_ns += r.report.overhead.sync_ns;
            total.collect_ns += r.report.overhead.collect_ns;
            messages += r.report.traffic.total_messages;
            hops += r.report.traffic.total_hops;
        }
        // The figure's communication overhead is the per-message routing
        // distance: it grows with the hop count, ∝ log N.
        let mean_hops = hops as f64 / messages.max(1) as f64;
        total.communication_ns = (mean_hops * 1e3) as u64;
        table.row(vec![
            c.to_string(),
            pes.to_string(),
            ms(total.broadcast_ns),
            format!("{mean_hops:.2}"),
            ms(total.sync_ns),
            ms(total.collect_ns),
        ]);
        rows.push((c, total));
    }

    let first = &rows.first().unwrap().1;
    let last = &rows.last().unwrap().1;
    let span = rows.last().unwrap().0 as f64 / rows.first().unwrap().0 as f64;
    let g = |a: u64, b: u64| b as f64 / a.max(1) as f64;

    let mut out = ExperimentOutput::new("fig21", "Components of parallel overhead");
    out.table("overhead per component vs array size", table);
    out.note(format!(
        "broadcast constant in cluster count (growth ×{} over ×{span:.0} clusters): {}",
        ratio(g(first.broadcast_ns, last.broadcast_ns)),
        if g(first.broadcast_ns, last.broadcast_ns) < 1.5 {
            "HOLDS"
        } else {
            "CHECK"
        }
    ));
    out.note(format!(
        "collect is the largest overhead at full scale: {}",
        if last.collect_ns >= last.sync_ns && last.collect_ns >= last.broadcast_ns {
            "HOLDS"
        } else {
            "CHECK"
        }
    ));
    out.note(format!(
        "sync grows with PEs (×{}) but with a small coefficient; per-message \
         hop count grows sublinearly (×{}, ∝ log N): {}",
        ratio(g(first.sync_ns, last.sync_ns)),
        ratio(g(first.communication_ns, last.communication_ns)),
        if g(first.communication_ns, last.communication_ns)
            < rows.last().unwrap().0 as f64 / rows.first().unwrap().0 as f64
        {
            "HOLDS"
        } else {
            "CHECK"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_shape_holds() {
        let out = run(true);
        let holds = out.notes.iter().filter(|n| n.contains("HOLDS")).count();
        assert!(holds >= 2, "{:?}", out.notes);
    }
}
