//! §IV / §II-C — β-parallelism statistics of the application programs.
//!
//! The paper analyses inter-propagation parallelism in two real
//! programs: the PASS speech-understanding program (β between 2.8 and
//! 6) and the DMSNAP NLU program (β between 2.3 and 5). We run the same
//! static analysis over the reproduction's analogues: the speech-lattice
//! program and the compiled memory-based-parser programs.

use crate::output::{ratio, ExperimentOutput};
use crate::workloads::speech_program;
use snap_isa::analyze_beta;
use snap_nlu::{DomainSpec, MemoryBasedParser, SentenceGenerator};
use snap_stats::Table;

/// Runs the analysis.
///
/// # Panics
///
/// Panics if knowledge-base construction fails.
pub fn run(quick: bool) -> ExperimentOutput {
    let kb_nodes = if quick { 1_000 } else { 6_000 };
    let kb = DomainSpec::sized(kb_nodes).build().expect("kb");

    // PASS analogue: a word lattice with 3–6 hypotheses per slot.
    let pass = speech_program(&kb, &[3, 5, 6, 4, 3, 6, 5]);
    let pass_stats = analyze_beta(&pass);

    // DMSNAP analogue: compiled parses of generated sentences.
    let parser = MemoryBasedParser::new(&kb);
    let mut generator = SentenceGenerator::new(&kb, 0xBE7A);
    let mut dm_min = usize::MAX;
    let mut dm_max = 0usize;
    let mut dm_avg = 0.0;
    let n_sentences = if quick { 3 } else { 10 };
    for _ in 0..n_sentences {
        let sentence = generator.generate(18);
        let plan = parser.compile(&parser.phrasal().parse(&sentence.words));
        let stats = analyze_beta(&plan.program);
        dm_min = dm_min.min(stats.beta_min());
        dm_max = dm_max.max(stats.beta_max());
        dm_avg += stats.beta_avg();
    }
    dm_avg /= n_sentences as f64;

    let mut table = Table::new(vec!["program", "β min", "β max", "β avg", "paper"]);
    table.row(vec![
        "PASS analogue (speech lattice)".into(),
        pass_stats.beta_min().to_string(),
        pass_stats.beta_max().to_string(),
        ratio(pass_stats.beta_avg()),
        "2.8 – 6".into(),
    ]);
    table.row(vec![
        "DMSNAP analogue (memory-based parser)".into(),
        dm_min.to_string(),
        dm_max.to_string(),
        ratio(dm_avg),
        "2.3 – 5".into(),
    ]);

    let mut out = ExperimentOutput::new("beta", "β-parallelism of the application programs");
    out.table("static overlap analysis", table);
    out.note(format!(
        "speech program has more inter-propagation parallelism than the NLU parser \
         (paper: PASS > DMSNAP): {}",
        if pass_stats.beta_max() >= dm_max {
            "HOLDS"
        } else {
            "CHECK"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_beats_dmsnap() {
        let out = run(true);
        assert!(out.notes[0].contains("HOLDS"), "{:?}", out.notes);
    }
}
