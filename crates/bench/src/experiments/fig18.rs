//! Fig. 18 — instruction time profile vs number of clusters.
//!
//! Propagation time falls nearly an order of magnitude when the array
//! grows from 1 to 16 clusters; the other instruction classes change
//! only to second order.

use crate::output::{ms, ratio, ExperimentOutput};
use crate::workloads::parse_batch;
use snap_core::{MachineConfig, RunReport, Snap1};
use snap_isa::InstrClass;
use snap_stats::Table;

fn batch_profile(clusters: usize, kb_nodes: usize, sentences: usize) -> RunReport {
    let mut config = MachineConfig::uniform(clusters, 3);
    config.partition = snap_kb::PartitionScheme::RoundRobin;
    let machine = Snap1::builder().config(config).build();
    let results = parse_batch(kb_nodes, sentences, &machine, 0x0F160018).expect("parse batch");
    let mut total = RunReport::default();
    for r in results {
        for (&class, &ns) in &r.report.class_time_ns {
            *total.class_time_ns.entry(class).or_insert(0) += ns;
        }
        for (&class, &n) in &r.report.class_counts {
            *total.class_counts.entry(class).or_insert(0) += n;
        }
    }
    total
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if a run fails.
pub fn run(quick: bool) -> ExperimentOutput {
    let cluster_counts: Vec<usize> = if quick {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let (kb_nodes, sentences) = if quick { (1_200, 2) } else { (9_000, 8) };

    let classes = [
        InstrClass::Propagate,
        InstrClass::Boolean,
        InstrClass::SetClear,
        InstrClass::Search,
        InstrClass::Collect,
    ];
    let mut table = Table::new(
        std::iter::once("clusters".to_string())
            .chain(classes.iter().map(|c| format!("{c} ms")))
            .collect::<Vec<String>>(),
    );
    let mut prop_times = Vec::new();
    for &c in &cluster_counts {
        let profile = batch_profile(c, kb_nodes, sentences);
        let mut row = vec![c.to_string()];
        for class in classes {
            row.push(ms(profile.time_of(class)));
        }
        table.row(row);
        prop_times.push(profile.time_of(InstrClass::Propagate) as f64);
    }

    let reduction = prop_times[0] / prop_times.last().unwrap();
    let mut out = ExperimentOutput::new("fig18", "Instruction profile vs cluster count");
    out.table("per-class time across the parse batch", table);
    out.note(format!(
        "propagation time reduced ×{} from 1 to {} clusters \
         (paper: nearly an order of magnitude from 1 to 16): {}",
        ratio(reduction),
        cluster_counts.last().unwrap(),
        if reduction > 3.0 { "HOLDS" } else { "CHECK" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_time_falls_with_clusters() {
        let out = run(true);
        assert!(out.notes[0].contains("HOLDS"), "{:?}", out.notes);
    }
}
