//! Fig. 19 — instruction time profile vs knowledge-base size.
//!
//! Propagation dominates at every knowledge-base size, and the relative
//! time spent on non-propagation instructions *decreases slightly* as
//! the knowledge base grows.

use crate::output::{ms, ratio, ExperimentOutput};
use crate::workloads::parse_batch;
use snap_core::{RunReport, Snap1};
use snap_isa::InstrClass;
use snap_stats::Table;

/// Runs the experiment.
///
/// # Panics
///
/// Panics if a run fails.
pub fn run(quick: bool) -> ExperimentOutput {
    let sizes: Vec<usize> = if quick {
        vec![2_500, 5_000]
    } else {
        vec![1_000, 2_000, 4_000, 8_000, 12_000]
    };
    let sentences = if quick { 2 } else { 8 };
    let machine = Snap1::new();

    let classes = [
        InstrClass::Propagate,
        InstrClass::Boolean,
        InstrClass::SetClear,
        InstrClass::Search,
        InstrClass::Collect,
    ];
    let mut table = Table::new(
        [
            "KB nodes",
            "propagate ms",
            "boolean ms",
            "set/clear ms",
            "search ms",
            "collect ms",
            "propagate share %",
        ]
        .map(str::to_string)
        .to_vec(),
    );
    let mut shares = Vec::new();
    let mut dominates = true;
    for &n in &sizes {
        let results = parse_batch(n, sentences, &machine, 0x0F160019).expect("parse batch");
        let mut total = RunReport::default();
        for r in results {
            for (&class, &ns) in &r.report.class_time_ns {
                *total.class_time_ns.entry(class).or_insert(0) += ns;
            }
        }
        let prop = total.time_of(InstrClass::Propagate);
        let all: u64 = total.class_time_ns.values().sum();
        let share = prop as f64 / all as f64 * 100.0;
        let mut row = vec![n.to_string()];
        for class in classes {
            row.push(ms(total.time_of(class)));
        }
        row.push(ratio(share));
        table.row(row);
        shares.push(share);
        dominates &= classes[1..].iter().all(|&c| total.time_of(c) <= prop);
    }

    let mut out = ExperimentOutput::new("fig19", "Instruction profile vs knowledge-base size");
    out.table("per-class time across the parse batch", table);
    out.note(format!(
        "propagation is the largest instruction class at every size: {}",
        if dominates { "HOLDS" } else { "CHECK" }
    ));
    let non_prop_shrinks = shares.last().unwrap() >= shares.first().unwrap();
    out.note(format!(
        "relative non-propagation time decreases as the KB grows (share {} → {}%): {}",
        ratio(*shares.first().unwrap()),
        ratio(*shares.last().unwrap()),
        if non_prop_shrinks { "HOLDS" } else { "CHECK" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_dominates() {
        let out = run(true);
        assert!(out.notes[0].contains("HOLDS"), "{:?}", out.notes);
    }
}
