//! Experiment implementations, one module per paper table/figure.

pub mod ablations;
pub mod beta;
pub mod fig06;
pub mod fig08;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod hotpath;
pub mod kernel;
pub mod projection;
pub mod scaling;
pub mod serve;
pub mod table1;
pub mod table4;

use crate::ExperimentOutput;

/// Runs every experiment in paper order.
pub fn run_all(quick: bool) -> Vec<ExperimentOutput> {
    vec![
        table1::run(quick),
        fig06::run(quick),
        fig08::run(quick),
        table4::run(quick),
        fig15::run(quick),
        fig16::run(quick),
        fig17::run(quick),
        fig18::run(quick),
        fig19::run(quick),
        fig20::run(quick),
        fig21::run(quick),
        beta::run(quick),
        projection::run(quick),
        ablations::run(quick),
    ]
}
