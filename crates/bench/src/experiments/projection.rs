//! Scaling projection to the million-concept knowledge base.
//!
//! The paper positions SNAP-1 as "a testbed for an architecture which is
//! being designed to handle a one-million concept knowledge base", and
//! predicts the SNAP/CM-2 inheritance curves cross "when larger
//! knowledge bases are used". This experiment measures both machines
//! over a doubling ladder, fits per-doubling growth factors, and
//! projects execution time to 10⁵–10⁷ concepts, reporting where the
//! projected crossover falls.

use crate::output::{ms, ratio, ExperimentOutput};
use snap_baseline::Cm2;
use snap_core::Snap1;
use snap_nlu::{hierarchy, inheritance_program};
use snap_stats::Table;

/// Runs the projection.
///
/// # Panics
///
/// Panics if a run fails.
pub fn run(quick: bool) -> ExperimentOutput {
    let sizes: Vec<usize> = if quick {
        vec![400, 800, 1_600]
    } else {
        vec![1_600, 3_200, 6_400, 12_800, 25_600]
    };
    let snap = Snap1::new();
    let cm2 = Cm2::new();

    let mut snap_times = Vec::new();
    let mut cm2_times = Vec::new();
    let mut measured = Table::new(vec!["nodes", "SNAP-1 ms", "CM-2 ms"]);
    for &n in &sizes {
        let w = hierarchy(n, 4).expect("hierarchy");
        let program = inheritance_program(w.root);
        let mut n1 = w.network.clone();
        let t_snap = snap.run(&mut n1, &program).expect("snap").total_ns as f64;
        let mut n2 = w.network.clone();
        let t_cm2 = cm2.run(&mut n2, &program).expect("cm2").total_ns as f64;
        measured.row(vec![n.to_string(), ms(t_snap as u64), ms(t_cm2 as u64)]);
        snap_times.push(t_snap);
        cm2_times.push(t_cm2);
    }

    // Per-doubling growth factor from a log-log least-squares fit.
    let slope = |times: &[f64]| -> f64 {
        let n = times.len() as f64;
        let xs: Vec<f64> = (0..times.len()).map(|i| i as f64).collect();
        let ys: Vec<f64> = times.iter().map(|t| t.log2()).collect();
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        cov / var
    };
    let snap_slope = slope(&snap_times);
    let cm2_slope = slope(&cm2_times);

    let base = *sizes.last().unwrap() as f64;
    let project =
        |t_end: f64, s: f64, target: f64| -> f64 { t_end * 2f64.powf(s * (target / base).log2()) };

    let mut projected = Table::new(vec![
        "concepts",
        "SNAP-1 (projected)",
        "CM-2 (projected)",
        "winner",
    ]);
    let mut crossover = f64::INFINITY;
    for &target in &[100_000.0, 1_000_000.0, 10_000_000.0, 100_000_000.0] {
        let ts = project(*snap_times.last().unwrap(), snap_slope, target);
        let tc = project(*cm2_times.last().unwrap(), cm2_slope, target);
        if ts >= tc && crossover.is_infinite() {
            crossover = target;
        }
        projected.row(vec![
            format!("{:.0e}", target),
            format!("{:.1} ms", ts / 1e6),
            format!("{:.1} ms", tc / 1e6),
            if ts < tc { "SNAP-1" } else { "CM-2" }.into(),
        ]);
    }

    let mut out = ExperimentOutput::new(
        "projection",
        "Projection to the million-concept knowledge base",
    );
    out.table("measured inheritance ladder", measured);
    out.table("projected execution times", projected);
    out.note(format!(
        "fitted growth per size-doubling: SNAP-1 ×{}, CM-2 ×{}",
        ratio(2f64.powf(snap_slope)),
        ratio(2f64.powf(cm2_slope)),
    ));
    out.note(format!(
        "SNAP-1 still wins at the paper's 1M-concept design target: {}",
        if project(*snap_times.last().unwrap(), snap_slope, 1_000_000.0)
            < project(*cm2_times.last().unwrap(), cm2_slope, 1_000_000.0)
        {
            "HOLDS"
        } else {
            "CHECK"
        }
    ));
    if crossover.is_finite() {
        out.note(format!(
            "projected crossover near {crossover:.0e} concepts — 'the lines will cross when \
             larger knowledge bases are used' (paper)"
        ));
    } else {
        out.note(
            "no crossover below 10⁸ concepts under this calibration; the paper's \
             qualitative prediction is directional"
                .to_string(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snap_wins_at_the_million_concept_target() {
        let out = run(true);
        assert!(
            out.notes.iter().any(|n| n.contains("HOLDS")),
            "{:?}",
            out.notes
        );
        assert_eq!(out.tables.len(), 2);
    }
}
