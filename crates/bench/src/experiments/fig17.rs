//! Fig. 17 — speedup under β-parallelism.
//!
//! Overlapping independent `PROPAGATE` statements raises utilization,
//! but the paper finds that increasing β above about 16 has little
//! further impact: the marker units saturate. Speedup here is the ratio
//! of running the β propagations **serialized** (a barrier after each)
//! to running them **overlapped** on the same machine.

use crate::output::{ratio, ExperimentOutput};
use crate::workloads::{beta_network, beta_program, CHAIN_REL};
use snap_core::Snap1;
use snap_isa::{Program, PropRule, StepFunc};
use snap_kb::{Color, Marker};
use snap_stats::Table;

/// The serialized variant: identical propagations with a barrier after
/// each, so no β-overlap is possible.
fn serialized_program(beta: usize) -> Program {
    let mut b = Program::builder();
    for i in 0..beta {
        b = b.search_color(Color(10 + i as u8), Marker::binary(i as u8), 0.0);
    }
    for i in 0..beta {
        b = b
            .propagate(
                Marker::binary(i as u8),
                Marker::complex(i as u8),
                PropRule::Star(CHAIN_REL),
                StepFunc::AddWeight,
            )
            .barrier();
    }
    b.collect_marker(Marker::complex(0)).build()
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if a run fails.
pub fn run(quick: bool) -> ExperimentOutput {
    let betas: Vec<usize> = if quick {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32, 48]
    };
    let (alpha_each, depth) = (6, 10);
    let machine = Snap1::new(); // 16 clusters / 72 PEs / 40 MUs

    let mut table = Table::new(vec!["β", "serialized ms", "overlapped ms", "speedup"]);
    let mut speedups = Vec::new();
    for &beta in &betas {
        let mut n1 = beta_network(beta, alpha_each, depth).expect("network");
        let serial = machine
            .run(&mut n1, &serialized_program(beta))
            .expect("run")
            .time_of(snap_isa::InstrClass::Propagate) as f64;
        let mut n2 = beta_network(beta, alpha_each, depth).expect("network");
        let overlapped = machine
            .run(&mut n2, &beta_program(beta))
            .expect("run")
            .time_of(snap_isa::InstrClass::Propagate) as f64;
        let speedup = serial / overlapped;
        table.row(vec![
            beta.to_string(),
            crate::output::ms(serial as u64),
            crate::output::ms(overlapped as u64),
            ratio(speedup),
        ]);
        speedups.push(speedup);
    }

    let mut out = ExperimentOutput::new("fig17", "Speedup vs β-parallelism");
    out.table(
        "overlap speedup vs number of overlapped propagations",
        table,
    );
    let rising = speedups.windows(2).all(|w| w[1] >= w[0] * 0.95);
    out.note(format!(
        "speedup grows with β: {}",
        if rising { "HOLDS" } else { "CHECK" }
    ));
    if !quick {
        // Saturation: gain from 16 → 48 is small relative to 1 → 16.
        let low_gain = speedups[4] / speedups[0];
        let high_gain = speedups[6] / speedups[4];
        out.note(format!(
            "β above 16 has little further impact (paper): 1→16 gain ×{:.2}, 16→48 gain ×{:.2} — {}",
            low_gain,
            high_gain,
            if high_gain < low_gain / 2.0 { "HOLDS" } else { "CHECK" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_speedup_rises_with_beta() {
        let out = run(true);
        assert!(out.notes[0].contains("HOLDS"), "{:?}", out.notes);
    }
}
