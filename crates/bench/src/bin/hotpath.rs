//! Wall-clock hot-path benchmark; writes `BENCH_hotpath.json` at the
//! repository root. Not part of `run_all` (the figure experiments are
//! deterministic simulated time; this one measures the current machine).

use snap_bench::experiments::hotpath;
use snap_bench::output::quick_requested;

fn main() {
    hotpath::run(quick_requested()).print();
}
