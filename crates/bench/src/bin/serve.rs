//! Query-serving throughput/latency benchmark; writes
//! `BENCH_serve.json` at the repository root. Not part of `run_all`
//! (the figure experiments are deterministic simulated time; this one
//! measures the current machine). Panics on oracle divergence or a
//! shed-accounting mismatch, which is what the CI serve-smoke job runs
//! in quick mode.

use snap_bench::experiments::serve;
use snap_bench::output::quick_requested;

fn main() {
    serve::run(quick_requested()).print();
}
