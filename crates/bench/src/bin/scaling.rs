//! Speedup-curve benchmark; writes `BENCH_scaling.json` at the
//! repository root. Not part of `run_all` (the figure experiments are
//! deterministic simulated time; this one also measures the current
//! machine). Any collect divergence between engines panics, so a clean
//! exit certifies result identity across the whole sweep.

use snap_bench::experiments::scaling;
use snap_bench::output::quick_requested;

fn main() {
    scaling::run(quick_requested()).print();
}
