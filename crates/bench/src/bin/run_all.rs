//! Regenerates every table and figure of the evaluation into `results/`.
//! Pass `--quick` for a reduced smoke run.

fn main() {
    let quick = snap_bench::output::quick_requested();
    let dir = snap_bench::output::results_dir();
    for out in snap_bench::experiments::run_all(quick) {
        out.print();
        out.save(&dir).expect("write results");
    }
    eprintln!("all experiment outputs written under {}", dir.display());
}
