//! Regenerates Fig. 17 of the paper. Pass `--quick` for a reduced run.

fn main() {
    let quick = snap_bench::output::quick_requested();
    let out = snap_bench::experiments::fig17::run(quick);
    out.print();
    let dir = snap_bench::output::results_dir();
    let files = out.save(&dir).expect("write results");
    eprintln!("wrote {} file(s) under {}", files.len(), dir.display());
}
