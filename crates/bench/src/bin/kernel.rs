//! Scalar-vs-bitset propagation kernel benchmark; writes
//! `BENCH_kernel.json` at the repository root. Not part of `run_all`
//! (the figure experiments are deterministic simulated time; this one
//! measures the current machine).

use snap_bench::experiments::kernel;
use snap_bench::output::quick_requested;

fn main() {
    kernel::run(quick_requested()).print();
}
