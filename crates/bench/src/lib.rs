//! # snap-bench — regenerating the SNAP-1 evaluation
//!
//! One experiment module per table and figure of Section IV, each
//! producing printable tables and TSV series. The binaries in
//! `src/bin/` are thin wrappers; `run_all` regenerates everything into
//! `results/`.
//!
//! | ID | Paper artifact | Module |
//! |----|----------------|--------|
//! | Fig. 6 | instruction frequency vs time, single PE | [`experiments::fig06`] |
//! | Fig. 8 | marker traffic per synchronization point | [`experiments::fig08`] |
//! | Table III/IV | MUC-4 sentence parse times | [`experiments::table4`] |
//! | Fig. 15 | inheritance: SNAP-1 vs CM-2 | [`experiments::fig15`] |
//! | Fig. 16 | speedup vs processors for α | [`experiments::fig16`] |
//! | Fig. 17 | speedup vs β | [`experiments::fig17`] |
//! | Fig. 18 | instruction profile vs cluster count | [`experiments::fig18`] |
//! | Fig. 19 | instruction profile vs KB size | [`experiments::fig19`] |
//! | Fig. 20 | propagation counts vs KB size | [`experiments::fig20`] |
//! | Fig. 21 | parallel overhead components | [`experiments::fig21`] |
//! | §IV text | β statistics of PASS/DMSNAP analogues | [`experiments::beta`] |
//! | ablations | tiered sync, partitioning, topology | [`experiments::ablations`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod output;
pub mod workloads;

pub use output::ExperimentOutput;
