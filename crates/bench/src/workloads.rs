//! Workload generators for the evaluation experiments.

use snap_core::{CoreError, Snap1};
use snap_isa::{CombineFunc, Program, PropRule, StepFunc};
use snap_kb::{Color, KbError, Marker, NetworkConfig, NodeId, RelationType, SemanticNetwork};
use snap_nlu::{DomainSpec, LinguisticKb, MemoryBasedParser, ParseResult, SentenceGenerator};

/// Relation used by the synthetic propagation workloads.
pub const CHAIN_REL: RelationType = RelationType(40);

/// Color of the source nodes in the α workload.
pub const SRC_COLOR: Color = Color(10);

/// Builds the α-parallelism workload: `alpha` independent chains of
/// `depth` links each, heads colored [`SRC_COLOR`]. A single `PROPAGATE`
/// then has exactly `alpha` simultaneous source activations.
///
/// # Errors
///
/// Returns [`KbError`] if the network capacity is exceeded.
pub fn alpha_network(alpha: usize, depth: usize) -> Result<SemanticNetwork, KbError> {
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    // Interleave chain nodes so every partition scheme spreads the
    // chains across clusters: node (level, chain) = level*alpha + chain.
    for level in 0..=depth {
        for _chain in 0..alpha {
            let color = if level == 0 { SRC_COLOR } else { Color(0) };
            net.add_node(color)?;
        }
    }
    for level in 0..depth {
        for chain in 0..alpha {
            let from = NodeId((level * alpha + chain) as u32);
            let to = NodeId(((level + 1) * alpha + chain) as u32);
            net.add_link(from, CHAIN_REL, 1.0, to)?;
        }
    }
    Ok(net)
}

/// The α workload program: one propagation from all `SRC_COLOR` nodes.
pub fn alpha_program() -> Program {
    Program::builder()
        .search_color(SRC_COLOR, Marker::binary(0), 0.0)
        .propagate(
            Marker::binary(0),
            Marker::complex(1),
            PropRule::Star(CHAIN_REL),
            StepFunc::AddWeight,
        )
        .collect_marker(Marker::complex(1))
        .build()
}

/// Builds the β-parallelism workload: `beta` disjoint chain groups,
/// group `i` headed by `alpha_each` sources of color `10 + i`.
///
/// # Errors
///
/// Returns [`KbError`] if the network capacity is exceeded.
///
/// # Panics
///
/// Panics if `beta` exceeds 64 (the marker register file).
pub fn beta_network(
    beta: usize,
    alpha_each: usize,
    depth: usize,
) -> Result<SemanticNetwork, KbError> {
    assert!(beta <= 64, "β exceeds the marker register file");
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    let chains = beta * alpha_each;
    for level in 0..=depth {
        for chain in 0..chains {
            let color = if level == 0 {
                Color(10 + (chain % beta) as u8)
            } else {
                Color(0)
            };
            net.add_node(color)?;
        }
    }
    for level in 0..depth {
        for chain in 0..chains {
            let from = NodeId((level * chains + chain) as u32);
            let to = NodeId(((level + 1) * chains + chain) as u32);
            net.add_link(from, CHAIN_REL, 1.0, to)?;
        }
    }
    Ok(net)
}

/// The β workload program: `beta` independent overlapped propagations.
pub fn beta_program(beta: usize) -> Program {
    let mut b = Program::builder();
    for i in 0..beta {
        b = b.search_color(Color(10 + i as u8), Marker::binary(i as u8), 0.0);
    }
    for i in 0..beta {
        b = b.propagate(
            Marker::binary(i as u8),
            Marker::complex(i as u8),
            PropRule::Star(CHAIN_REL),
            StepFunc::AddWeight,
        );
    }
    b.collect_marker(Marker::complex(0)).build()
}

/// A PASS-like speech-understanding program over a linguistic knowledge
/// base: a word lattice with several competing hypotheses per time slot.
/// Each slot's hypotheses propagate with independent markers (they
/// overlap), then the slots are merged — giving the inter-propagation
/// parallelism profile the paper reports for PASS (β between ~3 and 6).
pub fn speech_program(kb: &LinguisticKb, slots: &[usize]) -> Program {
    use snap_nlu::kb::rel;
    let nouns = kb.words(snap_nlu::PartOfSpeech::Noun);
    let mut b = Program::builder();
    let mut m = 0usize;
    let mut slot_markers = Vec::new();
    for (s, &hyps) in slots.iter().enumerate() {
        let mut markers = Vec::new();
        // Activate the competing word hypotheses of this slot.
        for h in 0..hyps {
            let word = &nouns[(s * 7 + h * 3) % nouns.len()];
            let node = kb.word(word).expect("generated vocabulary");
            b = b
                .clear_marker(Marker::binary(m as u8))
                .clear_marker(Marker::complex(m as u8))
                .search_node(node, Marker::binary(m as u8), (h as f32) * 0.1);
            markers.push(m);
            m += 1;
        }
        // All hypotheses of the slot propagate concurrently (β group).
        for &i in &markers {
            b = b.propagate(
                Marker::binary(i as u8),
                Marker::complex(i as u8),
                PropRule::Spread(rel::IS_A, rel::ELEM_OF),
                StepFunc::AddWeight,
            );
        }
        // Merge the slot's hypotheses (closes the group).
        let merged = Marker::complex((56 + s % 8) as u8);
        b = b.clear_marker(merged);
        let first = Marker::complex(markers[0] as u8);
        b = b.or_marker(first, first, merged, CombineFunc::Min);
        for &i in &markers[1..] {
            b = b.or_marker(merged, Marker::complex(i as u8), merged, CombineFunc::Min);
        }
        slot_markers.push(merged);
    }
    // Intersect adjacent slots (sequence constraints).
    let result = Marker::complex(55);
    b = b.clear_marker(result);
    if slot_markers.len() >= 2 {
        b = b.and_marker(slot_markers[0], slot_markers[1], result, CombineFunc::Add);
        for &mk in &slot_markers[2..] {
            b = b.and_marker(result, mk, result, CombineFunc::Add);
        }
    } else {
        b = b.or_marker(slot_markers[0], slot_markers[0], result, CombineFunc::Min);
    }
    b.collect_marker(result).build()
}

/// Parses `n_sentences` generated sentences on `machine` over a fresh
/// knowledge base of `kb_nodes` nodes; returns the per-sentence results.
///
/// # Errors
///
/// Returns [`CoreError`] if a compiled parse program fails.
pub fn parse_batch(
    kb_nodes: usize,
    n_sentences: usize,
    machine: &Snap1,
    seed: u64,
) -> Result<Vec<ParseResult>, CoreError> {
    let mut kb = DomainSpec::sized(kb_nodes).build().map_err(CoreError::Kb)?;
    let parser = MemoryBasedParser::new(&kb);
    let kb_ro = kb.clone();
    let mut generator = SentenceGenerator::new(&kb_ro, seed);
    let mut results = Vec::with_capacity(n_sentences);
    for i in 0..n_sentences {
        let sentence = generator.generate(8 + (i % 3) * 8);
        results.push(parser.parse(&mut kb.network, machine, &sentence)?);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_core::EngineKind;
    use snap_isa::analyze_beta;

    #[test]
    fn alpha_network_has_exact_sources() {
        let net = alpha_network(50, 4).unwrap();
        assert_eq!(net.node_count(), 50 * 5);
        assert_eq!(net.nodes_with_color(SRC_COLOR).count(), 50);
        let machine = Snap1::builder().clusters(4).build();
        let mut net = net;
        let report = machine.run(&mut net, &alpha_program()).unwrap();
        assert_eq!(report.alpha_per_propagate, vec![50]);
        assert_eq!(report.collects[0].len(), 50 * 4);
    }

    #[test]
    fn beta_program_overlaps_as_designed() {
        let program = beta_program(6);
        let stats = analyze_beta(&program);
        assert_eq!(stats.beta_max(), 6);
        let mut net = beta_network(6, 4, 3).unwrap();
        let machine = Snap1::builder().clusters(4).build();
        let report = machine.run(&mut net, &program).unwrap();
        assert_eq!(report.alpha_per_propagate.len(), 6);
        assert!(report.alpha_per_propagate.iter().all(|&a| a == 4));
    }

    #[test]
    fn speech_program_beta_profile_matches_pass() {
        let kb = DomainSpec::sized(2000).build().unwrap();
        let program = speech_program(&kb, &[3, 5, 6, 3, 4]);
        let stats = analyze_beta(&program);
        assert!(stats.beta_max() >= 5, "βmax {}", stats.beta_max());
        assert!(stats.beta_min() >= 1);
        assert!(stats.beta_avg() >= 2.5, "βavg {}", stats.beta_avg());
        // And it actually runs.
        let mut kb = kb;
        let machine = Snap1::builder().clusters(4).engine(EngineKind::Des).build();
        machine.run(&mut kb.network, &program).unwrap();
    }

    #[test]
    fn parse_batch_runs() {
        let machine = Snap1::builder().clusters(2).build();
        let results = parse_batch(1000, 3, &machine, 5).unwrap();
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.mb_time_ns > 0));
    }
}
