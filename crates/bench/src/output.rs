//! Experiment output container: print to stdout, save to `results/`.

use snap_stats::Table;
use std::fs;
use std::path::{Path, PathBuf};

/// The rendered output of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Short identifier, e.g. `fig16`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Captioned tables, in presentation order.
    pub tables: Vec<(String, Table)>,
    /// Free-form notes (shape checks, paper comparison).
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Creates an empty output.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        ExperimentOutput {
            id,
            title: title.into(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a captioned table.
    pub fn table(&mut self, caption: impl Into<String>, table: Table) -> &mut Self {
        self.tables.push((caption.into(), table));
        self
    }

    /// Adds a note line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Surfaces a run's fault-injection activity as a note. Fault-free
    /// runs (the normal benchmark case) add nothing; any injected or
    /// recovered fault shows up in the rendered output so a perturbed
    /// measurement is never mistaken for a clean one.
    pub fn note_faults(&mut self, report: &snap_core::RunReport) -> &mut Self {
        if !report.faults.is_empty() {
            self.note(format!("faults: {}", report.faults));
        }
        self
    }

    /// Surfaces a traced run's per-phase counters as notes. Untraced
    /// runs — the normal benchmark case, and every build without the
    /// `obs` cargo feature — add nothing, so enabling tracing on a
    /// machine is safe in measurement code: the summary only rides
    /// along when something was actually recorded.
    pub fn note_trace(&mut self, report: &snap_core::RunReport) -> &mut Self {
        if !report.trace.is_empty() {
            for line in report.trace.summary().lines() {
                self.note(format!("trace: {line}"));
            }
        }
        self
    }

    /// Renders everything as text.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        for (caption, table) in &self.tables {
            out.push_str(&format!("\n-- {caption} --\n"));
            out.push_str(&table.render());
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("note: {n}\n"));
            }
        }
        out
    }

    /// Prints the rendered output to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Saves the tables as TSV plus the rendered text under `dir`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the files.
    pub fn save(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let txt = dir.join(format!("{}.txt", self.id));
        fs::write(&txt, self.render())?;
        written.push(txt);
        for (i, (_, table)) in self.tables.iter().enumerate() {
            let path = if self.tables.len() == 1 {
                dir.join(format!("{}.tsv", self.id))
            } else {
                dir.join(format!("{}_{}.tsv", self.id, i))
            };
            fs::write(&path, table.to_tsv())?;
            written.push(path);
        }
        Ok(written)
    }
}

/// The default results directory: `results/` at the workspace root.
pub fn results_dir() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    Path::new(&manifest)
        .join("../../results")
        .components()
        .collect()
}

/// `true` if the process was invoked with `--quick` (reduced problem
/// sizes for smoke runs).
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The cargo profile the harness was built under, stamped by the build
/// script — overridable with `SNAP_BENCH_PROFILE` because custom
/// profiles (`tuned`) surface to build scripts as the profile they
/// inherit (`release`).
pub fn build_profile() -> String {
    std::env::var("SNAP_BENCH_PROFILE").unwrap_or_else(|_| env!("SNAP_BUILD_PROFILE").to_string())
}

/// The `rustc --version` that compiled the harness.
pub fn rustc_version() -> &'static str {
    env!("SNAP_RUSTC_VERSION")
}

/// Formats nanoseconds as milliseconds with two decimals.
pub fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Formats a ratio with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_tables_and_notes() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into()]);
        let mut out = ExperimentOutput::new("figX", "demo");
        out.table("caption", t).note("shape holds");
        let text = out.render();
        assert!(text.contains("figX"));
        assert!(text.contains("caption"));
        assert!(text.contains("note: shape holds"));
    }

    #[test]
    fn save_writes_tsv_and_txt() {
        let dir = std::env::temp_dir().join(format!("snapbench-{}", std::process::id()));
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let mut out = ExperimentOutput::new("figY", "demo");
        out.table("c", t);
        let files = out.save(&dir).unwrap();
        assert_eq!(files.len(), 2);
        assert!(files[1].to_string_lossy().ends_with("figY.tsv"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(1_500_000), "1.50");
        assert_eq!(ratio(2.0), "2.00");
    }
}
