//! Stamps build provenance into the bench binary: every BENCH_*.json
//! row records the rustc that compiled the harness and the cargo
//! profile it was built under, so two baselines are only ever compared
//! when they came from the same toolchain and optimization level.

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=SNAP_RUSTC_VERSION={version}");
    // Custom profiles surface as the profile they inherit from
    // ("release" for `tuned`); SNAP_BENCH_PROFILE overrides at run time.
    let profile = std::env::var("PROFILE").unwrap_or_else(|_| "unknown".into());
    println!("cargo:rustc-env=SNAP_BUILD_PROFILE={profile}");
    println!("cargo:rerun-if-changed=build.rs");
    println!("cargo:rerun-if-env-changed=RUSTC");
}
