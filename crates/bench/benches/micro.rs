//! Criterion micro-benchmarks of the substrate primitives: the
//! operations the cost model charges for, so the simulator's inner
//! loops themselves stay fast.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use snap_kb::{
    Color, Marker, MarkerState, NetworkConfig, NodeId, Partition, PartitionScheme, RelationType,
    SemanticNetwork, StatusRow,
};
use snap_net::HypercubeTopology;
use snap_sync::TieredSyncModel;

fn chain_network(n: usize) -> SemanticNetwork {
    let mut net = SemanticNetwork::new(NetworkConfig::default());
    for _ in 0..n {
        net.add_node(Color(0)).unwrap();
    }
    for i in 0..n - 1 {
        net.add_link(NodeId(i as u32), RelationType(1), 1.0, NodeId(i as u32 + 1))
            .unwrap();
    }
    net
}

fn bench_status_words(c: &mut Criterion) {
    let mut group = c.benchmark_group("marker_status");
    for &nodes in &[1_024usize, 32_768] {
        group.bench_with_input(BenchmarkId::new("and", nodes), &nodes, |b, &n| {
            let mut a = StatusRow::new(n);
            let mut x = StatusRow::new(n);
            for i in (0..n).step_by(3) {
                a.set(NodeId(i as u32));
            }
            for i in (0..n).step_by(5) {
                x.set(NodeId(i as u32));
            }
            let mut out = StatusRow::new(n);
            b.iter(|| out.assign_and(&a, &x));
        });
        group.bench_with_input(BenchmarkId::new("iter_set_bits", nodes), &nodes, |b, &n| {
            let mut a = StatusRow::new(n);
            for i in (0..n).step_by(7) {
                a.set(NodeId(i as u32));
            }
            b.iter(|| a.iter().count());
        });
    }
    group.finish();
}

fn bench_relation_search(c: &mut Criterion) {
    let net = chain_network(4_096);
    c.bench_function("relation_table/links_by", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..4_095u32 {
                total += net.links_by(NodeId(i), RelationType(1)).count();
            }
            total
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let topo = HypercubeTopology::snap1();
    c.bench_function("hypercube/route_all_pairs", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for s in 0..32u8 {
                for d in 0..32u8 {
                    hops += topo
                        .route(snap_kb::ClusterId(s), snap_kb::ClusterId(d))
                        .len();
                }
            }
            hops
        })
    });
}

fn bench_partition(c: &mut Criterion) {
    let net = chain_network(8_192);
    let mut group = c.benchmark_group("partition");
    for scheme in [
        PartitionScheme::Sequential,
        PartitionScheme::RoundRobin,
        PartitionScheme::Semantic,
    ] {
        group.bench_function(format!("{scheme:?}"), |b| {
            b.iter(|| Partition::build(&net, 16, scheme))
        });
    }
    group.finish();
}

fn bench_marker_state(c: &mut Criterion) {
    c.bench_function("marker_state/set_value_1k", |b| {
        b.iter_batched(
            || MarkerState::new(1_024, 64, 64),
            |mut st| {
                for i in 0..1_024u32 {
                    st.set_value(
                        Marker::complex(3),
                        NodeId(i),
                        snap_kb::MarkerValue {
                            value: i as f32,
                            origin: NodeId(0),
                        },
                    )
                    .unwrap();
                }
                st
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_sync(c: &mut Criterion) {
    c.bench_function("tiered_sync/create_consume_check", |b| {
        let mut sync = TieredSyncModel::new(72);
        b.iter(|| {
            for level in 0..16u8 {
                sync.created(level);
            }
            for level in 0..16u8 {
                sync.consumed(level);
            }
            sync.is_complete()
        })
    });
}

criterion_group!(
    micro,
    bench_status_words,
    bench_relation_search,
    bench_routing,
    bench_partition,
    bench_marker_state,
    bench_sync
);
criterion_main!(micro);
