//! Criterion end-to-end benchmarks: whole-machine runs of the paper's
//! workloads (simulator wall-clock, not simulated time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snap_baseline::Cm2;
use snap_bench::workloads::{alpha_network, alpha_program};
use snap_core::{EngineKind, Snap1};
use snap_nlu::{hierarchy, inheritance_program, DomainSpec, MemoryBasedParser, SentenceGenerator};

fn bench_parse(c: &mut Criterion) {
    let kb = DomainSpec::sized(3_000).build().unwrap();
    let parser = MemoryBasedParser::new(&kb);
    let mut generator = SentenceGenerator::new(&kb, 42);
    let sentence = generator.generate(18);
    let machine = Snap1::builder().clusters(8).build();
    c.bench_function("parse/18_words_3k_kb_des", |b| {
        b.iter(|| {
            let mut net = kb.network.clone();
            parser.parse(&mut net, &machine, &sentence).unwrap()
        })
    });
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_walk_256");
    let program = alpha_program();
    for engine in [
        EngineKind::Sequential,
        EngineKind::Des,
        EngineKind::Threaded,
    ] {
        group.bench_with_input(
            BenchmarkId::new("engine", format!("{engine:?}")),
            &engine,
            |b, &engine| {
                let machine = Snap1::builder().clusters(8).engine(engine).build();
                b.iter(|| {
                    let mut net = alpha_network(256, 8).unwrap();
                    machine.run(&mut net, &program).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_inheritance(c: &mut Criterion) {
    let workload = hierarchy(1_600, 4).unwrap();
    let program = inheritance_program(workload.root);
    let snap = Snap1::new();
    let cm2 = Cm2::new();
    let mut group = c.benchmark_group("inheritance_1600");
    group.bench_function("snap1_des", |b| {
        b.iter(|| {
            let mut net = workload.network.clone();
            snap.run(&mut net, &program).unwrap()
        })
    });
    group.bench_function("cm2", |b| {
        b.iter(|| {
            let mut net = workload.network.clone();
            cm2.run(&mut net, &program).unwrap()
        })
    });
    group.finish();
}

fn bench_kb_build(c: &mut Criterion) {
    c.bench_function("domain_kb/build_3k", |b| {
        b.iter(|| DomainSpec::sized(3_000).build().unwrap())
    });
}

criterion_group! {
    name = machine;
    config = Criterion::default().sample_size(10);
    targets = bench_parse, bench_engines, bench_inheritance, bench_kb_build
}
criterion_main!(machine);
