//! # snap-baseline — comparator engines for the SNAP-1 evaluation
//!
//! The paper's Fig. 15 compares SNAP-1 against marker propagation on the
//! CM-2. [`Cm2`] reproduces that comparator: a lockstep SIMD machine with
//! 65 536 single-bit PEs whose controller must iterate with the array on
//! every propagation step. It shares the instruction semantics of
//! [`snap_core`], so its logical results are identical and only its
//! timing differs.
//!
//! (The uniprocessor baseline is [`snap_core::EngineKind::Sequential`].)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cm2;

pub use cm2::{Cm2, Cm2Cost, Cm2Report};
