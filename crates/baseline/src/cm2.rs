//! A CM-2-class SIMD comparator engine.
//!
//! The paper compares SNAP-1 against marker propagation on the
//! Connection Machine CM-2 (Fig. 15): the CM-2's 65 536 single-bit PEs
//! give it essentially flat scaling with knowledge-base size, but every
//! propagation step on the critical path requires iterating between the
//! front-end controller and the array, so its constant factor is large.
//! SNAP-1's MIMD capability performs *selective* propagation without the
//! per-step round-trip, but with only 32 clusters its execution time
//! grows faster as the knowledge base grows — the lines cross for large
//! enough knowledge bases.
//!
//! This engine executes the same instruction semantics as the SNAP
//! engines (via [`snap_core::exec`] and [`snap_core::propagate`]) under a
//! lockstep wave schedule with a CM-2-style cost model.

use serde::{Deserialize, Serialize};
use snap_core::exec::exec_single;
use snap_core::propagate::{expand, PropTask, VisitedMap};
use snap_core::{CoreError, Region, RegionMap, RunReport};
use snap_isa::{InstrClass, Instruction, Program, PropRule, StepFunc};
use snap_kb::{ClusterId, Marker, PartitionScheme, SemanticNetwork};
use snap_mem::SimTime;

/// Cost model of the SIMD comparator, nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cm2Cost {
    /// Single-bit processing elements in the array (65 536 on a full
    /// CM-2).
    pub pes: usize,
    /// Front-end ↔ array round-trip paid on **every** propagation wave
    /// (the critical-path iteration the paper highlights).
    pub roundtrip_ns: SimTime,
    /// Data-parallel slice time: processing one virtual-processor slice
    /// (all PEs once) for one wave or global operation.
    pub slice_ns: SimTime,
    /// Front-end cost to issue any instruction.
    pub issue_ns: SimTime,
    /// Moving one collected item back to the front end.
    pub collect_per_item_ns: SimTime,
}

impl Cm2Cost {
    /// Default calibration: large per-wave round-trip, cheap slices.
    pub fn cm2() -> Self {
        Cm2Cost {
            pes: 65_536,
            roundtrip_ns: 5_000_000, // 5 ms per controller-array iteration
            slice_ns: 300_000,
            issue_ns: 1_000_000,
            collect_per_item_ns: 20_000,
        }
    }
}

impl Default for Cm2Cost {
    fn default() -> Self {
        Self::cm2()
    }
}

/// The CM-2-style lockstep SIMD machine.
///
/// # Examples
///
/// ```
/// use snap_baseline::Cm2;
/// use snap_isa::{Program, PropRule, StepFunc};
/// use snap_kb::{Color, Marker, NetworkConfig, RelationType, SemanticNetwork};
///
/// let mut net = SemanticNetwork::new(NetworkConfig::default());
/// let a = net.add_node(Color(1))?;
/// let b = net.add_node(Color(2))?;
/// net.add_link(a, RelationType(0), 1.0, b)?;
/// let program = Program::builder()
///     .search_color(Color(1), Marker::binary(0), 0.0)
///     .propagate(Marker::binary(0), Marker::binary(1),
///                PropRule::Star(RelationType(0)), StepFunc::Identity)
///     .collect_marker(Marker::binary(1))
///     .build();
/// let report = Cm2::new().run(&mut net, &program)?;
/// assert_eq!(report.collects[0].node_ids(), vec![b]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cm2 {
    cost: Cm2Cost,
}

impl Cm2 {
    /// A CM-2 with the default calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A CM-2 with a custom cost model.
    pub fn with_cost(cost: Cm2Cost) -> Self {
        Cm2 { cost }
    }

    /// The cost model in use.
    pub fn cost(&self) -> &Cm2Cost {
        &self.cost
    }

    /// Executes `program`, returning the measured report. Logical
    /// results match the SNAP engines exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for the same program errors as the SNAP
    /// engines.
    pub fn run(
        &self,
        network: &mut SemanticNetwork,
        program: &Program,
    ) -> Result<RunReport, CoreError> {
        let map = RegionMap::build(network, 1, PartitionScheme::Sequential);
        let mut region = Region::new(ClusterId(0), map, network);
        let mut report = RunReport::default();
        let mut now: SimTime = 0;
        // Virtual-processor ratio: slices needed to cover the network.
        let vp = network.node_count().div_ceil(self.cost.pes).max(1) as SimTime;

        for instr in program {
            let start = now;
            match instr {
                Instruction::Propagate {
                    source,
                    target,
                    rule,
                    func,
                } => {
                    now += self.cost.issue_ns;
                    now += self.run_propagate(
                        network,
                        &mut region,
                        *source,
                        *target,
                        rule,
                        *func,
                        vp,
                        &mut report,
                    )?;
                    report.barriers += 1;
                    report.traffic.messages_per_sync.push(0);
                }
                other => {
                    let regions = std::slice::from_mut(&mut region);
                    let out = exec_single(other, network, regions)?;
                    now += self.cost.issue_ns;
                    now += match other.class() {
                        InstrClass::Collect => {
                            let items = out.work[0].items as SimTime;
                            let ns = self.cost.roundtrip_ns + items * self.cost.collect_per_item_ns;
                            report.overhead.collect_ns += ns;
                            ns
                        }
                        InstrClass::Maintenance => {
                            self.cost.issue_ns * out.maintenance_ops.max(1) as SimTime
                        }
                        // Word-parallel over the whole array in vp slices.
                        _ => self.cost.slice_ns * vp,
                    };
                    if let Some(c) = out.collect {
                        report.collects.push(c);
                    }
                }
            }
            report.record(instr.class(), now - start);
        }
        report.total_ns = now;
        Ok(report)
    }

    /// Lockstep wave propagation: all active nodes expand data-parallel
    /// in one slice pass, then the front end intervenes before the next
    /// wave.
    #[allow(clippy::too_many_arguments)]
    fn run_propagate(
        &self,
        network: &SemanticNetwork,
        region: &mut Region,
        source: Marker,
        target: Marker,
        rule: &PropRule,
        func: StepFunc,
        vp: SimTime,
        report: &mut RunReport,
    ) -> Result<SimTime, CoreError> {
        let compiled = rule.compile();
        let mut visited = VisitedMap::new();
        let mut wave: Vec<PropTask> = Vec::new();
        let sources = region.active_nodes(source);
        report.alpha_per_propagate.push(sources.len() as u64);
        for node in sources {
            let value = region.source_value(source, node);
            if visited.should_expand(0, 0, node, value, node) {
                wave.push(PropTask {
                    prop: 0,
                    node,
                    state: 0,
                    value,
                    origin: node,
                    level: 0,
                });
            }
        }

        let mut ns: SimTime = 0;
        while !wave.is_empty() {
            // One data-parallel wave: constant in the number of active
            // nodes (up to the VP ratio), plus the round-trip.
            ns += self.cost.roundtrip_ns + self.cost.slice_ns * vp;
            report.overhead.sync_ns += self.cost.roundtrip_ns;
            let mut next = Vec::new();
            for task in wave.drain(..) {
                let exp = expand(network, &compiled, func, &task);
                report.expansions += 1;
                if task.level >= 48 {
                    continue;
                }
                for arrival in exp.arrivals {
                    region.arrive(target, arrival.node, arrival.value, task.origin)?;
                    report.traffic.local_activations += 1;
                    let level = task.level + 1;
                    report.max_propagation_depth = report.max_propagation_depth.max(level);
                    if visited.should_expand(
                        0,
                        arrival.state,
                        arrival.node,
                        arrival.value,
                        task.origin,
                    ) {
                        next.push(PropTask {
                            prop: 0,
                            node: arrival.node,
                            state: arrival.state,
                            value: arrival.value,
                            origin: task.origin,
                            level,
                        });
                    }
                }
            }
            wave = next;
        }
        Ok(ns)
    }
}

/// Re-export for result comparison in tests and benches.
pub use snap_core::RunReport as Cm2Report;

#[cfg(test)]
mod tests {
    use super::*;
    use snap_core::{EngineKind, Snap1};
    use snap_kb::{Color, NetworkConfig, NodeId, RelationType};

    fn chain(n: usize) -> SemanticNetwork {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        for i in 0..n {
            net.add_node(Color((i == 0) as u8)).unwrap();
        }
        for i in 0..n - 1 {
            net.add_link(NodeId(i as u32), RelationType(1), 1.0, NodeId(i as u32 + 1))
                .unwrap();
        }
        net
    }

    fn walk_program() -> Program {
        Program::builder()
            .search_color(Color(1), Marker::binary(0), 0.0)
            .propagate(
                Marker::binary(0),
                Marker::complex(1),
                PropRule::Star(RelationType(1)),
                StepFunc::AddWeight,
            )
            .collect_marker(Marker::complex(1))
            .build()
    }

    #[test]
    fn cm2_matches_snap_results() {
        let program = walk_program();
        let mut n1 = chain(40);
        let snap = Snap1::builder()
            .clusters(4)
            .engine(EngineKind::Des)
            .build()
            .run(&mut n1, &program)
            .unwrap();
        let mut n2 = chain(40);
        let cm2 = Cm2::new().run(&mut n2, &program).unwrap();
        assert_eq!(snap.collects, cm2.collects);
    }

    #[test]
    fn per_wave_roundtrip_dominates_cm2_time() {
        let program = walk_program();
        let mut net = chain(30);
        let report = Cm2::new().run(&mut net, &program).unwrap();
        // 29 waves of propagation → at least 29 round-trips.
        assert!(report.total_ns >= 29 * Cm2Cost::cm2().roundtrip_ns);
        assert_eq!(report.max_propagation_depth, 29);
    }

    #[test]
    fn cm2_is_flatter_than_snap_in_kb_size() {
        // Same path depth, growing total nodes: pad the network with
        // disconnected nodes. CM-2 time barely moves; SNAP's per-cluster
        // word operations grow.
        let depth = 10usize;
        let mut times_cm2 = Vec::new();
        let mut times_snap = Vec::new();
        for pad in [0usize, 20_000] {
            let mut net = chain(depth);
            for _ in 0..pad {
                net.add_node(Color(3)).unwrap();
            }
            let program = walk_program();
            let mut n1 = net.clone();
            times_cm2.push(Cm2::new().run(&mut n1, &program).unwrap().total_ns as f64);
            let mut n2 = net;
            times_snap.push(
                Snap1::builder()
                    .clusters(4)
                    .build()
                    .run(&mut n2, &program)
                    .unwrap()
                    .total_ns as f64,
            );
        }
        let cm2_growth = times_cm2[1] / times_cm2[0];
        let snap_growth = times_snap[1] / times_snap[0];
        assert!(
            snap_growth > cm2_growth,
            "SNAP grows faster with KB size: snap {snap_growth:.2}× vs cm2 {cm2_growth:.2}×"
        );
    }
}
