//! # snap-fault — deterministic fault injection for the SNAP-1 reproduction
//!
//! The SNAP-1 prototype was a physical machine: boards lost clock edges,
//! hypercube links dropped marker packets, and processing elements
//! wedged mid-propagation. This crate models those failure modes as a
//! seeded, replayable [`FaultPlan`] plus the resilience primitives the
//! engines use to survive them:
//!
//! * [`FaultPlan`] — a declarative schedule of message drops,
//!   duplicates, delays, corruptions, PE stalls, link outages, arbiter
//!   starvation, and worker panics. Same seed + same plan ⇒ the same
//!   injected schedule wherever decisions are driven by deterministic
//!   counters (the discrete-event engine guarantees this end to end).
//! * [`FaultInjector`] — the runtime half: pure seeded decisions keyed
//!   on `(site, counter)` so callers control determinism, with atomic
//!   counters feeding a [`FaultReport`].
//! * [`Envelope`] — checksummed, sequence-numbered wrapper for marker
//!   traffic, the unit of the threaded engine's ack/retry protocol;
//!   with the [`Fingerprint`] and [`Corruptible`] traits payloads
//!   implement to be sealable and corruptible.
//! * [`DedupTable`] — duplicate suppression keyed on `(sender, seq)`.
//! * [`RetryPolicy`] — bounded exponential backoff for unacked sends.
//! * [`FaultReport`] — injected/detected/recovered tallies surfaced in
//!   `RunReport` and the bench binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod envelope;
mod inject;
mod plan;
mod report;

pub use envelope::{mix64, Corruptible, DedupTable, Envelope, Fingerprint};
pub use inject::{FaultInjector, RetryPolicy, SendFate};
pub use plan::{FaultPlan, PanicSpec};
pub use report::FaultReport;
