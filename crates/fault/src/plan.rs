//! Declarative, seeded fault schedules.

use serde::{Deserialize, Serialize};

/// A one-shot worker-thread panic: cluster `cluster`'s worker dies the
/// first time it starts executing program step `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PanicSpec {
    /// Cluster whose worker thread panics.
    pub cluster: u8,
    /// Zero-based program step at which the panic fires.
    pub step: usize,
}

/// A deterministic, seeded schedule of injected faults.
///
/// Probabilities are evaluated by [`FaultInjector`](crate::FaultInjector)
/// against `(seed, site, counter)` hashes, never a live RNG: replaying
/// the same plan against the same deterministic counter streams yields
/// the same injected schedule. The discrete-event engine drives every
/// decision from its event sequence, so there the guarantee is absolute;
/// the threaded engine's counters are per-link send sequences, so its
/// schedule is deterministic per link but interleaving still varies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// Probability an off-cluster marker message is dropped in flight.
    pub drop_prob: f64,
    /// Probability an off-cluster marker message is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a message is held back before delivery.
    pub delay_prob: f64,
    /// Upper bound on an injected delivery delay, in simulated ns.
    pub delay_ns: u64,
    /// Probability a message payload is corrupted in flight (checksums
    /// still reflect the original payload, so receivers can detect it).
    pub corrupt_prob: f64,
    /// Probability a scheduled PE task stalls before executing.
    pub stall_prob: f64,
    /// Length of an injected PE stall, in simulated ns.
    pub stall_ns: u64,
    /// Probability an arbiter grant is starved (held back) before issue.
    pub starvation_prob: f64,
    /// Length of an injected arbiter starvation, in ns.
    pub starvation_ns: u64,
    /// Hypercube links forced down for the whole run; sends over a down
    /// link are dropped every time (and counted as drops).
    pub down_links: Vec<(u8, u8)>,
    /// At most one scheduled worker-thread panic.
    pub panic_worker: Option<PanicSpec>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled; chain the
    /// builder methods to arm specific fault classes.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            delay_ns: 0,
            corrupt_prob: 0.0,
            stall_prob: 0.0,
            stall_ns: 0,
            starvation_prob: 0.0,
            starvation_ns: 0,
            down_links: Vec::new(),
            panic_worker: None,
        }
    }

    /// Arms message drops with probability `prob`.
    #[must_use]
    pub fn drops(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Arms message duplication with probability `prob`.
    #[must_use]
    pub fn duplicates(mut self, prob: f64) -> Self {
        self.duplicate_prob = prob;
        self
    }

    /// Arms message delays: probability `prob`, up to `max_ns` each.
    #[must_use]
    pub fn delays(mut self, prob: f64, max_ns: u64) -> Self {
        self.delay_prob = prob;
        self.delay_ns = max_ns;
        self
    }

    /// Arms payload corruption with probability `prob`.
    #[must_use]
    pub fn corruptions(mut self, prob: f64) -> Self {
        self.corrupt_prob = prob;
        self
    }

    /// Arms PE stalls: probability `prob`, `ns` each.
    #[must_use]
    pub fn stalls(mut self, prob: f64, ns: u64) -> Self {
        self.stall_prob = prob;
        self.stall_ns = ns;
        self
    }

    /// Arms arbiter starvation: probability `prob`, `ns` each.
    #[must_use]
    pub fn starvation(mut self, prob: f64, ns: u64) -> Self {
        self.starvation_prob = prob;
        self.starvation_ns = ns;
        self
    }

    /// Forces the link between clusters `a` and `b` down (both
    /// directions) for the whole run.
    #[must_use]
    pub fn link_down(mut self, a: u8, b: u8) -> Self {
        self.down_links.push((a, b));
        self
    }

    /// Schedules cluster `cluster`'s worker thread to panic at program
    /// step `step`.
    #[must_use]
    pub fn worker_panic(mut self, cluster: u8, step: usize) -> Self {
        self.panic_worker = Some(PanicSpec { cluster, step });
        self
    }

    /// `true` when no fault class is armed.
    pub fn is_benign(&self) -> bool {
        self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.delay_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.stall_prob == 0.0
            && self.starvation_prob == 0.0
            && self.down_links.is_empty()
            && self.panic_worker.is_none()
    }

    /// Checks every probability lies in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("delay_prob", self.delay_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("stall_prob", self.stall_prob),
            ("starvation_prob", self.starvation_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!("{name} = {p} is outside [0, 1]"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_arms_each_class() {
        let plan = FaultPlan::seeded(7)
            .drops(0.1)
            .duplicates(0.2)
            .delays(0.3, 500)
            .corruptions(0.05)
            .stalls(0.01, 1_000)
            .starvation(0.02, 2_000)
            .link_down(1, 5)
            .worker_panic(3, 0);
        assert!(!plan.is_benign());
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.down_links, vec![(1, 5)]);
        assert_eq!(
            plan.panic_worker,
            Some(PanicSpec {
                cluster: 3,
                step: 0
            })
        );
        plan.validate().unwrap();
    }

    #[test]
    fn empty_plan_is_benign_and_valid() {
        let plan = FaultPlan::seeded(0);
        assert!(plan.is_benign());
        plan.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_probability() {
        assert!(FaultPlan::seeded(1).drops(1.5).validate().is_err());
        assert!(FaultPlan::seeded(1).corruptions(-0.1).validate().is_err());
    }
}
