//! Runtime injection decisions and resilience policies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::envelope::mix64;
use crate::plan::FaultPlan;
use crate::report::{FaultReport, FaultStats};

// Per-class salts keep the decision streams independent: a message that
// would be dropped at one probability is not automatically the one that
// gets duplicated when drops are disabled.
const SITE_DROP: u64 = 0x01;
const SITE_DUPLICATE: u64 = 0x02;
const SITE_DELAY: u64 = 0x03;
const SITE_CORRUPT: u64 = 0x04;
const SITE_STALL: u64 = 0x05;
const SITE_STARVE: u64 = 0x06;

/// What the injector decided to do with one off-cluster message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SendFate {
    /// Message vanishes in flight (never delivered on first attempt).
    pub dropped: bool,
    /// Message is delivered a second time.
    pub duplicated: bool,
    /// Message payload is damaged in flight (checksum mismatch at the
    /// receiver).
    pub corrupted: bool,
    /// Extra in-flight latency in simulated ns (0 = none).
    pub delay_ns: u64,
    /// Decision hash, usable as a corruption salt.
    pub salt: u64,
}

impl SendFate {
    /// `true` when the message passes through untouched.
    pub fn is_clean(&self) -> bool {
        !self.dropped && !self.duplicated && !self.corrupted && self.delay_ns == 0
    }
}

/// Evaluates a [`FaultPlan`] at runtime.
///
/// Decisions are pure functions of `(plan.seed, site, counter)` — the
/// caller supplies the counter (the DES uses its event sequence, the
/// threaded engine its per-link send sequence), so the injector itself
/// adds no nondeterminism. Tallies are atomic and surface through
/// [`report`](FaultInjector::report).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    stats: FaultStats,
    panic_fired: AtomicBool,
}

impl FaultInjector {
    /// Wraps `plan` for runtime evaluation.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            stats: FaultStats::default(),
            panic_fired: AtomicBool::new(false),
        }
    }

    /// The plan being evaluated.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn chance(&self, site: u64, route: u64, counter: u64, prob: f64) -> Option<u64> {
        if prob <= 0.0 {
            return None;
        }
        let h = mix64(self.plan.seed ^ mix64(site ^ (route << 16)) ^ mix64(counter));
        // Top 53 bits → uniform in [0, 1).
        let unit = ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        (unit < prob).then_some(h)
    }

    /// Decides the fate of message number `counter` on link `from → to`.
    /// Sends over a downed link always drop.
    pub fn fate(&self, from: u8, to: u8, counter: u64) -> SendFate {
        let route = u64::from(from) | (u64::from(to) << 8);
        let mut fate = SendFate::default();
        if self.link_is_down(from, to) {
            fate.dropped = true;
            self.stats.injected_drops.fetch_add(1, Ordering::Relaxed);
            return fate;
        }
        if self
            .chance(SITE_DROP, route, counter, self.plan.drop_prob)
            .is_some()
        {
            fate.dropped = true;
            self.stats.injected_drops.fetch_add(1, Ordering::Relaxed);
        }
        if self
            .chance(SITE_DUPLICATE, route, counter, self.plan.duplicate_prob)
            .is_some()
        {
            fate.duplicated = true;
            self.stats
                .injected_duplicates
                .fetch_add(1, Ordering::Relaxed);
        }
        if let Some(h) = self.chance(SITE_DELAY, route, counter, self.plan.delay_prob) {
            if self.plan.delay_ns > 0 {
                fate.delay_ns = 1 + mix64(h) % self.plan.delay_ns;
                self.stats.injected_delays.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(h) = self.chance(SITE_CORRUPT, route, counter, self.plan.corrupt_prob) {
            fate.corrupted = true;
            fate.salt = mix64(h ^ 0xC0);
            self.stats
                .injected_corruptions
                .fetch_add(1, Ordering::Relaxed);
        }
        fate
    }

    /// `true` when the plan forces the `from ↔ to` link down.
    pub fn link_is_down(&self, from: u8, to: u8) -> bool {
        self.plan
            .down_links
            .iter()
            .any(|&(a, b)| (a == from && b == to) || (a == to && b == from))
    }

    /// Injected stall, in ns, before PE task number `counter` on
    /// `cluster` executes (0 = no stall).
    pub fn stall_ns(&self, cluster: u8, counter: u64) -> u64 {
        match self.chance(
            SITE_STALL,
            u64::from(cluster),
            counter,
            self.plan.stall_prob,
        ) {
            Some(_) if self.plan.stall_ns > 0 => {
                self.stats.injected_stalls.fetch_add(1, Ordering::Relaxed);
                self.plan.stall_ns
            }
            _ => 0,
        }
    }

    /// Injected stall, in ns, on barrier counter-network update number
    /// `counter` for `level` (0 = no stall). Shares the plan's PE-stall
    /// rate but draws from an independent decision stream.
    pub fn barrier_stall_ns(&self, level: u8, counter: u64) -> u64 {
        match self.chance(
            SITE_STALL,
            0x100 | u64::from(level),
            counter,
            self.plan.stall_prob,
        ) {
            Some(_) if self.plan.stall_ns > 0 => {
                self.stats.injected_stalls.fetch_add(1, Ordering::Relaxed);
                self.plan.stall_ns
            }
            _ => 0,
        }
    }

    /// Injected starvation, in ns, before arbiter grant number
    /// `counter` on `cluster` issues (0 = no starvation).
    pub fn starvation_ns(&self, cluster: u8, counter: u64) -> u64 {
        match self.chance(
            SITE_STARVE,
            u64::from(cluster),
            counter,
            self.plan.starvation_prob,
        ) {
            Some(_) if self.plan.starvation_ns > 0 => {
                self.stats
                    .injected_starvations
                    .fetch_add(1, Ordering::Relaxed);
                self.plan.starvation_ns
            }
            _ => 0,
        }
    }

    /// `true` exactly once: when `cluster` starts program step `step`
    /// and the plan schedules its worker to panic there.
    pub fn should_panic(&self, cluster: u8, step: usize) -> bool {
        match self.plan.panic_worker {
            Some(spec) if spec.cluster == cluster && spec.step == step => {
                let first = !self.panic_fired.swap(true, Ordering::SeqCst);
                if first {
                    self.stats.injected_panics.fetch_add(1, Ordering::Relaxed);
                }
                first
            }
            _ => false,
        }
    }

    /// Records a checksum mismatch caught by a receiver.
    pub fn note_detected_corruption(&self) {
        self.stats
            .detected_corruptions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duplicate suppressed by a receiver.
    pub fn note_detected_duplicate(&self) {
        self.stats
            .detected_duplicates
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retransmission of an unacked envelope.
    pub fn note_retry(&self) {
        self.stats.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one replayed propagation phase after a recovery.
    pub fn note_replay(&self) {
        self.stats.replays.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one worker panic survived via recovery.
    pub fn note_recovered_worker(&self) {
        self.stats.recovered_workers.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one region remapped to a neighbor cluster.
    pub fn note_remapped_region(&self) {
        self.stats.remapped_regions.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of every tally so far.
    pub fn report(&self) -> FaultReport {
        self.stats.snapshot()
    }
}

/// Bounded exponential backoff for unacked envelope retransmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Wait before the first retransmission.
    pub initial: Duration,
    /// Hard cap on any single wait.
    pub max_backoff: Duration,
    /// Retransmissions before the sender declares the message lost.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial: Duration::from_micros(200),
            max_backoff: Duration::from_millis(20),
            max_retries: 12,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based): doubles each
    /// attempt, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let scaled = self
            .initial
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        scaled.min(self.max_backoff)
    }

    /// `true` when `attempt` retransmissions exhaust the policy.
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt >= self.max_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    #[test]
    fn benign_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::seeded(1));
        for counter in 0..500 {
            assert!(inj.fate(0, 1, counter).is_clean());
            assert_eq!(inj.stall_ns(2, counter), 0);
            assert_eq!(inj.starvation_ns(2, counter), 0);
        }
        assert_eq!(inj.report(), FaultReport::default());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan::seeded(42)
            .drops(0.2)
            .duplicates(0.2)
            .delays(0.2, 1_000)
            .corruptions(0.2);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for counter in 0..200 {
            assert_eq!(a.fate(1, 2, counter), b.fate(1, 2, counter));
        }
        let c = FaultInjector::new(FaultPlan::seeded(43).drops(0.2));
        let drops_a: Vec<bool> = (0..200).map(|i| a.fate(1, 2, i).dropped).collect();
        let drops_c: Vec<bool> = (0..200).map(|i| c.fate(1, 2, i).dropped).collect();
        assert_ne!(drops_a, drops_c, "different seeds should differ");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let inj = FaultInjector::new(FaultPlan::seeded(7).drops(0.25));
        let drops = (0..4000).filter(|&i| inj.fate(0, 1, i).dropped).count();
        assert!((700..1300).contains(&drops), "got {drops} drops of 4000");
        assert_eq!(inj.report().injected_drops, drops as u64);
    }

    #[test]
    fn down_link_always_drops_both_directions() {
        let inj = FaultInjector::new(FaultPlan::seeded(1).link_down(2, 6));
        for counter in 0..50 {
            assert!(inj.fate(2, 6, counter).dropped);
            assert!(inj.fate(6, 2, counter).dropped);
            assert!(!inj.fate(2, 5, counter).dropped);
        }
        assert!(inj.link_is_down(6, 2));
    }

    #[test]
    fn panic_fires_exactly_once_at_the_right_site() {
        let inj = FaultInjector::new(FaultPlan::seeded(1).worker_panic(3, 2));
        assert!(!inj.should_panic(3, 1));
        assert!(!inj.should_panic(2, 2));
        assert!(inj.should_panic(3, 2));
        assert!(!inj.should_panic(3, 2));
        assert_eq!(inj.report().injected_panics, 1);
    }

    #[test]
    fn delays_are_bounded_and_nonzero() {
        let inj = FaultInjector::new(FaultPlan::seeded(3).delays(1.0, 100));
        for counter in 0..200 {
            let d = inj.fate(0, 1, counter).delay_ns;
            assert!((1..=100).contains(&d));
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            initial: Duration::from_millis(1),
            max_backoff: Duration::from_millis(6),
            max_retries: 4,
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(1));
        assert_eq!(policy.backoff(1), Duration::from_millis(2));
        assert_eq!(policy.backoff(2), Duration::from_millis(4));
        assert_eq!(policy.backoff(3), Duration::from_millis(6));
        assert_eq!(policy.backoff(31), Duration::from_millis(6));
        assert!(!policy.exhausted(3));
        assert!(policy.exhausted(4));
    }

    #[test]
    fn notes_accumulate_into_report() {
        let inj = FaultInjector::new(FaultPlan::seeded(1));
        inj.note_detected_corruption();
        inj.note_detected_duplicate();
        inj.note_retry();
        inj.note_retry();
        inj.note_replay();
        inj.note_recovered_worker();
        inj.note_remapped_region();
        let report = inj.report();
        assert_eq!(report.detected_corruptions, 1);
        assert_eq!(report.detected_duplicates, 1);
        assert_eq!(report.retries, 2);
        assert_eq!(report.replays, 1);
        assert_eq!(report.recovered_workers, 1);
        assert_eq!(report.remapped_regions, 1);
    }
}
