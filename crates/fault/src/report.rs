//! Injected/detected/recovered tallies.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Atomic tally cells behind a [`FaultInjector`](crate::FaultInjector).
#[derive(Debug, Default)]
pub(crate) struct FaultStats {
    pub injected_drops: AtomicU64,
    pub injected_duplicates: AtomicU64,
    pub injected_delays: AtomicU64,
    pub injected_corruptions: AtomicU64,
    pub injected_stalls: AtomicU64,
    pub injected_starvations: AtomicU64,
    pub injected_panics: AtomicU64,
    pub detected_corruptions: AtomicU64,
    pub detected_duplicates: AtomicU64,
    pub retries: AtomicU64,
    pub replays: AtomicU64,
    pub recovered_workers: AtomicU64,
    pub remapped_regions: AtomicU64,
}

impl FaultStats {
    pub(crate) fn snapshot(&self) -> FaultReport {
        FaultReport {
            injected_drops: self.injected_drops.load(Ordering::Relaxed),
            injected_duplicates: self.injected_duplicates.load(Ordering::Relaxed),
            injected_delays: self.injected_delays.load(Ordering::Relaxed),
            injected_corruptions: self.injected_corruptions.load(Ordering::Relaxed),
            injected_stalls: self.injected_stalls.load(Ordering::Relaxed),
            injected_starvations: self.injected_starvations.load(Ordering::Relaxed),
            injected_panics: self.injected_panics.load(Ordering::Relaxed),
            detected_corruptions: self.detected_corruptions.load(Ordering::Relaxed),
            detected_duplicates: self.detected_duplicates.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            recovered_workers: self.recovered_workers.load(Ordering::Relaxed),
            remapped_regions: self.remapped_regions.load(Ordering::Relaxed),
        }
    }
}

/// What the fault subsystem did to a run and how the engines coped.
///
/// `injected_*` counts come from the injector's own decisions;
/// `detected_*` and the recovery counters are reported back by the
/// engines. A populated report with a correct final result is the
/// evidence a chaos run actually exercised the resilience paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Messages the injector made vanish (incl. downed-link sends).
    pub injected_drops: u64,
    /// Messages the injector delivered twice.
    pub injected_duplicates: u64,
    /// Messages the injector held back.
    pub injected_delays: u64,
    /// Payloads the injector damaged in flight.
    pub injected_corruptions: u64,
    /// PE tasks the injector stalled.
    pub injected_stalls: u64,
    /// Arbiter grants the injector starved.
    pub injected_starvations: u64,
    /// Worker panics the injector triggered.
    pub injected_panics: u64,
    /// Checksum mismatches receivers caught (and discarded).
    pub detected_corruptions: u64,
    /// Duplicates receivers suppressed.
    pub detected_duplicates: u64,
    /// Envelope retransmissions senders performed.
    pub retries: u64,
    /// Propagation phases replayed after a recovery.
    pub replays: u64,
    /// Worker panics survived via graceful degradation.
    pub recovered_workers: u64,
    /// Regions remapped from a dead cluster to a neighbor.
    pub remapped_regions: u64,
}

impl FaultReport {
    /// Total faults injected across every class.
    pub fn total_injected(&self) -> u64 {
        self.injected_drops
            + self.injected_duplicates
            + self.injected_delays
            + self.injected_corruptions
            + self.injected_stalls
            + self.injected_starvations
            + self.injected_panics
    }

    /// `true` when nothing was injected and nothing recovered — the
    /// report of a fault-free run.
    pub fn is_empty(&self) -> bool {
        *self == FaultReport::default()
    }

    /// Field-wise sum, for aggregating multi-run campaigns.
    #[must_use]
    pub fn merged(&self, other: &FaultReport) -> FaultReport {
        FaultReport {
            injected_drops: self.injected_drops + other.injected_drops,
            injected_duplicates: self.injected_duplicates + other.injected_duplicates,
            injected_delays: self.injected_delays + other.injected_delays,
            injected_corruptions: self.injected_corruptions + other.injected_corruptions,
            injected_stalls: self.injected_stalls + other.injected_stalls,
            injected_starvations: self.injected_starvations + other.injected_starvations,
            injected_panics: self.injected_panics + other.injected_panics,
            detected_corruptions: self.detected_corruptions + other.detected_corruptions,
            detected_duplicates: self.detected_duplicates + other.detected_duplicates,
            retries: self.retries + other.retries,
            replays: self.replays + other.replays,
            recovered_workers: self.recovered_workers + other.recovered_workers,
            remapped_regions: self.remapped_regions + other.remapped_regions,
        }
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected: {} drops, {} dups, {} delays, {} corruptions, {} stalls, \
             {} starvations, {} panics | detected: {} corruptions, {} dups | \
             recovered: {} retries, {} replays, {} workers, {} regions remapped",
            self.injected_drops,
            self.injected_duplicates,
            self.injected_delays,
            self.injected_corruptions,
            self.injected_stalls,
            self.injected_starvations,
            self.injected_panics,
            self.detected_corruptions,
            self.detected_duplicates,
            self.retries,
            self.replays,
            self.recovered_workers,
            self.remapped_regions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        assert!(FaultReport::default().is_empty());
        assert_eq!(FaultReport::default().total_injected(), 0);
    }

    #[test]
    fn merged_sums_fieldwise() {
        let a = FaultReport {
            injected_drops: 2,
            retries: 3,
            ..FaultReport::default()
        };
        let b = FaultReport {
            injected_drops: 1,
            recovered_workers: 1,
            ..FaultReport::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.injected_drops, 3);
        assert_eq!(m.retries, 3);
        assert_eq!(m.recovered_workers, 1);
        assert_eq!(m.total_injected(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn display_mentions_every_class() {
        let text = FaultReport::default().to_string();
        for needle in ["drops", "dups", "corruptions", "panics", "replays"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
