//! Checksummed message envelopes and duplicate suppression.

use std::collections::HashSet;

/// Finalizer from SplitMix64: a cheap, well-mixed 64-bit hash used for
/// checksums and injection decisions throughout the crate.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Payloads that can be summarized into a 64-bit digest for envelope
/// checksums. The digest must cover every field that affects execution.
pub trait Fingerprint {
    /// Stable digest of the payload's contents.
    fn fingerprint(&self) -> u64;
}

/// Payloads the injector knows how to damage in flight. `salt` is the
/// injection decision hash, so corruption is deterministic per plan.
pub trait Corruptible {
    /// Flips some execution-relevant part of the payload.
    fn corrupt(&mut self, salt: u64);
}

/// A batch fingerprints as an order-sensitive chain over its elements,
/// so reordering, dropping, or editing any member changes the digest —
/// one checksum covers the whole coalesced envelope.
impl<T: Fingerprint> Fingerprint for Vec<T> {
    fn fingerprint(&self) -> u64 {
        let mut acc = mix64(self.len() as u64);
        for item in self {
            acc = mix64(acc ^ item.fingerprint());
        }
        acc
    }
}

/// In-flight corruption of a batch damages one salt-chosen element —
/// enough to invalidate the batch checksum whatever the contents.
impl<T: Corruptible> Corruptible for Vec<T> {
    fn corrupt(&mut self, salt: u64) {
        if self.is_empty() {
            return;
        }
        let idx = (salt as usize) % self.len();
        self[idx].corrupt(salt);
    }
}

/// A sequence-numbered, checksummed wrapper around one marker message.
///
/// The threaded engine sends every off-cluster marker inside an
/// envelope: `(from, seq)` keys acks and duplicate suppression, `epoch`
/// fences off traffic from before a cluster recovery, and `checksum`
/// (sealed over epoch, route, sequence, and payload fingerprint) lets
/// receivers detect in-flight corruption and discard the packet — the
/// sender's retry path then re-delivers the original.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope<T> {
    /// Recovery epoch the sender was in; stale epochs are discarded.
    pub epoch: u32,
    /// Sending cluster.
    pub from: u8,
    /// Per-sender, per-phase sequence number.
    pub seq: u64,
    /// The wrapped marker payload.
    pub payload: T,
    checksum: u64,
}

impl<T: Fingerprint> Envelope<T> {
    /// Seals `payload` with a checksum over all routing fields.
    pub fn seal(epoch: u32, from: u8, seq: u64, payload: T) -> Self {
        let checksum = Self::digest(epoch, from, seq, &payload);
        Envelope {
            epoch,
            from,
            seq,
            payload,
            checksum,
        }
    }

    /// `true` when the checksum still matches the payload — i.e. the
    /// envelope was not corrupted after sealing.
    pub fn is_intact(&self) -> bool {
        self.checksum == Self::digest(self.epoch, self.from, self.seq, &self.payload)
    }

    /// The `(sender, sequence)` key used for acks and deduplication.
    pub fn key(&self) -> (u8, u64) {
        (self.from, self.seq)
    }

    /// The checksum receivers echo back in acks, so a corrupted ack
    /// cannot falsely acknowledge a different payload.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    fn digest(epoch: u32, from: u8, seq: u64, payload: &T) -> u64 {
        mix64(
            payload
                .fingerprint()
                .wrapping_add(mix64(u64::from(epoch)))
                .wrapping_add(mix64(u64::from(from) | (seq << 8))),
        )
    }
}

impl<T: Corruptible> Envelope<T> {
    /// Damages the payload *without* resealing, modeling in-flight bit
    /// corruption: [`Envelope::is_intact`] turns false at the receiver.
    pub fn corrupt_in_flight(&mut self, salt: u64) {
        self.payload.corrupt(salt);
    }
}

/// Duplicate suppression over `(sender, seq)` keys.
///
/// Receivers insert every arriving envelope's key; a second arrival of
/// the same key (an injected duplicate, or a retry racing its ack) is
/// reported stale so its markers are not double-counted.
#[derive(Debug, Default)]
pub struct DedupTable {
    seen: HashSet<(u8, u64)>,
}

impl DedupTable {
    /// An empty table.
    pub fn new() -> Self {
        DedupTable::default()
    }

    /// Records `key`; returns `true` the first time it is seen.
    pub fn insert(&mut self, key: (u8, u64)) -> bool {
        self.seen.insert(key)
    }

    /// Forgets everything (called at phase boundaries, where sequence
    /// numbers restart).
    pub fn clear(&mut self) {
        self.seen.clear();
    }

    /// Number of distinct keys seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// `true` when no key has been seen.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Probe(u64);

    impl Fingerprint for Probe {
        fn fingerprint(&self) -> u64 {
            self.0
        }
    }

    impl Corruptible for Probe {
        fn corrupt(&mut self, salt: u64) {
            self.0 ^= salt | 1;
        }
    }

    #[test]
    fn sealed_envelope_is_intact() {
        let env = Envelope::seal(0, 3, 17, Probe(99));
        assert!(env.is_intact());
        assert_eq!(env.key(), (3, 17));
    }

    #[test]
    fn corruption_is_detected() {
        let mut env = Envelope::seal(1, 2, 5, Probe(42));
        env.corrupt_in_flight(0xDEAD);
        assert!(!env.is_intact());
    }

    #[test]
    fn checksum_binds_routing_fields() {
        let a = Envelope::seal(0, 1, 1, Probe(7));
        let b = Envelope::seal(0, 1, 2, Probe(7));
        let c = Envelope::seal(1, 1, 1, Probe(7));
        assert_ne!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), c.checksum());
    }

    #[test]
    fn dedup_reports_repeats() {
        let mut table = DedupTable::new();
        assert!(table.insert((0, 1)));
        assert!(!table.insert((0, 1)));
        assert!(table.insert((1, 1)));
        assert_eq!(table.len(), 2);
        table.clear();
        assert!(table.insert((0, 1)));
    }

    #[test]
    fn batch_fingerprint_is_order_and_content_sensitive() {
        let a = vec![Probe(1), Probe(2)].fingerprint();
        let b = vec![Probe(2), Probe(1)].fingerprint();
        let c = vec![Probe(1), Probe(2), Probe(3)].fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, vec![Probe(1), Probe(2)].fingerprint());
    }

    #[test]
    fn corrupted_batch_envelope_is_detected() {
        let mut env = Envelope::seal(0, 1, 9, vec![Probe(5), Probe(6), Probe(7)]);
        assert!(env.is_intact());
        env.corrupt_in_flight(0xBEEF);
        assert!(!env.is_intact());
    }

    #[test]
    fn mix64_is_stable_and_spreading() {
        assert_eq!(mix64(0), mix64(0));
        let outputs: HashSet<u64> = (0..1000).map(mix64).collect();
        assert_eq!(outputs.len(), 1000);
    }
}
