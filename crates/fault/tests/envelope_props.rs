//! Property tests for the resilience primitives: envelope checksums
//! must round-trip for every routing tuple, detect every in-flight
//! corruption, and the dedup table must suppress duplicates so a
//! retry storm can never double-apply a payload.

use proptest::prelude::*;
use snap_fault::{Corruptible, DedupTable, Envelope, Fingerprint};

/// A stand-in marker payload: the fingerprint covers the whole value,
/// as the engine's `PropTask` fingerprint covers every routed field.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Payload(u64);

impl Fingerprint for Payload {
    fn fingerprint(&self) -> u64 {
        self.0
    }
}

impl Corruptible for Payload {
    fn corrupt(&mut self, salt: u64) {
        // `| 1` guarantees at least one bit flips even for salt 0,
        // matching the engine's NetMsg corruption.
        self.0 ^= salt | 1;
    }
}

proptest! {
    /// Sealing never produces an envelope that fails its own check, for
    /// any epoch/route/sequence/payload combination.
    #[test]
    fn sealed_envelopes_verify(
        epoch in proptest::prelude::any::<u32>(),
        from in proptest::prelude::any::<u8>(),
        seq in proptest::prelude::any::<u64>(),
        value in proptest::prelude::any::<u64>(),
    ) {
        let env = Envelope::seal(epoch, from, seq, Payload(value));
        prop_assert!(env.is_intact());
        prop_assert_eq!(env.key(), (from, seq));
        // Resealing the same tuple reproduces the same checksum.
        let again = Envelope::seal(epoch, from, seq, Payload(value));
        prop_assert_eq!(env.checksum(), again.checksum());
    }

    /// Any in-flight payload corruption — any salt — is detected at the
    /// receiver. The corruption always flips at least one payload bit,
    /// and the digest is bijective in the fingerprint, so a damaged
    /// payload can never masquerade as intact.
    #[test]
    fn corruption_is_always_detected(
        epoch in proptest::prelude::any::<u32>(),
        from in proptest::prelude::any::<u8>(),
        seq in proptest::prelude::any::<u64>(),
        value in proptest::prelude::any::<u64>(),
        salt in proptest::prelude::any::<u64>(),
    ) {
        let mut env = Envelope::seal(epoch, from, seq, Payload(value));
        env.corrupt_in_flight(salt);
        prop_assert!(!env.is_intact());
    }

    /// The checksum binds the routing fields: altering epoch, sender, or
    /// sequence yields a different checksum, so an ack echoing the
    /// checksum can never acknowledge a different envelope.
    #[test]
    fn checksum_binds_routing(
        epoch in 0u32..1000,
        from in 0u8..32,
        seq in 0u64..10_000,
        value in proptest::prelude::any::<u64>(),
    ) {
        let base = Envelope::seal(epoch, from, seq, Payload(value));
        let bumped_seq = Envelope::seal(epoch, from, seq + 1, Payload(value));
        let bumped_epoch = Envelope::seal(epoch + 1, from, seq, Payload(value));
        let bumped_from = Envelope::seal(epoch, from + 1, seq, Payload(value));
        prop_assert_ne!(base.checksum(), bumped_seq.checksum());
        prop_assert_ne!(base.checksum(), bumped_epoch.checksum());
        prop_assert_ne!(base.checksum(), bumped_from.checksum());
    }

    /// Duplicate suppression: for an arbitrary arrival stream (including
    /// repeats, modeling retries racing their acks and injected
    /// duplicates), each distinct `(sender, seq)` key is applied exactly
    /// once, so the summed applied value equals the sum over distinct
    /// keys — never more.
    #[test]
    fn dedup_never_double_applies(
        arrivals in proptest::collection::vec((0u8..4, 0u64..16), 0..200),
    ) {
        let mut table = DedupTable::new();
        let mut applied: u64 = 0;
        let mut applied_keys: Vec<(u8, u64)> = Vec::new();
        for &(from, seq) in &arrivals {
            let env = Envelope::seal(0, from, seq, Payload(u64::from(from) * 1000 + seq));
            if table.insert(env.key()) {
                applied += env.payload.0;
                applied_keys.push(env.key());
            }
        }
        // Exactly the distinct keys, each once.
        let mut distinct: Vec<(u8, u64)> = arrivals.clone();
        distinct.sort_unstable();
        distinct.dedup();
        applied_keys.sort_unstable();
        prop_assert_eq!(&applied_keys, &distinct);
        prop_assert_eq!(table.len(), distinct.len());
        let expected: u64 = distinct
            .iter()
            .map(|&(f, s)| u64::from(f) * 1000 + s)
            .sum();
        prop_assert_eq!(applied, expected);
        // Phase boundary: clearing re-admits every key once.
        table.clear();
        for &(from, seq) in &distinct {
            prop_assert!(table.insert((from, seq)));
        }
    }
}
