//! Property tests for the threaded tiered barrier: under any arrival
//! order — any interleaving of creations, consumptions, and busy
//! transitions, at any levels including the saturating deep tiers —
//! the barrier must never report completion while work is outstanding,
//! and must always report completion once everything drains.
//!
//! The deep-level cases are the regression guard for the tier
//! saturation fix: tokens created at levels at or beyond `MAX_LEVELS`
//! share the top tier, and creations must balance consumptions there
//! regardless of the exact (saturated) level values used on each side.

use proptest::prelude::*;
use snap_sync::{TieredBarrier, MAX_LEVELS};

/// Deterministically interleaves consumptions among later creations:
/// `ops[i] = (level, delay)` creates a token at `level` and schedules
/// its consumption `delay` operations later (capped at the end). This
/// covers in-order, out-of-order, and fully-deferred drains without
/// needing a shuffle combinator.
fn run_schedule(barrier: &TieredBarrier, ops: &[(u8, u8)]) {
    let mut due: Vec<Vec<u8>> = vec![Vec::new(); ops.len() + 1];
    for (i, &(level, delay)) in ops.iter().enumerate() {
        barrier.created(level);
        assert!(
            !barrier.is_complete(),
            "complete with token outstanding at op {i}"
        );
        let slot = (i + 1 + delay as usize).min(ops.len());
        due[slot].push(level);
        for level in due[i + 1].drain(..) {
            barrier.consumed(level);
        }
    }
    // Drain everything scheduled past the end.
    for slot in due.iter_mut() {
        for level in slot.drain(..) {
            barrier.consumed(level);
        }
    }
}

proptest! {
    /// For any creation levels and any drain order the counters balance:
    /// in-flight tracks outstanding tokens exactly, completion holds
    /// precisely when everything is drained, and deep levels saturate
    /// into the top tier without losing tokens.
    #[test]
    fn any_arrival_order_drains_to_completion(
        ops in proptest::collection::vec((0u8..=255, 0u8..32), 1..120),
    ) {
        let barrier = TieredBarrier::new();
        run_schedule(&barrier, &ops);
        prop_assert!(barrier.is_complete());
        prop_assert_eq!(barrier.in_flight(), 0);
        let deep = ops.iter().filter(|(l, _)| *l as usize >= MAX_LEVELS).count();
        prop_assert_eq!(barrier.level_overflows(), deep as u64);
    }

    /// Saturation symmetry: a token created at one deep level may be
    /// consumed under any other deep level (both clamp to the top tier),
    /// which is exactly what the engine's `min(63)` clamping relies on.
    #[test]
    fn deep_levels_share_the_top_tier(
        create_levels in proptest::collection::vec(
            (MAX_LEVELS as u8)..=255, 1..40),
        consume_levels in proptest::collection::vec(
            (MAX_LEVELS as u8)..=255, 1..40),
    ) {
        let barrier = TieredBarrier::new();
        let n = create_levels.len().min(consume_levels.len());
        for &l in &create_levels[..n] {
            barrier.created(l);
        }
        prop_assert_eq!(barrier.in_flight(), n as i64);
        for &l in &consume_levels[..n] {
            barrier.consumed(l);
        }
        prop_assert!(barrier.is_complete());
        prop_assert_eq!(barrier.in_flight(), 0);
    }

    /// Busy PEs gate completion independently of the counters: the
    /// barrier is complete only when both every token is drained and
    /// every PE has gone idle, in any interleaving.
    #[test]
    fn busy_pes_block_completion(
        tokens in proptest::collection::vec(0u8..=255, 0..20),
        busy in 1usize..8,
    ) {
        let barrier = TieredBarrier::new();
        for _ in 0..busy {
            barrier.enter_busy();
        }
        for &l in &tokens {
            barrier.created(l);
        }
        for &l in &tokens {
            barrier.consumed(l);
        }
        // Counters drained, PEs still busy: not complete.
        prop_assert!(!barrier.is_complete());
        prop_assert_eq!(barrier.busy_pes(), busy);
        for i in 0..busy {
            prop_assert!(!barrier.is_complete(), "complete with {} busy", busy - i);
            barrier.exit_busy();
        }
        prop_assert!(barrier.is_complete());
    }

    /// Reset abandons any outstanding accounting (the recovery path):
    /// whatever was in flight, a reset barrier is immediately complete
    /// and usable for the replayed phase.
    #[test]
    fn reset_recovers_from_any_state(
        ops in proptest::collection::vec((0u8..=255, 0u8..16), 0..60),
        busy in 0usize..4,
        replay in proptest::collection::vec(0u8..=255, 0..20),
    ) {
        let barrier = TieredBarrier::new();
        for _ in 0..busy {
            barrier.enter_busy();
        }
        // Create everything, consume only every other token: a mess.
        for (i, &(level, _)) in ops.iter().enumerate() {
            barrier.created(level);
            if i % 2 == 0 {
                barrier.consumed(level);
            }
        }
        barrier.reset();
        prop_assert!(barrier.is_complete());
        prop_assert_eq!(barrier.in_flight(), 0);
        // The replayed phase balances on the reset barrier.
        for &l in &replay {
            barrier.created(l);
        }
        for &l in &replay {
            barrier.consumed(l);
        }
        prop_assert!(barrier.is_complete());
    }
}
