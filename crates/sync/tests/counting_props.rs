//! Property tests for the counting gate's packed `AtomicU64` word near
//! the high-half boundary.
//!
//! The word packs a monotone created-total (high 32 bits) above the net
//! in-flight count (low 32 bits). The created-total is allowed to wrap
//! at 2^32 — only deltas matter to the watchdog — and the wrap must be
//! completely benign: the carry falls off the top of the u64, so it can
//! never bleed into the in-flight half, quiescence detection stays
//! exact, and the watchdog keeps seeing progress through the wrap.
//! These tests seed the total right at the boundary (via the hidden
//! `seeded_created_total` constructor) and drive creations across it,
//! both deterministically interleaved and from genuinely racing
//! threads, asserting the gate never closes early and always closes
//! exactly when everything drains.

use proptest::prelude::*;
use snap_sync::CountingGate;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Deterministically interleaves consumptions among later creations
/// (same schedule encoding as the tiered-barrier property tests):
/// `delays[i]` creates a token and schedules its consumption that many
/// operations later, capped at the end of the run.
fn run_schedule(gate: &CountingGate, delays: &[u8]) {
    let mut due: Vec<u32> = vec![0; delays.len() + 1];
    let mut outstanding = 0u32;
    for (i, &delay) in delays.iter().enumerate() {
        gate.created();
        outstanding += 1;
        assert!(
            !gate.is_quiescent(),
            "quiescent with a token outstanding at op {i}"
        );
        due[(i + 1 + delay as usize).min(delays.len())] += 1;
        for _ in 0..due[i + 1] {
            gate.consumed();
            outstanding -= 1;
        }
        assert_eq!(
            gate.in_flight(),
            outstanding as i64,
            "in-flight drifted from the schedule at op {i}"
        );
        assert_eq!(gate.is_quiescent(), outstanding == 0);
    }
    // The min-cap routes every consumption to a slot no later than
    // `delays.len()`, and slot `i + 1` drains inside iteration `i`, so
    // the loop leaves nothing behind.
    assert_eq!(outstanding, 0, "schedule left tokens undrained");
}

proptest! {
    /// For any creation/drain interleaving starting anywhere around the
    /// high-half boundary: quiescence holds exactly when the schedule
    /// says zero tokens are outstanding — never earlier, never later —
    /// and the created-total advances by exactly the number of
    /// creations, modulo 2^32.
    #[test]
    fn quiescence_is_exact_across_the_wrap(
        // Bias the start so most cases actually cross the wrap.
        back in 0u32..64,
        delays in proptest::collection::vec(0u8..32, 1..120),
    ) {
        let start = u32::MAX - back;
        let gate = CountingGate::seeded_created_total(start);
        run_schedule(&gate, &delays);
        prop_assert!(gate.is_quiescent());
        prop_assert_eq!(gate.in_flight(), 0);
        let expected = (start as u64 + delays.len() as u64) & 0xFFFF_FFFF;
        prop_assert_eq!(gate.created_total(), expected);
    }

    /// The wrap carry is lost off the top of the u64, not shifted into
    /// the low half: creating `n` tokens with the total parked exactly
    /// at `u32::MAX` leaves precisely `n` in flight, and draining them
    /// closes the gate.
    #[test]
    fn wrap_carry_never_corrupts_in_flight(n in 1u32..200) {
        let gate = CountingGate::seeded_created_total(u32::MAX);
        for _ in 0..n {
            gate.created();
        }
        prop_assert_eq!(gate.in_flight(), n as i64);
        // MAX + n wraps to n - 1.
        prop_assert_eq!(gate.created_total(), (n - 1) as u64);
        prop_assert!(!gate.is_quiescent());
        for left in (0..n).rev() {
            gate.consumed();
            prop_assert_eq!(gate.in_flight(), left as i64);
        }
        prop_assert!(gate.is_quiescent());
    }
}

/// Racing create/finish traffic across the boundary: while worker
/// threads hammer balanced created/consumed pairs through the wrap, a
/// sentinel token held by the controller must keep the gate open at
/// every sample — a false close here would terminate a phase with work
/// in flight. Once the sentinel drains the gate must close exactly,
/// with the created-total advanced by the precise operation count.
#[test]
fn racing_create_finish_never_close_the_gate_early() {
    const WORKERS: usize = 4;
    const PAIRS: u64 = 40_000;
    let start = u32::MAX - 1_000; // wraps mid-race
    let gate = CountingGate::seeded_created_total(start);

    gate.created(); // the controller's sentinel
    let racing = Arc::new(AtomicBool::new(true));
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                for i in 0..PAIRS {
                    // Vary the local imbalance: sometimes hold a few
                    // tokens open before draining, so the low half
                    // jitters while the high half marches over the wrap.
                    let burst = 1 + ((i ^ w as u64) % 3);
                    for _ in 0..burst {
                        gate.created();
                    }
                    for _ in 0..burst {
                        gate.consumed();
                    }
                }
            })
        })
        .collect();

    let sampler = {
        let gate = Arc::clone(&gate);
        let racing = Arc::clone(&racing);
        thread::spawn(move || {
            let mut samples = 0u64;
            while racing.load(Ordering::SeqCst) {
                assert!(
                    !gate.is_quiescent(),
                    "gate closed with the sentinel still in flight"
                );
                assert!(
                    gate.in_flight() >= 1,
                    "in-flight dropped below the sentinel"
                );
                samples += 1;
                thread::yield_now();
            }
            samples
        })
    };

    for h in handles {
        h.join().unwrap();
    }
    racing.store(false, Ordering::SeqCst);
    assert!(
        sampler.join().unwrap() > 0,
        "sampler never observed the race"
    );

    // Every worker pair is balanced; only the sentinel remains.
    assert!(!gate.is_quiescent());
    assert_eq!(gate.in_flight(), 1);
    gate.consumed();
    assert!(gate.is_quiescent());
    assert_eq!(gate.in_flight(), 0);

    // Exact accounting through the wrap: sentinel + every burst token.
    let mut created = 1u64;
    for w in 0..WORKERS as u64 {
        for i in 0..PAIRS {
            created += 1 + ((i ^ w) % 3);
        }
    }
    assert_eq!(gate.created_total(), (start as u64 + created) & 0xFFFF_FFFF);
    assert!(created > 1_000, "race did not cross the wrap");
}

/// The watchdog's progress proxy (any change to the packed word) must
/// keep working while the created-total wraps: slow-but-live traffic
/// crossing the boundary resets the stall clock, so the wait returns
/// `Ok` instead of reporting lost messages.
#[test]
fn watchdog_sees_progress_through_the_wrap() {
    let gate = CountingGate::seeded_created_total(u32::MAX - 2);
    gate.created();
    let worker = {
        let gate = Arc::clone(&gate);
        thread::spawn(move || {
            // Six slow pairs walk the total from MAX-2 across zero.
            for _ in 0..6 {
                thread::sleep(Duration::from_millis(5));
                gate.created();
                gate.consumed();
            }
            thread::sleep(Duration::from_millis(5));
            gate.consumed();
        })
    };
    gate.wait_quiescent_timeout(Duration::from_millis(250))
        .expect("live traffic across the wrap misreported as a stall");
    worker.join().unwrap();
    assert!(gate.is_quiescent());
    assert_eq!(gate.created_total(), 4); // MAX-2 + 7 ≡ 4 (mod 2^32)
}

/// And the converse: tokens genuinely stuck just past the wrap still
/// trip the watchdog with the exact in-flight count — the wrap does not
/// masquerade as progress.
#[test]
fn watchdog_still_trips_when_stuck_past_the_wrap() {
    let gate = CountingGate::seeded_created_total(u32::MAX);
    gate.created(); // total wraps to 0 here, then freezes
    gate.created();
    gate.consumed();
    let err = gate
        .wait_quiescent_timeout(Duration::from_millis(20))
        .unwrap_err();
    assert_eq!(err, snap_sync::BarrierStall::MessagesLost { in_flight: 1 });
}
