//! # snap-sync — tiered barrier synchronization for marker propagation
//!
//! Before an accumulation-phase instruction can execute, every in-flight
//! propagation must have terminated — but in MIMD mode nobody knows a
//! priori how many propagations take place or which PEs are involved.
//! SNAP-1 solves this with hardware support: an AND-tree reporting PE
//! idleness plus per-level marker creation/termination counters. The
//! barrier is complete when all PEs are idle and the number of markers
//! produced equals the number consumed at every propagation tier.
//!
//! * [`TieredSyncModel`] — deterministic detector for the discrete-event
//!   engine;
//! * [`TieredBarrier`] — atomic implementation for the threaded engine;
//! * [`NaiveSyncModel`] — the ablation (idle-only detection) that falsely
//!   completes while messages are in transit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counting;
mod model;
mod threaded;

pub use counting::CountingGate;
pub use model::{NaiveSyncModel, TieredSyncModel, MAX_LEVELS};
pub use threaded::{BarrierStall, TieredBarrier};
