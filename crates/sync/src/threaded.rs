//! Threaded implementation of the tiered barrier for the parallel engine.
//!
//! The hardware reports per-PE idle state through an AND-tree of general
//! purpose I/O lines (the SIGI interlock signal) and per-level marker
//! counters through the counter network. The logical equivalent here is a
//! set of shared atomics: a busy-PE count (the AND-tree) and one signed
//! counter per propagation level. The protocol invariant that prevents
//! false detection carries over directly: a creation is counted **before**
//! the message becomes visible to any other thread, so whenever a message
//! is in flight some counter is positive.

use crate::model::MAX_LEVELS;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared tiered-barrier state for one array run.
#[derive(Debug)]
pub struct TieredBarrier {
    levels: Vec<AtomicI64>,
    busy_pes: AtomicUsize,
}

impl TieredBarrier {
    /// Creates the barrier; all PEs start idle.
    pub fn new() -> Arc<Self> {
        Arc::new(TieredBarrier {
            levels: (0..MAX_LEVELS).map(|_| AtomicI64::new(0)).collect(),
            busy_pes: AtomicUsize::new(0),
        })
    }

    /// Records a marker/process creation at `level`. Call **before**
    /// publishing the message.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the tier table.
    pub fn created(&self, level: u8) {
        self.levels[level as usize].fetch_add(1, Ordering::SeqCst);
    }

    /// Records a termination at `level`. Call **after** fully processing
    /// the message (including counting any children it created).
    pub fn consumed(&self, level: u8) {
        let prev = self.levels[level as usize].fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "level {level} terminated more than created");
    }

    /// Marks one PE busy (clears its AND-tree input).
    pub fn enter_busy(&self) {
        self.busy_pes.fetch_add(1, Ordering::SeqCst);
    }

    /// Marks one PE idle again.
    pub fn exit_busy(&self) {
        let prev = self.busy_pes.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "exit_busy without matching enter_busy");
    }

    /// Snapshot check: all PEs idle and every level drained.
    ///
    /// Reads the busy count first and re-checks it after scanning the
    /// counters, so a PE that went busy mid-scan cannot slip through.
    pub fn is_complete(&self) -> bool {
        if self.busy_pes.load(Ordering::SeqCst) != 0 {
            return false;
        }
        if self.levels.iter().any(|l| l.load(Ordering::SeqCst) != 0) {
            return false;
        }
        self.busy_pes.load(Ordering::SeqCst) == 0
    }

    /// Controller-side blocking wait (spin with yields) until the
    /// barrier condition holds.
    pub fn wait_complete(&self) {
        while !self.is_complete() {
            std::thread::yield_now();
        }
    }

    /// Total messages currently accounted as in flight.
    pub fn in_flight(&self) -> i64 {
        self.levels.iter().map(|l| l.load(Ordering::SeqCst)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::thread;

    #[test]
    fn starts_complete() {
        let b = TieredBarrier::new();
        assert!(b.is_complete());
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn busy_pe_blocks_completion() {
        let b = TieredBarrier::new();
        b.enter_busy();
        assert!(!b.is_complete());
        b.exit_busy();
        assert!(b.is_complete());
    }

    #[test]
    fn in_flight_message_blocks_completion() {
        let b = TieredBarrier::new();
        b.created(3);
        assert!(!b.is_complete());
        assert_eq!(b.in_flight(), 1);
        b.consumed(3);
        assert!(b.is_complete());
    }

    /// End-to-end: worker threads forward messages in random-ish chains;
    /// the controller's wait_complete must not return until every message
    /// has been fully processed.
    #[test]
    fn wait_complete_never_fires_early() {
        const WORKERS: usize = 4;
        const SEEDS: u32 = 200;
        let barrier = TieredBarrier::new();
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..WORKERS).map(|_| unbounded::<(u8, u32)>()).unzip();
        let processed = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut handles = Vec::new();
        for (w, rx) in rxs.into_iter().enumerate() {
            let barrier = Arc::clone(&barrier);
            let txs = txs.clone();
            let processed = Arc::clone(&processed);
            let done = Arc::clone(&done);
            handles.push(thread::spawn(move || {
                loop {
                    match rx.try_recv() {
                        Ok((level, hop)) => {
                            barrier.enter_busy();
                            // Forward a child message for a few hops.
                            if hop > 0 {
                                let next = (w + 1) % WORKERS;
                                barrier.created(level + 1);
                                txs[next].send((level + 1, hop - 1)).unwrap();
                            }
                            processed.fetch_add(1, Ordering::SeqCst);
                            barrier.consumed(level);
                            barrier.exit_busy();
                        }
                        Err(_) => {
                            if done.load(Ordering::SeqCst) {
                                return;
                            }
                            thread::yield_now();
                        }
                    }
                }
            }));
        }

        // Seed the system: SEEDS level-0 messages, each forwarding 3 hops.
        let mut expected = 0usize;
        for i in 0..SEEDS {
            barrier.created(0);
            txs[(i % WORKERS as u32) as usize].send((0, 3)).unwrap();
            expected += 4; // each seed is processed once per hop level 0..=3
        }
        barrier.wait_complete();
        // At completion every created message must have been processed.
        assert_eq!(processed.load(Ordering::SeqCst), expected);
        assert_eq!(barrier.in_flight(), 0);
        done.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
    }
}
