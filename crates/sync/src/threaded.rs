//! Threaded implementation of the tiered barrier for the parallel engine.
//!
//! The hardware reports per-PE idle state through an AND-tree of general
//! purpose I/O lines (the SIGI interlock signal) and per-level marker
//! counters through the counter network. The logical equivalent here is a
//! set of shared atomics: a busy-PE count (the AND-tree) and one signed
//! counter per propagation level. The protocol invariant that prevents
//! false detection carries over directly: a creation is counted **before**
//! the message becomes visible to any other thread, so whenever a message
//! is in flight some counter is positive.

use crate::model::MAX_LEVELS;
use snap_fault::FaultInjector;
use snap_obs::Tracer;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a watched barrier wait gave up, as classified by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BarrierStall {
    /// Every PE is idle and no counter has moved for the whole timeout,
    /// yet levels remain positive: the counted messages will never
    /// arrive — they were lost in the interconnect.
    MessagesLost {
        /// Messages still accounted as in flight.
        in_flight: i64,
    },
    /// PEs are still marked busy but nothing has progressed for the
    /// whole timeout — a wedged worker rather than lost traffic.
    Wedged {
        /// PEs still holding the AND-tree low.
        busy_pes: usize,
    },
}

impl fmt::Display for BarrierStall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarrierStall::MessagesLost { in_flight } => {
                write!(f, "{in_flight} in-flight messages lost (all PEs idle)")
            }
            BarrierStall::Wedged { busy_pes } => {
                write!(f, "{busy_pes} PEs wedged (no barrier activity)")
            }
        }
    }
}

/// The counter a propagation level maps to; deep levels share the top
/// tier, mirroring [`TieredSyncModel`](crate::TieredSyncModel).
fn tier(level: u8) -> usize {
    (level as usize).min(MAX_LEVELS - 1)
}

/// Shared tiered-barrier state for one array run.
#[derive(Debug)]
pub struct TieredBarrier {
    levels: Vec<AtomicI64>,
    busy_pes: AtomicUsize,
    /// Bumped on every counter/AND-tree transition; the watchdog
    /// distinguishes "still propagating" (activity advancing) from
    /// "stalled" (activity frozen) by watching this.
    activity: AtomicU64,
    level_overflows: AtomicU64,
    injector: Option<Arc<FaultInjector>>,
    tracer: Tracer,
}

impl TieredBarrier {
    /// Creates the barrier; all PEs start idle.
    pub fn new() -> Arc<Self> {
        Self::build(None, Tracer::disabled())
    }

    /// Creates the barrier with a fault injector attached: counter
    /// updates may be stalled (after publication, so the no-false-
    /// termination invariant is untouched), modeling counter-network
    /// contention.
    pub fn with_injector(injector: Arc<FaultInjector>) -> Arc<Self> {
        Self::build(Some(injector), Tracer::disabled())
    }

    /// Creates the barrier with both an optional injector and a tracer:
    /// every created-token arrival is reported to the counter-network
    /// track of the trace (subject to the tracer's sampling).
    pub fn with_instruments(injector: Option<Arc<FaultInjector>>, tracer: Tracer) -> Arc<Self> {
        Self::build(injector, tracer)
    }

    fn build(injector: Option<Arc<FaultInjector>>, tracer: Tracer) -> Arc<Self> {
        Arc::new(TieredBarrier {
            levels: (0..MAX_LEVELS).map(|_| AtomicI64::new(0)).collect(),
            busy_pes: AtomicUsize::new(0),
            activity: AtomicU64::new(0),
            level_overflows: AtomicU64::new(0),
            injector,
            tracer,
        })
    }

    fn touch(&self) -> u64 {
        self.activity.fetch_add(1, Ordering::SeqCst)
    }

    /// Records a marker/process creation at `level`. Call **before**
    /// publishing the message. Levels beyond the tier table saturate
    /// into the top tier.
    pub fn created(&self, level: u8) {
        if level as usize >= MAX_LEVELS {
            self.level_overflows.fetch_add(1, Ordering::Relaxed);
        }
        self.levels[tier(level)].fetch_add(1, Ordering::SeqCst);
        if self.tracer.is_enabled() {
            self.tracer.barrier_arrive(level, self.tracer.wall_stamp());
        }
        let op = self.touch();
        if let Some(injector) = &self.injector {
            let ns = injector.barrier_stall_ns(level, op);
            if ns > 0 {
                spin_for(Duration::from_nanos(ns));
            }
        }
    }

    /// Records a termination at `level`. Call **after** fully processing
    /// the message (including counting any children it created).
    pub fn consumed(&self, level: u8) {
        let prev = self.levels[tier(level)].fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "level {level} terminated more than created");
        self.touch();
    }

    /// Marks one PE busy (clears its AND-tree input).
    pub fn enter_busy(&self) {
        self.busy_pes.fetch_add(1, Ordering::SeqCst);
        self.touch();
    }

    /// Marks one PE idle again.
    pub fn exit_busy(&self) {
        let prev = self.busy_pes.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "exit_busy without matching enter_busy");
        self.touch();
    }

    /// Snapshot check: all PEs idle and every level drained.
    ///
    /// Reads the busy count first and re-checks it after scanning the
    /// counters, so a PE that went busy mid-scan cannot slip through.
    pub fn is_complete(&self) -> bool {
        if self.busy_pes.load(Ordering::SeqCst) != 0 {
            return false;
        }
        if self.levels.iter().any(|l| l.load(Ordering::SeqCst) != 0) {
            return false;
        }
        self.busy_pes.load(Ordering::SeqCst) == 0
    }

    /// Controller-side blocking wait (spin with yields) until the
    /// barrier condition holds. Unbounded: prefer
    /// [`wait_complete_timeout`](Self::wait_complete_timeout) whenever
    /// traffic may be faulty.
    pub fn wait_complete(&self) {
        while !self.is_complete() {
            std::thread::yield_now();
        }
    }

    /// Waits for the barrier with a watchdog: returns `Ok(())` on
    /// completion, or a [`BarrierStall`] classification once no counter
    /// or AND-tree transition has occurred for `stall_after`. Progress
    /// resets the clock, so long-but-live propagations never trip it.
    ///
    /// # Errors
    ///
    /// [`BarrierStall::MessagesLost`] when everything is idle but
    /// levels stay positive; [`BarrierStall::Wedged`] when PEs hold the
    /// AND-tree low without progressing.
    pub fn wait_complete_timeout(&self, stall_after: Duration) -> Result<(), BarrierStall> {
        let mut last_activity = self.activity.load(Ordering::SeqCst);
        let mut last_progress = Instant::now();
        loop {
            if self.is_complete() {
                return Ok(());
            }
            let now_activity = self.activity.load(Ordering::SeqCst);
            if now_activity != last_activity {
                last_activity = now_activity;
                last_progress = Instant::now();
            } else if last_progress.elapsed() >= stall_after {
                let busy = self.busy_pes.load(Ordering::SeqCst);
                return Err(if busy == 0 {
                    BarrierStall::MessagesLost {
                        in_flight: self.in_flight(),
                    }
                } else {
                    BarrierStall::Wedged { busy_pes: busy }
                });
            }
            std::thread::yield_now();
        }
    }

    /// Total messages currently accounted as in flight.
    pub fn in_flight(&self) -> i64 {
        self.levels.iter().map(|l| l.load(Ordering::SeqCst)).sum()
    }

    /// PEs currently holding the AND-tree low.
    pub fn busy_pes(&self) -> usize {
        self.busy_pes.load(Ordering::SeqCst)
    }

    /// Counter/AND-tree transitions so far (the watchdog's clock).
    pub fn activity(&self) -> u64 {
        self.activity.load(Ordering::SeqCst)
    }

    /// Operations that saturated into the top tier.
    pub fn level_overflows(&self) -> u64 {
        self.level_overflows.load(Ordering::Relaxed)
    }

    /// Zeroes every level counter and the busy count, abandoning any
    /// outstanding accounting. Recovery support: after a cluster dies
    /// mid-phase its created-tokens can never be consumed, so the
    /// controller quiesces the surviving workers, resets the barrier,
    /// and replays the phase. Only call while no worker is touching the
    /// barrier.
    pub fn reset(&self) {
        for l in &self.levels {
            l.store(0, Ordering::SeqCst);
        }
        self.busy_pes.store(0, Ordering::SeqCst);
        self.touch();
    }
}

/// Busy-waits for sub-millisecond injected stalls (`thread::sleep` is
/// too coarse at ns granularity).
fn spin_for(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::thread;

    #[test]
    fn starts_complete() {
        let b = TieredBarrier::new();
        assert!(b.is_complete());
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn busy_pe_blocks_completion() {
        let b = TieredBarrier::new();
        b.enter_busy();
        assert!(!b.is_complete());
        b.exit_busy();
        assert!(b.is_complete());
    }

    #[test]
    fn in_flight_message_blocks_completion() {
        let b = TieredBarrier::new();
        b.created(3);
        assert!(!b.is_complete());
        assert_eq!(b.in_flight(), 1);
        b.consumed(3);
        assert!(b.is_complete());
    }

    /// End-to-end: worker threads forward messages in random-ish chains;
    /// the controller's wait_complete must not return until every message
    /// has been fully processed.
    #[test]
    fn wait_complete_never_fires_early() {
        const WORKERS: usize = 4;
        const SEEDS: u32 = 200;
        let barrier = TieredBarrier::new();
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..WORKERS).map(|_| unbounded::<(u8, u32)>()).unzip();
        let processed = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut handles = Vec::new();
        for (w, rx) in rxs.into_iter().enumerate() {
            let barrier = Arc::clone(&barrier);
            let txs = txs.clone();
            let processed = Arc::clone(&processed);
            let done = Arc::clone(&done);
            handles.push(thread::spawn(move || {
                loop {
                    match rx.try_recv() {
                        Ok((level, hop)) => {
                            barrier.enter_busy();
                            // Forward a child message for a few hops.
                            if hop > 0 {
                                let next = (w + 1) % WORKERS;
                                barrier.created(level + 1);
                                txs[next].send((level + 1, hop - 1)).unwrap();
                            }
                            processed.fetch_add(1, Ordering::SeqCst);
                            barrier.consumed(level);
                            barrier.exit_busy();
                        }
                        Err(_) => {
                            if done.load(Ordering::SeqCst) {
                                return;
                            }
                            thread::yield_now();
                        }
                    }
                }
            }));
        }

        // Seed the system: SEEDS level-0 messages, each forwarding 3 hops.
        let mut expected = 0usize;
        for i in 0..SEEDS {
            barrier.created(0);
            txs[(i % WORKERS as u32) as usize].send((0, 3)).unwrap();
            expected += 4; // each seed is processed once per hop level 0..=3
        }
        barrier.wait_complete();
        // At completion every created message must have been processed.
        assert_eq!(processed.load(Ordering::SeqCst), expected);
        assert_eq!(barrier.in_flight(), 0);
        done.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn deep_levels_saturate_in_threaded_barrier() {
        let b = TieredBarrier::new();
        b.created(250);
        b.created(MAX_LEVELS as u8);
        assert!(!b.is_complete());
        assert_eq!(b.in_flight(), 2);
        b.consumed(MAX_LEVELS as u8);
        b.consumed(250);
        assert!(b.is_complete());
        assert_eq!(b.level_overflows(), 2);
    }

    #[test]
    fn watchdog_classifies_lost_messages() {
        let b = TieredBarrier::new();
        b.created(0); // never consumed: models a dropped message
        let err = b
            .wait_complete_timeout(Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, BarrierStall::MessagesLost { in_flight: 1 });
        assert!(err.to_string().contains("lost"));
    }

    #[test]
    fn watchdog_classifies_wedged_pes() {
        let b = TieredBarrier::new();
        b.enter_busy(); // never exits: models a wedged worker
        let err = b
            .wait_complete_timeout(Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, BarrierStall::Wedged { busy_pes: 1 });
        b.exit_busy();
    }

    #[test]
    fn watchdog_tolerates_slow_but_live_traffic() {
        let b = TieredBarrier::new();
        b.created(0);
        let worker = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                // Progress slower than the stall window, but steady:
                // each transition resets the watchdog clock.
                for _ in 0..5 {
                    thread::sleep(Duration::from_millis(5));
                    b.created(1);
                    b.consumed(1);
                }
                thread::sleep(Duration::from_millis(5));
                b.consumed(0);
            })
        };
        b.wait_complete_timeout(Duration::from_millis(250)).unwrap();
        worker.join().unwrap();
        assert!(b.is_complete());
    }

    #[test]
    fn reset_abandons_outstanding_accounting() {
        let b = TieredBarrier::new();
        b.created(0);
        b.created(5);
        b.enter_busy();
        assert!(!b.is_complete());
        b.reset();
        assert!(b.is_complete());
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn injector_stall_delays_but_preserves_accounting() {
        use snap_fault::{FaultInjector, FaultPlan};
        let injector = Arc::new(FaultInjector::new(FaultPlan::seeded(5).stalls(1.0, 10_000)));
        let b = TieredBarrier::with_injector(Arc::clone(&injector));
        for _ in 0..16 {
            b.created(0);
        }
        for _ in 0..16 {
            b.consumed(0);
        }
        assert!(b.is_complete());
        assert!(injector.report().injected_stalls > 0);
    }
}
