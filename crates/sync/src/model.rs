//! Deterministic model of the tiered synchronization scheme.
//!
//! The problem with barrier synchronization in a MIMD marker-propagation
//! machine is the lack of a global view: processing migrates between PEs
//! as markers propagate, and it is not known a priori how many
//! propagations take place or which PEs are involved. SNAP-1's controller
//! must determine that (1) all PEs are idle **and** (2) no markers are in
//! transit in the interconnection network.
//!
//! The *tiered* protocol distinguishes levels of propagation: each PE
//! keeps a marker message counter per level, incremented on process
//! creation and decremented on termination. Propagation has terminated
//! when the processors are idle and every level's counters sum to zero.
//! A *naive* detector that only checks PE idleness falsely reports
//! completion while messages are still in flight — reproduced here as the
//! ablation baseline ([`NaiveSyncModel`]).

use serde::{Deserialize, Serialize};

/// Maximum propagation tiers tracked (deep enough for the 10–15 step
/// paths the paper reports, with margin).
pub const MAX_LEVELS: usize = 64;

/// Deterministic state of the tiered termination detector, as evaluated
/// by the sequence control processor through the AND-tree and counter
/// network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieredSyncModel {
    /// Global creation-minus-termination count per level.
    counters: Vec<i64>,
    /// Idle flag per PE (the AND-tree inputs).
    idle: Vec<bool>,
    /// Completion checks performed (each costs one AND-tree round).
    checks: u64,
    /// Creations/terminations whose level exceeded the tier table and
    /// were accounted in the top tier instead.
    level_overflows: u64,
}

/// The counter index a propagation level maps to: levels beyond the
/// hardware's tier table share the top tier. The termination condition
/// (every counter zero) stays exact — deep levels merely lose per-tier
/// attribution, as the real counter network would.
fn tier(level: u8) -> usize {
    (level as usize).min(MAX_LEVELS - 1)
}

impl TieredSyncModel {
    /// Creates the detector for `pes` processing elements, all idle.
    pub fn new(pes: usize) -> Self {
        TieredSyncModel {
            counters: vec![0; MAX_LEVELS],
            idle: vec![true; pes],
            checks: 0,
            level_overflows: 0,
        }
    }

    /// Records a marker/process creation at `level` (increment before the
    /// message is sent). Levels beyond [`MAX_LEVELS`] saturate into the
    /// top tier.
    pub fn created(&mut self, level: u8) {
        if level as usize >= MAX_LEVELS {
            self.level_overflows += 1;
        }
        self.counters[tier(level)] += 1;
    }

    /// Records a marker/process termination at `level`. Levels beyond
    /// [`MAX_LEVELS`] saturate into the top tier.
    ///
    /// # Panics
    ///
    /// Panics if the counter would go negative — more terminations than
    /// creations indicates a protocol violation.
    pub fn consumed(&mut self, level: u8) {
        if level as usize >= MAX_LEVELS {
            self.level_overflows += 1;
        }
        let c = &mut self.counters[tier(level)];
        assert!(*c > 0, "level {level} terminated more than created");
        *c -= 1;
    }

    /// Operations that saturated into the top tier.
    pub fn level_overflows(&self) -> u64 {
        self.level_overflows
    }

    /// Sets PE `pe`'s idle flag.
    pub fn set_idle(&mut self, pe: usize, idle: bool) {
        self.idle[pe] = idle;
    }

    /// `true` when every PE is idle **and** every level's counter is zero
    /// — the tiered barrier condition.
    pub fn is_complete(&mut self) -> bool {
        self.checks += 1;
        self.idle.iter().all(|&i| i) && self.counters.iter().all(|&c| c == 0)
    }

    /// Messages currently in transit (sum of all level counters).
    pub fn in_flight(&self) -> i64 {
        self.counters.iter().sum()
    }

    /// Number of completion checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }
}

/// The ablation: a detector using only the AND-tree idle signal, with no
/// in-transit accounting. It *falsely* detects completion whenever all
/// PEs happen to be idle while messages sit in the network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NaiveSyncModel {
    idle: Vec<bool>,
}

impl NaiveSyncModel {
    /// Creates the naive detector for `pes` PEs, all idle.
    pub fn new(pes: usize) -> Self {
        NaiveSyncModel {
            idle: vec![true; pes],
        }
    }

    /// Sets PE `pe`'s idle flag.
    pub fn set_idle(&mut self, pe: usize, idle: bool) {
        self.idle[pe] = idle;
    }

    /// `true` when every PE is idle — ignoring in-flight messages.
    pub fn is_complete(&self) -> bool {
        self.idle.iter().all(|&i| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn complete_only_when_idle_and_drained() {
        let mut sync = TieredSyncModel::new(2);
        assert!(sync.is_complete());
        // PE 0 starts propagating: creates a level-0 marker for PE 1.
        sync.set_idle(0, false);
        sync.created(0);
        sync.set_idle(0, true);
        // All PEs idle, but the message is in flight.
        assert!(!sync.is_complete());
        assert_eq!(sync.in_flight(), 1);
        // PE 1 receives and processes it, spawning a level-1 child.
        sync.set_idle(1, false);
        sync.created(1);
        sync.consumed(0);
        sync.set_idle(1, true);
        assert!(!sync.is_complete(), "level-1 child still outstanding");
        sync.consumed(1);
        assert!(sync.is_complete());
        assert_eq!(sync.checks(), 4);
    }

    #[test]
    fn naive_detector_falsely_completes() {
        let mut tiered = TieredSyncModel::new(2);
        let mut naive = NaiveSyncModel::new(2);
        // PE 0 sends a message and goes idle before PE 1 sees it.
        tiered.set_idle(0, false);
        naive.set_idle(0, false);
        tiered.created(0);
        tiered.set_idle(0, true);
        naive.set_idle(0, true);
        assert!(naive.is_complete(), "naive detector fires while in flight");
        assert!(!tiered.is_complete(), "tiered detector does not");
    }

    #[test]
    #[should_panic(expected = "terminated more than created")]
    fn underflow_is_a_protocol_violation() {
        let mut sync = TieredSyncModel::new(1);
        sync.consumed(0);
    }

    #[test]
    fn deep_levels_saturate_into_top_tier() {
        let mut sync = TieredSyncModel::new(1);
        // Levels at and beyond the table share tier MAX_LEVELS - 1;
        // creations and terminations must still balance exactly.
        sync.created(MAX_LEVELS as u8);
        sync.created(200);
        sync.created(u8::MAX);
        assert_eq!(sync.in_flight(), 3);
        assert!(!sync.is_complete());
        sync.consumed(u8::MAX);
        sync.consumed(200);
        assert!(!sync.is_complete());
        sync.consumed(MAX_LEVELS as u8);
        assert!(sync.is_complete());
        assert_eq!(sync.level_overflows(), 6);
        // In-table levels do not count as overflows.
        sync.created((MAX_LEVELS - 1) as u8);
        sync.consumed((MAX_LEVELS - 1) as u8);
        assert_eq!(sync.level_overflows(), 6);
    }

    proptest! {
        /// Random create/consume schedules: the detector reports complete
        /// exactly when the ground-truth outstanding count is zero and
        /// everyone is idle.
        #[test]
        fn prop_matches_ground_truth(ops in proptest::collection::vec((0u8..4, 0usize..4), 0..200)) {
            let mut sync = TieredSyncModel::new(4);
            let mut outstanding = vec![0i64; MAX_LEVELS];
            let mut busy = [false; 4];
            for (level, pe) in ops {
                // Alternate: create if this PE's coin says so, else consume if possible.
                if outstanding[level as usize] > 0 && pe % 2 == 0 {
                    sync.consumed(level);
                    outstanding[level as usize] -= 1;
                } else {
                    sync.created(level);
                    outstanding[level as usize] += 1;
                }
                busy[pe] = !busy[pe];
                sync.set_idle(pe, !busy[pe]);
                let truth =
                    outstanding.iter().all(|&c| c == 0) && busy.iter().all(|&b| !b);
                prop_assert_eq!(sync.is_complete(), truth);
            }
        }
    }
}
