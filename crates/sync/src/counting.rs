//! Counting-based termination detection for fault-free propagation phases.
//!
//! The tiered barrier ([`TieredBarrier`](crate::TieredBarrier)) is the
//! faithful SNAP-1 protocol: per-level counters plus a busy-PE AND-tree,
//! roughly eight shared-atomic transitions per task. When no faults are
//! injected the engine does not need per-level attribution or the
//! AND-tree — quiescence is exactly "every created token was consumed" —
//! so the fast path closes phases with a single shared counter instead:
//! two atomic transitions per task.
//!
//! The no-false-termination invariant carries over unchanged: a creation
//! is counted **before** the token (message or queued task) becomes
//! visible to any other thread, and consumption is counted only **after**
//! the token is fully processed, including counting any children it
//! created. All operations hit one atomic word, so they have a single
//! total modification order; if the controller reads zero, every create
//! that happened before any consume it paired with has been matched — no
//! token can still be in flight.
//!
//! The word packs two fields to keep the watchdog honest with one RMW
//! per operation: the low 32 bits hold the net in-flight count and the
//! high 32 bits a monotone total-created count. Net zero means quiescent;
//! a frozen total while tokens remain in flight means a stall.

use crate::threaded::BarrierStall;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One `created` bumps both the monotone high half and the net low half.
const CREATED: u64 = (1 << 32) | 1;
/// Mask selecting the net in-flight count.
const NET_MASK: u64 = 0xFFFF_FFFF;

/// Shared phase-closure counter for the fault-free threaded fast path.
#[derive(Debug, Default)]
pub struct CountingGate {
    /// High 32 bits: total tokens ever created (monotone, watchdog clock).
    /// Low 32 bits: tokens currently in flight.
    word: AtomicU64,
}

impl CountingGate {
    /// Creates the gate with no tokens outstanding.
    pub fn new() -> Arc<Self> {
        Arc::new(CountingGate::default())
    }

    /// Creates the gate with the monotone created-total pre-seeded at
    /// `total` and nothing in flight, so tests can place the high half
    /// right at the u32 wrap without 2^32 warm-up operations. The wrap
    /// is benign by construction — the carry falls off the top of the
    /// u64 and can never reach the low in-flight half — and the
    /// property tests in `tests/counting_props.rs` pin that down.
    #[doc(hidden)]
    pub fn seeded_created_total(total: u32) -> Arc<Self> {
        Arc::new(CountingGate {
            word: AtomicU64::new((total as u64) << 32),
        })
    }

    /// Records a token creation. Call **before** publishing the token.
    pub fn created(&self) {
        self.word.fetch_add(CREATED, Ordering::SeqCst);
    }

    /// Records `n` token creations in one transition. Call **before**
    /// publishing any of them.
    pub fn created_n(&self, n: u64) {
        debug_assert!(n < 1 << 32, "batch too large for the packed word");
        self.word
            .fetch_add(n.wrapping_mul(CREATED), Ordering::SeqCst);
    }

    /// Records a token consumption. Call **after** fully processing the
    /// token, including counting any children it created.
    pub fn consumed(&self) {
        let prev = self.word.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev & NET_MASK > 0, "token consumed more than created");
    }

    /// Tokens currently accounted as in flight.
    pub fn in_flight(&self) -> i64 {
        (self.word.load(Ordering::SeqCst) & NET_MASK) as i64
    }

    /// Total tokens ever created (wraps at 2^32; only deltas matter).
    pub fn created_total(&self) -> u64 {
        self.word.load(Ordering::SeqCst) >> 32
    }

    /// Snapshot check: every created token has been consumed.
    pub fn is_quiescent(&self) -> bool {
        self.word.load(Ordering::SeqCst) & NET_MASK == 0
    }

    /// Controller-side blocking wait (spin with yields) until quiescent.
    /// Unbounded: prefer [`wait_quiescent_timeout`](Self::wait_quiescent_timeout)
    /// when a hang should be diagnosed rather than waited out.
    pub fn wait_quiescent(&self) {
        while !self.is_quiescent() {
            std::thread::yield_now();
        }
    }

    /// Waits for quiescence with a watchdog: returns `Ok(())` once the
    /// in-flight count reaches zero, or [`BarrierStall::MessagesLost`]
    /// when no token has been created *or* consumed for `stall_after`
    /// while some remain unconsumed. Progress resets the clock, so
    /// long-but-live propagations never trip it. The packed word makes
    /// the proxy exact: a creation bumps the monotone high half, and
    /// with zero creations the net count only decreases — so an
    /// unchanged word means no operation happened at all.
    ///
    /// # Errors
    ///
    /// [`BarrierStall::MessagesLost`] carrying the stuck in-flight count.
    /// The fast path has no busy/AND-tree notion, so a wedged worker
    /// holding unconsumed tokens classifies the same way.
    pub fn wait_quiescent_timeout(&self, stall_after: Duration) -> Result<(), BarrierStall> {
        let mut last_word = self.word.load(Ordering::SeqCst);
        let mut last_progress = Instant::now();
        loop {
            let word = self.word.load(Ordering::SeqCst);
            if word & NET_MASK == 0 {
                return Ok(());
            }
            if word != last_word {
                last_word = word;
                last_progress = Instant::now();
            } else if last_progress.elapsed() >= stall_after {
                return Err(BarrierStall::MessagesLost {
                    in_flight: (word & NET_MASK) as i64,
                });
            }
            std::thread::yield_now();
        }
    }

    /// Zeroes the in-flight count, abandoning outstanding accounting.
    /// Only call from the controller while no worker is touching the
    /// gate.
    pub fn reset(&self) {
        self.word.fetch_and(!NET_MASK, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn starts_quiescent() {
        let g = CountingGate::new();
        assert!(g.is_quiescent());
        assert_eq!(g.in_flight(), 0);
        assert_eq!(g.created_total(), 0);
    }

    #[test]
    fn in_flight_token_blocks_quiescence() {
        let g = CountingGate::new();
        g.created();
        assert!(!g.is_quiescent());
        assert_eq!(g.in_flight(), 1);
        g.consumed();
        assert!(g.is_quiescent());
        assert_eq!(g.created_total(), 1);
    }

    #[test]
    fn batch_creation_counts_each_token() {
        let g = CountingGate::new();
        g.created_n(5);
        assert_eq!(g.in_flight(), 5);
        assert_eq!(g.created_total(), 5);
        for _ in 0..5 {
            g.consumed();
        }
        assert!(g.is_quiescent());
    }

    /// End-to-end: worker threads forward tokens in chains; the
    /// controller's wait must not return until every token has been
    /// fully processed.
    #[test]
    fn wait_quiescent_never_fires_early() {
        const WORKERS: usize = 4;
        const SEEDS: u32 = 200;
        let gate = CountingGate::new();
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..WORKERS).map(|_| unbounded::<u32>()).unzip();
        let processed = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut handles = Vec::new();
        for (w, rx) in rxs.into_iter().enumerate() {
            let gate = Arc::clone(&gate);
            let txs = txs.clone();
            let processed = Arc::clone(&processed);
            let done = Arc::clone(&done);
            handles.push(thread::spawn(move || loop {
                match rx.try_recv() {
                    Ok(hop) => {
                        if hop > 0 {
                            let next = (w + 1) % WORKERS;
                            gate.created();
                            txs[next].send(hop - 1).unwrap();
                        }
                        processed.fetch_add(1, Ordering::SeqCst);
                        gate.consumed();
                    }
                    Err(_) => {
                        if done.load(Ordering::SeqCst) {
                            return;
                        }
                        thread::yield_now();
                    }
                }
            }));
        }

        let mut expected = 0usize;
        for i in 0..SEEDS {
            gate.created();
            txs[(i % WORKERS as u32) as usize].send(3).unwrap();
            expected += 4; // each seed is processed once per hop 3..=0
        }
        gate.wait_quiescent();
        assert_eq!(processed.load(Ordering::SeqCst), expected);
        assert_eq!(gate.in_flight(), 0);
        done.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn watchdog_reports_stuck_tokens() {
        let g = CountingGate::new();
        g.created();
        g.created();
        let err = g
            .wait_quiescent_timeout(Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, BarrierStall::MessagesLost { in_flight: 2 });
    }

    #[test]
    fn watchdog_tolerates_slow_but_live_traffic() {
        let g = CountingGate::new();
        g.created();
        let worker = {
            let g = Arc::clone(&g);
            thread::spawn(move || {
                for _ in 0..5 {
                    thread::sleep(Duration::from_millis(5));
                    g.created();
                    g.consumed();
                }
                thread::sleep(Duration::from_millis(5));
                g.consumed();
            })
        };
        g.wait_quiescent_timeout(Duration::from_millis(250))
            .unwrap();
        worker.join().unwrap();
        assert!(g.is_quiescent());
    }

    #[test]
    fn reset_abandons_outstanding_accounting() {
        let g = CountingGate::new();
        g.created();
        g.created();
        assert!(!g.is_quiescent());
        g.reset();
        assert!(g.is_quiescent());
        // The monotone created-total survives the reset.
        assert_eq!(g.created_total(), 2);
    }
}
