//! The calibrated cost model.
//!
//! Absolute hardware timings cannot be reproduced on a simulator, so the
//! model is calibrated to the *reported* characteristics of the
//! prototype and the figure shapes of Section IV:
//!
//! * SET/CLEAR instructions take ≈ 50 µs; `PROPAGATE` takes several
//!   hundred µs depending on path length (§IV "Processing Time");
//! * the hypercube moves an 8-bit slice every 80 ns port-to-port, so a
//!   64-bit message costs 640 ns per hop (§III-B);
//! * instruction broadcast is small and constant; message communication
//!   grows with hop count (∝ log N); barrier synchronization is
//!   proportional to the PE count with a small coefficient; and
//!   `COLLECT` is proportional to the cluster count with the largest
//!   coefficient (Fig. 21).
//!
//! All durations are nanoseconds of simulated time.

use serde::{Deserialize, Serialize};
use snap_mem::SimTime;

/// Per-operation costs of the machine, in nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Broadcasting one SNAP instruction over the global bus (constant
    /// in the number of clusters).
    pub broadcast_ns: SimTime,
    /// PU dequeue + decode + task setup per instruction.
    pub pu_decode_ns: SimTime,
    /// One 32-bit word of marker-status-table manipulation by an MU
    /// (the inner loop of boolean and set/clear instructions).
    pub word_op_ns: SimTime,
    /// Updating one complex-marker value slot (floating point load, op,
    /// store).
    pub value_op_ns: SimTime,
    /// Indexing one relation-table segment (16-slot row fetch).
    pub rel_lookup_ns: SimTime,
    /// Examining one relation slot against the propagation rule.
    pub link_scan_ns: SimTime,
    /// Setting a marker (status bit + node-table update) at a local
    /// destination during propagation.
    pub marker_set_ns: SimTime,
    /// CU service time per inter-cluster message (disassemble, DMA,
    /// enqueue).
    pub cu_service_ns: SimTime,
    /// Wire time per hypercube hop for one 64-bit message (8 bytes ×
    /// 80 ns byte time).
    pub hop_ns: SimTime,
    /// Fixed component of a barrier synchronization (AND-tree settle +
    /// controller check).
    pub sync_base_ns: SimTime,
    /// Per-PE component of a barrier (counter aggregation) — the small
    /// linear dependency of Fig. 21.
    pub sync_per_pe_ns: SimTime,
    /// Fixed controller cost of a COLLECT operation.
    pub collect_base_ns: SimTime,
    /// Polling one cluster's dual-port memory during COLLECT — the
    /// dominant, cluster-proportional overhead of Fig. 21.
    pub collect_per_cluster_ns: SimTime,
    /// Moving one collected item to the controller.
    pub collect_per_item_ns: SimTime,
    /// Controller-side work per node-maintenance operation.
    pub maintenance_ns: SimTime,
    /// Controller program-flow (PCP) cost per instruction.
    pub pcp_ns: SimTime,
}

impl CostModel {
    /// The default calibration for 25 MHz array PEs and a 32 MHz
    /// controller.
    pub fn snap1() -> Self {
        CostModel {
            broadcast_ns: 5_000,
            pu_decode_ns: 18_000,
            word_op_ns: 900,
            value_op_ns: 400,
            rel_lookup_ns: 2_500,
            link_scan_ns: 450,
            marker_set_ns: 1_100,
            cu_service_ns: 1_500,
            hop_ns: 640,
            sync_base_ns: 12_000,
            sync_per_pe_ns: 450,
            collect_base_ns: 25_000,
            collect_per_cluster_ns: 18_000,
            collect_per_item_ns: 1_500,
            maintenance_ns: 20_000,
            pcp_ns: 1_500,
        }
    }

    /// Cost of a word-parallel global marker operation over `words`
    /// status words (executed by one MU).
    pub fn global_op_ns(&self, words: usize) -> SimTime {
        self.pu_decode_ns + words as SimTime * self.word_op_ns
    }

    /// Cost for an MU to expand one active node during propagation:
    /// `segments` relation-table rows fetched, `links` slots examined,
    /// `local_sets` local marker activations performed.
    pub fn expand_ns(&self, segments: usize, links: usize, local_sets: usize) -> SimTime {
        segments as SimTime * self.rel_lookup_ns
            + links as SimTime * self.link_scan_ns
            + local_sets as SimTime * (self.marker_set_ns + self.value_op_ns)
    }

    /// End-to-end wire+service latency for a message crossing `hops`
    /// hypercube hops (each intermediate CU relays it).
    pub fn message_ns(&self, hops: usize) -> SimTime {
        hops as SimTime * (self.hop_ns + self.cu_service_ns)
    }

    /// Barrier synchronization overhead for an array of `pes` PEs.
    pub fn barrier_ns(&self, pes: usize) -> SimTime {
        self.sync_base_ns + pes as SimTime * self.sync_per_pe_ns
    }

    /// COLLECT overhead for `clusters` clusters returning `items`
    /// results in total.
    pub fn collect_ns(&self, clusters: usize, items: usize) -> SimTime {
        self.collect_base_ns
            + clusters as SimTime * self.collect_per_cluster_ns
            + items as SimTime * self.collect_per_item_ns
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::snap1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_lands_near_50_microseconds() {
        // A 1K-node cluster region has 32 status words.
        let c = CostModel::snap1();
        let ns = c.global_op_ns(32);
        assert!(
            (40_000..=60_000).contains(&ns),
            "set/clear ≈ 50 µs, got {ns} ns"
        );
    }

    #[test]
    fn propagate_step_costs_dominate_word_ops() {
        let c = CostModel::snap1();
        // Expanding a node with 8 links, 4 of them matching locally.
        let step = c.expand_ns(1, 8, 4);
        assert!(step > c.word_op_ns * 8);
        // A 12-step path over such nodes runs to hundreds of µs.
        let path = step * 12 + c.pu_decode_ns;
        assert!(
            (100_000..=900_000).contains(&path),
            "propagate path ≈ several hundred µs, got {path} ns"
        );
    }

    #[test]
    fn message_latency_matches_80ns_byte_time() {
        let c = CostModel::snap1();
        assert_eq!(c.hop_ns, 8 * 80);
        assert_eq!(c.message_ns(3), 3 * (640 + c.cu_service_ns));
        assert_eq!(c.message_ns(0), 0);
    }

    #[test]
    fn overhead_orderings_match_fig21() {
        let c = CostModel::snap1();
        // At the evaluation scale (16 clusters, 72 PEs, ~50 items):
        let broadcast = c.broadcast_ns;
        let comm = c.message_ns(2);
        let sync = c.barrier_ns(72);
        let collect = c.collect_ns(16, 50);
        assert!(broadcast < comm + sync, "broadcast is the small constant");
        assert!(collect > sync, "collect dominates");
        assert!(collect > comm);
    }
}
