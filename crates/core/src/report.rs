//! Run results and measurements.
//!
//! A [`RunReport`] is what a machine returns after executing a program:
//! the retrieval results the application asked for plus the integrated
//! measurement data the paper's evaluation is built from — per-class
//! instruction counts and times, marker-traffic statistics per barrier
//! synchronization, and the four parallel-overhead components of Fig. 21.

use serde::{Deserialize, Serialize};
use snap_fault::FaultReport;
use snap_isa::InstrClass;
use snap_kb::{Color, Link, MarkerValue, NodeId};
use snap_mem::SimTime;
use snap_obs::TraceReport;
use std::collections::BTreeMap;

/// The output of one retrieval (`COLLECT-*`) instruction, in program
/// order. Node lists are sorted by ID for engine-independent comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CollectOutput {
    /// `COLLECT-MARKER`: marked nodes with their complex-marker payloads.
    Nodes(Vec<(NodeId, Option<MarkerValue>)>),
    /// `COLLECT-RELATION`: links of the requested type at marked nodes.
    Links(Vec<(NodeId, Link)>),
    /// `COLLECT-COLOR`: colors of marked nodes.
    Colors(Vec<(NodeId, Color)>),
}

impl CollectOutput {
    /// Number of collected items.
    pub fn len(&self) -> usize {
        match self {
            CollectOutput::Nodes(v) => v.len(),
            CollectOutput::Links(v) => v.len(),
            CollectOutput::Colors(v) => v.len(),
        }
    }

    /// `true` when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node IDs in this output (for result comparison across
    /// engines).
    pub fn node_ids(&self) -> Vec<NodeId> {
        match self {
            CollectOutput::Nodes(v) => v.iter().map(|(n, _)| *n).collect(),
            CollectOutput::Links(v) => v.iter().map(|(n, _)| *n).collect(),
            CollectOutput::Colors(v) => v.iter().map(|(n, _)| *n).collect(),
        }
    }
}

/// The four components of parallel overhead (Fig. 21).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    /// Instruction broadcast time (configuration phase).
    pub broadcast_ns: SimTime,
    /// Inter-PE message communication time (propagation phase).
    pub communication_ns: SimTime,
    /// Barrier synchronization time (propagation → accumulation
    /// transition).
    pub sync_ns: SimTime,
    /// Result collection time (accumulation phase).
    pub collect_ns: SimTime,
}

impl OverheadBreakdown {
    /// Sum of all four components.
    pub fn total_ns(&self) -> SimTime {
        self.broadcast_ns + self.communication_ns + self.sync_ns + self.collect_ns
    }
}

/// Marker-traffic statistics (Fig. 8).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Inter-cluster marker activation messages sent between each pair
    /// of consecutive barrier synchronizations, in barrier order.
    pub messages_per_sync: Vec<u64>,
    /// Total inter-cluster messages.
    pub total_messages: u64,
    /// Individual marker tasks carried by those messages. The threaded
    /// engine coalesces same-destination tasks into one envelope, so
    /// `tasks_sent >= total_messages` there; engines without batching
    /// leave this zero.
    #[serde(default)]
    pub tasks_sent: u64,
    /// Total hypercube hops crossed.
    pub total_hops: u64,
    /// Total intra-cluster marker activations (no network traversal).
    pub local_activations: u64,
    /// Sends that found the CU outbox full and had to wait for a
    /// delivery to free a slot (burst overflow).
    pub blocked_sends: u64,
}

impl TrafficStats {
    /// Mean messages per synchronization point (the paper reports
    /// 11.49 for parsing).
    pub fn mean_messages_per_sync(&self) -> f64 {
        if self.messages_per_sync.is_empty() {
            0.0
        } else {
            self.messages_per_sync.iter().sum::<u64>() as f64 / self.messages_per_sync.len() as f64
        }
    }

    /// Largest burst observed at any synchronization point.
    pub fn max_burst(&self) -> u64 {
        self.messages_per_sync.iter().copied().max().unwrap_or(0)
    }
}

/// Everything measured during one program execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total simulated execution time (ns). Zero for engines that only
    /// measure wall-clock time.
    pub total_ns: SimTime,
    /// Wall-clock execution time (ns), where measured (threaded engine).
    pub wall_ns: u128,
    /// Instructions executed, per class.
    pub class_counts: BTreeMap<InstrClass, u64>,
    /// Simulated time attributed to each class (ns).
    pub class_time_ns: BTreeMap<InstrClass, SimTime>,
    /// Retrieval results, in program order.
    pub collects: Vec<CollectOutput>,
    /// Parallel-overhead components.
    pub overhead: OverheadBreakdown,
    /// Marker traffic statistics.
    pub traffic: TrafficStats,
    /// Number of barrier synchronizations performed.
    pub barriers: u64,
    /// Total node expansions performed during propagation (a measure of
    /// propagation work).
    pub expansions: u64,
    /// Source activations (α) of each `PROPAGATE` executed, in issue
    /// order.
    pub alpha_per_propagate: Vec<u64>,
    /// Deepest propagation tier reached (longest path traversed).
    pub max_propagation_depth: u8,
    /// Events recorded on the performance-collection network (when
    /// instrumentation is enabled).
    pub perf_events: u64,
    /// Instrumentation records lost to collector FIFO overflow.
    pub perf_dropped: u64,
    /// What the fault subsystem injected and how the engine coped
    /// (empty for fault-free runs).
    pub faults: FaultReport,
    /// Structured trace aggregates (empty unless the machine was
    /// configured with tracing and `snap-core` was built with the `obs`
    /// feature).
    pub trace: TraceReport,
    /// Locality/balance statistics of the knowledge-base partition the
    /// run used (`None` only in reports predating the field).
    #[serde(default)]
    pub partition: Option<snap_kb::PartitionStats>,
    /// Fingerprint of the schedule decisions the run drew (zero under
    /// the default FIFO strategy, which draws none). For the
    /// deterministic engines (sequential, DES) the same seed must
    /// reproduce the same digest — the fuzz harness's replay check. The
    /// threaded engine records only its controller stream (worker
    /// decision consumption is wall-clock-dependent).
    #[serde(default)]
    pub schedule_digest: u64,
}

impl RunReport {
    /// Number of instructions executed in total.
    pub fn instruction_count(&self) -> u64 {
        self.class_counts.values().sum()
    }

    /// Count of instructions in `class`.
    pub fn count_of(&self, class: InstrClass) -> u64 {
        self.class_counts.get(&class).copied().unwrap_or(0)
    }

    /// Simulated time attributed to `class`, ns.
    pub fn time_of(&self, class: InstrClass) -> SimTime {
        self.class_time_ns.get(&class).copied().unwrap_or(0)
    }

    /// Fraction of total attributed time spent in `class` (0..=1).
    pub fn time_fraction(&self, class: InstrClass) -> f64 {
        let total: SimTime = self.class_time_ns.values().sum();
        if total == 0 {
            0.0
        } else {
            self.time_of(class) as f64 / total as f64
        }
    }

    /// Fraction of instructions in `class` (0..=1).
    pub fn count_fraction(&self, class: InstrClass) -> f64 {
        let total = self.instruction_count();
        if total == 0 {
            0.0
        } else {
            self.count_of(class) as f64 / total as f64
        }
    }

    /// Mean α (source activations per propagate).
    pub fn mean_alpha(&self) -> f64 {
        if self.alpha_per_propagate.is_empty() {
            0.0
        } else {
            self.alpha_per_propagate.iter().sum::<u64>() as f64
                / self.alpha_per_propagate.len() as f64
        }
    }

    /// Records an executed instruction of `class` taking `ns`.
    pub fn record(&mut self, class: InstrClass, ns: SimTime) {
        *self.class_counts.entry(class).or_insert(0) += 1;
        *self.class_time_ns.entry(class).or_insert(0) += ns;
    }

    /// Resets a pooled report in place for the next query, keeping
    /// every allocation warm: vectors clear but keep capacity, and the
    /// class maps **zero their values instead of dropping keys** — so
    /// steady-state [`RunReport::record`] hits existing entries and
    /// allocates no tree nodes. Stale zero-count keys are purged by
    /// [`RunReport::seal_for_pool`] after the run (removal frees, it
    /// never allocates), keeping the finished report structurally equal
    /// to a freshly built one. The `partition` field is deliberately
    /// preserved: it describes the serving snapshot, which outlives the
    /// query.
    pub fn reset_for_pool(&mut self) {
        self.total_ns = 0;
        self.wall_ns = 0;
        for v in self.class_counts.values_mut() {
            *v = 0;
        }
        for v in self.class_time_ns.values_mut() {
            *v = 0;
        }
        self.collects.clear();
        self.overhead = OverheadBreakdown::default();
        self.traffic.messages_per_sync.clear();
        self.traffic.total_messages = 0;
        self.traffic.tasks_sent = 0;
        self.traffic.total_hops = 0;
        self.traffic.local_activations = 0;
        self.traffic.blocked_sends = 0;
        self.barriers = 0;
        self.expansions = 0;
        self.alpha_per_propagate.clear();
        self.max_propagation_depth = 0;
        self.perf_events = 0;
        self.perf_dropped = 0;
        // Rebuilding these defaults allocates (the trace report holds
        // histograms); an untouched one is already equal to default, so
        // only replace what a run actually wrote into.
        if !self.faults.is_empty() {
            self.faults = FaultReport::default();
        }
        if !self.trace.is_empty() {
            self.trace = TraceReport::default();
        }
        self.schedule_digest = 0;
    }

    /// Drops the class-map keys a pooled run never touched, making the
    /// report byte-equal to one built from `RunReport::default()` —
    /// the other half of [`RunReport::reset_for_pool`]'s contract.
    pub fn seal_for_pool(&mut self) {
        let RunReport {
            class_counts,
            class_time_ns,
            ..
        } = self;
        class_counts.retain(|_, v| *v > 0);
        class_time_ns.retain(|c, _| class_counts.contains_key(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_counts_and_time() {
        let mut r = RunReport::default();
        r.record(InstrClass::Propagate, 100);
        r.record(InstrClass::Propagate, 50);
        r.record(InstrClass::Boolean, 50);
        assert_eq!(r.instruction_count(), 3);
        assert_eq!(r.count_of(InstrClass::Propagate), 2);
        assert_eq!(r.time_of(InstrClass::Propagate), 150);
        assert!((r.time_fraction(InstrClass::Propagate) - 0.75).abs() < 1e-12);
        assert!((r.count_fraction(InstrClass::Boolean) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_summary() {
        let t = TrafficStats {
            messages_per_sync: vec![5, 30, 1],
            total_messages: 36,
            tasks_sent: 36,
            total_hops: 50,
            local_activations: 100,
            blocked_sends: 0,
        };
        assert_eq!(t.mean_messages_per_sync(), 12.0);
        assert_eq!(t.max_burst(), 30);
    }

    #[test]
    fn collect_output_accessors() {
        let c = CollectOutput::Nodes(vec![(NodeId(3), None), (NodeId(5), None)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.node_ids(), vec![NodeId(3), NodeId(5)]);
    }

    #[test]
    fn overhead_total() {
        let o = OverheadBreakdown {
            broadcast_ns: 1,
            communication_ns: 2,
            sync_ns: 3,
            collect_ns: 4,
        };
        assert_eq!(o.total_ns(), 10);
    }

    #[test]
    fn pooled_reset_and_seal_reproduce_a_fresh_report() {
        let mut pooled = RunReport::default();
        pooled.record(InstrClass::Propagate, 100);
        pooled.record(InstrClass::Boolean, 25);
        pooled.collects.push(CollectOutput::Nodes(vec![]));
        pooled.traffic.local_activations = 9;
        pooled.alpha_per_propagate.push(4);
        pooled.total_ns = 125;
        // Next query touches a different class mix: the Boolean keys go
        // stale at zero and must be purged by seal.
        pooled.reset_for_pool();
        pooled.record(InstrClass::Search, 10);
        pooled.record(InstrClass::Propagate, 70);
        pooled.total_ns = 80;
        pooled.seal_for_pool();
        let mut fresh = RunReport::default();
        fresh.record(InstrClass::Search, 10);
        fresh.record(InstrClass::Propagate, 70);
        fresh.total_ns = 80;
        assert_eq!(pooled, fresh);
    }

    #[test]
    fn pooled_reset_preserves_partition() {
        let mut r = RunReport {
            partition: Some(snap_kb::PartitionStats {
                scheme: snap_kb::PartitionScheme::RoundRobin,
                clusters: 1,
                nodes: 0,
                total_links: 0,
                cut_links: 0,
                cut_fraction: 0.0,
                max_load: 0,
                load_balance: 1.0,
                per_cluster: Vec::new(),
            }),
            ..RunReport::default()
        };
        r.reset_for_pool();
        assert!(r.partition.is_some(), "partition outlives the query");
    }

    #[test]
    fn empty_report_fractions_are_zero() {
        let r = RunReport::default();
        assert_eq!(r.time_fraction(InstrClass::Propagate), 0.0);
        assert_eq!(r.count_fraction(InstrClass::Propagate), 0.0);
        assert_eq!(r.mean_alpha(), 0.0);
    }
}
