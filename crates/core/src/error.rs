//! Error type for machine construction and program execution.

use core::fmt;
use snap_kb::KbError;

/// Errors raised while loading a network or executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A knowledge-base operation failed.
    Kb(KbError),
    /// The program referenced a rule or function token the machine does
    /// not have microcode for.
    UnknownToken {
        /// The offending token.
        token: u8,
    },
    /// A cluster thread of the threaded engine failed (panic, poisoned
    /// channel, or an exhausted retransmission budget).
    WorkerFailed {
        /// The failing cluster index.
        cluster: usize,
        /// What went wrong, for the operator.
        cause: String,
    },
    /// The tiered barrier's watchdog declared a propagation phase stuck
    /// and recovery could not unstick it.
    BarrierStalled {
        /// The watchdog's classification of the stall.
        reason: String,
    },
    /// A shared-snapshot run ([`crate::Snap1::run_shared`]) was given a
    /// program containing a node-maintenance instruction, which would
    /// have to mutate the shared network.
    MaintenanceOnShared {
        /// Mnemonic of the offending instruction.
        mnemonic: &'static str,
    },
    /// A shared-snapshot run was given a network with staged (unflushed)
    /// links; callers must [`snap_kb::SemanticNetwork::flush_links`]
    /// before freezing the snapshot behind an `Arc`.
    SharedStagedLinks {
        /// Number of staged links found.
        staged: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Kb(e) => write!(f, "knowledge base error: {e}"),
            CoreError::UnknownToken { token } => {
                write!(f, "no microcode downloaded for token {token}")
            }
            CoreError::WorkerFailed { cluster, cause } => {
                write!(f, "cluster {cluster} worker thread failed: {cause}")
            }
            CoreError::BarrierStalled { reason } => {
                write!(f, "barrier synchronization stalled: {reason}")
            }
            CoreError::MaintenanceOnShared { mnemonic } => {
                write!(
                    f,
                    "maintenance instruction {mnemonic} cannot run against a shared \
                     network snapshot; use Snap1::run with exclusive access"
                )
            }
            CoreError::SharedStagedLinks { staged } => {
                write!(
                    f,
                    "shared network snapshot has {staged} staged link(s); call \
                     flush_links() before sharing it"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Kb(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KbError> for CoreError {
    fn from(e: KbError) -> Self {
        CoreError::Kb(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_kb::NodeId;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::from(KbError::UnknownNode(NodeId(4)));
        assert_eq!(e.to_string(), "knowledge base error: unknown node n4");
        assert!(e.source().is_some());
        let e = CoreError::UnknownToken { token: 9 };
        assert!(e.to_string().contains('9'));
        assert!(e.source().is_none());
        let e = CoreError::WorkerFailed {
            cluster: 3,
            cause: "injected panic".into(),
        };
        assert!(e.to_string().contains("cluster 3"));
        assert!(e.to_string().contains("injected panic"));
        let e = CoreError::BarrierStalled {
            reason: "2 in-flight messages lost".into(),
        };
        assert!(e.to_string().contains("stalled"));
        let e = CoreError::MaintenanceOnShared { mnemonic: "CREATE" };
        assert!(e.to_string().contains("CREATE"));
        assert!(e.to_string().contains("shared"));
        let e = CoreError::SharedStagedLinks { staged: 3 };
        assert!(e.to_string().contains("3 staged"));
    }
}
