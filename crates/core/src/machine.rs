//! The machine facade: configure once, load a knowledge base, run
//! programs.

use crate::config::{EngineKind, MachineConfig};
use crate::cost::CostModel;
use crate::error::CoreError;
use crate::report::RunReport;
use snap_isa::Program;
use snap_kb::{PartitionScheme, SemanticNetwork};

/// A configured SNAP-1 machine.
///
/// # Examples
///
/// ```
/// use snap_core::Snap1;
/// use snap_isa::{Program, PropRule, StepFunc};
/// use snap_kb::{Color, Marker, NetworkConfig, RelationType, SemanticNetwork};
///
/// let mut net = SemanticNetwork::new(NetworkConfig::default());
/// let a = net.add_named_node("a", Color(1))?;
/// let b = net.add_named_node("b", Color(2))?;
/// net.add_link(a, RelationType(0), 1.0, b)?;
///
/// let program = Program::builder()
///     .search_color(Color(1), Marker::binary(0), 0.0)
///     .propagate(Marker::binary(0), Marker::binary(1),
///                PropRule::Star(RelationType(0)), StepFunc::Identity)
///     .collect_marker(Marker::binary(1))
///     .build();
///
/// let machine = Snap1::builder().clusters(4).build();
/// let report = machine.run(&mut net, &program)?;
/// assert_eq!(report.collects[0].node_ids(), vec![b]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Snap1 {
    config: MachineConfig,
    cost: CostModel,
    engine: EngineKind,
}

impl Snap1 {
    /// A machine with the paper's evaluation configuration (16 clusters,
    /// 72 PEs) on the discrete-event engine.
    pub fn new() -> Self {
        Snap1 {
            config: MachineConfig::snap1_eval(),
            cost: CostModel::snap1(),
            engine: EngineKind::Des,
        }
    }

    /// Starts a builder.
    pub fn builder() -> Snap1Builder {
        Snap1Builder::default()
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The machine's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The engine this machine executes on.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Executes `program` against `network`, returning the measured
    /// report. The network is borrowed mutably because node-maintenance
    /// instructions edit it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for invalid marker registers, unknown nodes,
    /// or missing links referenced by the program.
    pub fn run(
        &self,
        network: &mut SemanticNetwork,
        program: &Program,
    ) -> Result<RunReport, CoreError> {
        match self.engine {
            EngineKind::Sequential => {
                crate::engine::sequential::run(&self.config, &self.cost, network, program)
            }
            EngineKind::Des => crate::engine::des::run(&self.config, &self.cost, network, program),
            EngineKind::Threaded => crate::engine::threaded::run(&self.config, network, program),
        }
    }

    /// Executes a maintenance-free `program` against a shared network
    /// snapshot, without cloning it. This is the serving entry point:
    /// any number of callers may run programs against one `Arc`'d
    /// network concurrently, each getting an isolated report.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MaintenanceOnShared`] if the program contains
    /// a node-maintenance instruction (those must go through
    /// [`Snap1::run`] with exclusive access),
    /// [`CoreError::SharedStagedLinks`] if the snapshot was frozen with
    /// staged (unflushed) links, and otherwise the same errors as
    /// [`Snap1::run`].
    ///
    /// # Examples
    ///
    /// ```
    /// use snap_core::Snap1;
    /// use snap_isa::{Program, PropRule, StepFunc};
    /// use snap_kb::{Color, Marker, NetworkConfig, RelationType, SemanticNetwork};
    /// use std::sync::Arc;
    ///
    /// let mut net = SemanticNetwork::new(NetworkConfig::default());
    /// let a = net.add_named_node("a", Color(1))?;
    /// let b = net.add_named_node("b", Color(2))?;
    /// net.add_link(a, RelationType(0), 1.0, b)?;
    /// net.flush_links();
    /// let net = Arc::new(net);
    ///
    /// let program = Program::builder()
    ///     .search_color(Color(1), Marker::binary(0), 0.0)
    ///     .propagate(Marker::binary(0), Marker::binary(1),
    ///                PropRule::Star(RelationType(0)), StepFunc::Identity)
    ///     .collect_marker(Marker::binary(1))
    ///     .build();
    ///
    /// let machine = Snap1::builder().clusters(4).build();
    /// let report = machine.run_shared(&net, &program)?;
    /// assert_eq!(report.collects[0].node_ids(), vec![b]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn run_shared(
        &self,
        network: &std::sync::Arc<SemanticNetwork>,
        program: &Program,
    ) -> Result<RunReport, CoreError> {
        if let Some(instr) = program
            .instructions()
            .iter()
            .find(|i| i.class() == snap_isa::InstrClass::Maintenance)
        {
            return Err(CoreError::MaintenanceOnShared {
                mnemonic: instr.mnemonic(),
            });
        }
        let staged = network.staged_link_count();
        if staged > 0 {
            return Err(CoreError::SharedStagedLinks { staged });
        }
        match self.engine {
            EngineKind::Sequential => {
                crate::engine::sequential::run_shared(&self.config, &self.cost, network, program)
            }
            EngineKind::Des => {
                crate::engine::des::run_shared(&self.config, &self.cost, network, program)
            }
            EngineKind::Threaded => {
                crate::engine::threaded::run_shared(&self.config, network, program)
            }
        }
    }
}

impl Default for Snap1 {
    fn default() -> Self {
        Self::new()
    }
}

/// Builder for [`Snap1`] machines.
#[derive(Debug, Clone)]
pub struct Snap1Builder {
    config: MachineConfig,
    cost: CostModel,
    engine: EngineKind,
}

impl Default for Snap1Builder {
    fn default() -> Self {
        Snap1Builder {
            config: MachineConfig::snap1_eval(),
            cost: CostModel::snap1(),
            engine: EngineKind::Des,
        }
    }
}

impl Snap1Builder {
    /// Uses a complete configuration.
    pub fn config(mut self, config: MachineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the cluster count (keeps 3 MUs per cluster unless a full
    /// config was given).
    pub fn clusters(mut self, clusters: usize) -> Self {
        self.config = MachineConfig {
            clusters,
            mus: vec![3; clusters],
            ..self.config
        };
        self
    }

    /// Sets a uniform MU count per cluster.
    pub fn mus_per_cluster(mut self, mus: usize) -> Self {
        self.config.mus = vec![mus; self.config.clusters];
        self
    }

    /// Sets the partitioning function.
    pub fn partition(mut self, scheme: PartitionScheme) -> Self {
        self.config.partition = scheme;
        self
    }

    /// Sets the execution engine.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Forces a global synchronization after every propagation wave
    /// (the SIMD-only ablation).
    pub fn lockstep_waves(mut self, lockstep: bool) -> Self {
        self.config.lockstep_waves = lockstep;
        self
    }

    /// Sets the CU outgoing-buffer capacity (sender blocks on overflow).
    pub fn cu_outbox_capacity(mut self, capacity: usize) -> Self {
        self.config.cu_outbox_capacity = capacity;
        self
    }

    /// Enables the performance-collection network instrumentation.
    pub fn instrument(mut self, on: bool) -> Self {
        self.config.instrument = on;
        self
    }

    /// Injects a seeded fault schedule during execution (see
    /// [`MachineConfig::fault_plan`]).
    pub fn faults(mut self, plan: snap_fault::FaultPlan) -> Self {
        self.config.fault_plan = Some(plan);
        self
    }

    /// Selects the propagation kernel (see [`MachineConfig::kernel`]):
    /// the scalar executable spec, the bitset wave kernel, or Auto.
    pub fn kernel(mut self, kernel: crate::config::KernelStrategy) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// Sets the frontier density at which the bitset kernel switches
    /// from push to pull (see [`MachineConfig::pull_density`]).
    pub fn pull_density(mut self, density: f64) -> Self {
        self.config.pull_density = density;
        self
    }

    /// Enables structured event tracing for the run (see
    /// [`MachineConfig::trace`]; recording also needs the `obs` cargo
    /// feature).
    pub fn trace(mut self, cfg: snap_obs::ObsConfig) -> Self {
        self.config.trace = Some(cfg);
        self
    }

    /// Finishes the machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`MachineConfig::validate`]).
    pub fn build(self) -> Snap1 {
        self.config.validate();
        Snap1 {
            config: self.config,
            cost: self.cost,
            engine: self.engine,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::{PropRule, StepFunc};
    use snap_kb::{Color, Marker, NetworkConfig, RelationType};

    fn tiny() -> (SemanticNetwork, Program) {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        let a = net.add_named_node("a", Color(1)).unwrap();
        let b = net.add_named_node("b", Color(2)).unwrap();
        net.add_link(a, RelationType(0), 1.0, b).unwrap();
        let program = Program::builder()
            .search_color(Color(1), Marker::binary(0), 0.0)
            .propagate(
                Marker::binary(0),
                Marker::binary(1),
                PropRule::Star(RelationType(0)),
                StepFunc::Identity,
            )
            .collect_marker(Marker::binary(1))
            .build();
        (net, program)
    }

    #[test]
    fn all_engines_agree_on_tiny_example() {
        let mut ids = Vec::new();
        for engine in [
            EngineKind::Sequential,
            EngineKind::Des,
            EngineKind::Threaded,
        ] {
            let (mut net, program) = tiny();
            let machine = Snap1::builder().clusters(2).engine(engine).build();
            let report = machine.run(&mut net, &program).unwrap();
            ids.push(report.collects[0].node_ids());
        }
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[1], ids[2]);
    }

    #[test]
    fn run_shared_agrees_with_run_on_every_engine() {
        for engine in [
            EngineKind::Sequential,
            EngineKind::Des,
            EngineKind::Threaded,
        ] {
            let (mut net, program) = tiny();
            let machine = Snap1::builder().clusters(2).engine(engine).build();
            let exclusive = machine.run(&mut net, &program).unwrap();
            net.flush_links();
            let shared = std::sync::Arc::new(net);
            let report = machine.run_shared(&shared, &program).unwrap();
            assert_eq!(
                report.collects[0].node_ids(),
                exclusive.collects[0].node_ids(),
                "{engine:?}"
            );
            // The caller's snapshot is untouched and still shared.
            assert_eq!(std::sync::Arc::strong_count(&shared), 1);
        }
    }

    #[test]
    fn run_shared_rejects_maintenance_and_staged_links() {
        use snap_isa::Instruction;
        let (net, _) = tiny();
        let machine = Snap1::builder().clusters(2).build();
        // tiny() leaves its add_link staged: freezing it like this is the
        // caller bug SharedStagedLinks reports.
        let staged = std::sync::Arc::new(net);
        let program = Program::builder()
            .search_color(Color(1), Marker::binary(0), 0.0)
            .build();
        assert!(matches!(
            machine.run_shared(&staged, &program),
            Err(CoreError::SharedStagedLinks { staged: 1 })
        ));
        let mut net = std::sync::Arc::try_unwrap(staged).unwrap();
        net.flush_links();
        let shared = std::sync::Arc::new(net);
        let maint = Program::builder()
            .instruction(Instruction::SetColor {
                node: snap_kb::NodeId(0),
                color: Color(7),
            })
            .build();
        let err = machine.run_shared(&shared, &maint).unwrap_err();
        assert!(matches!(err, CoreError::MaintenanceOnShared { .. }));
        // The rejected program never touched the snapshot.
        assert_eq!(shared.color(snap_kb::NodeId(0)).unwrap(), Color(1));
    }

    #[test]
    fn builder_configures_geometry() {
        let m = Snap1::builder().clusters(8).mus_per_cluster(2).build();
        assert_eq!(m.config().clusters, 8);
        assert_eq!(m.config().pe_count(), 8 * 4);
        assert_eq!(m.engine(), EngineKind::Des);
    }

    #[test]
    fn builder_configures_kernel() {
        use crate::config::KernelStrategy;
        let m = Snap1::builder()
            .kernel(KernelStrategy::Bitset)
            .pull_density(0.25)
            .build();
        assert_eq!(m.config().kernel, KernelStrategy::Bitset);
        assert!((m.config().pull_density - 0.25).abs() < 1e-12);
    }

    #[test]
    fn default_machine_is_the_eval_array() {
        let m = Snap1::new();
        assert_eq!(m.config().clusters, 16);
        assert_eq!(m.config().pe_count(), 72);
    }
}
