//! Controller-side program planning.
//!
//! The dual-processor controller pipelines execution: the PCP walks the
//! application's control flow while the SCP broadcasts instructions to
//! the array. Consecutive `PROPAGATE` instructions without marker data
//! dependencies are overlapped (β-parallelism); a barrier synchronization
//! is required before any instruction that depends on in-flight markers,
//! and after every propagation group before the accumulation phase.
//!
//! [`plan`] turns a [`Program`] into the step sequence all engines
//! execute: single instructions and overlapped propagation groups, with
//! an implicit barrier after each group.

use snap_isa::{InstrClass, Instruction, Program};
use snap_kb::Marker;
use std::collections::HashSet;

/// One controller step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Execute a single (non-propagate) instruction, by program index.
    Instr(usize),
    /// Execute these `PROPAGATE` instructions overlapped, then barrier.
    Group(Vec<usize>),
}

/// Plans `program` into controller steps, preserving program order for
/// everything except the overlap of independent adjacent propagations.
pub fn plan(program: &Program) -> Vec<Step> {
    let mut steps = Vec::new();
    let mut group: Vec<usize> = Vec::new();
    let mut reads: HashSet<Marker> = HashSet::new();
    let mut writes: HashSet<Marker> = HashSet::new();

    let close = |group: &mut Vec<usize>,
                 reads: &mut HashSet<Marker>,
                 writes: &mut HashSet<Marker>,
                 steps: &mut Vec<Step>| {
        if !group.is_empty() {
            steps.push(Step::Group(std::mem::take(group)));
            reads.clear();
            writes.clear();
        }
    };

    for (idx, instr) in program.iter().enumerate() {
        if instr.class() == InstrClass::Propagate {
            let ir: HashSet<Marker> = instr.reads().into_iter().collect();
            let iw: HashSet<Marker> = instr.writes().into_iter().collect();
            let dependent = ir.iter().any(|m| writes.contains(m))
                || iw.iter().any(|m| reads.contains(m) || writes.contains(m));
            if dependent {
                close(&mut group, &mut reads, &mut writes, &mut steps);
            }
            reads.extend(ir);
            writes.extend(iw);
            group.push(idx);
        } else {
            close(&mut group, &mut reads, &mut writes, &mut steps);
            steps.push(Step::Instr(idx));
        }
    }
    close(&mut group, &mut reads, &mut writes, &mut steps);
    steps
}

/// The pieces of a `PROPAGATE` instruction an engine needs, pre-compiled.
#[derive(Debug, Clone)]
pub struct PropSpec {
    /// Index within the overlap group.
    pub prop: usize,
    /// Source marker.
    pub source: snap_kb::Marker,
    /// Target marker.
    pub target: snap_kb::Marker,
    /// Compiled rule program.
    pub rule: snap_isa::RuleProgram,
    /// Per-step function.
    pub func: snap_isa::StepFunc,
}

impl PropSpec {
    /// Compiles group member `prop` from instruction `instr`.
    ///
    /// # Panics
    ///
    /// Panics if `instr` is not a `PROPAGATE` — `plan` only places
    /// propagations in groups.
    pub fn compile(prop: usize, instr: &Instruction) -> Self {
        match instr {
            Instruction::Propagate {
                source,
                target,
                rule,
                func,
            } => PropSpec {
                prop,
                source: *source,
                target: *target,
                rule: rule.compile(),
                func: *func,
            },
            other => panic!("expected PROPAGATE in group, found {}", other.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::{PropRule, StepFunc};
    use snap_kb::{Marker, RelationType};

    fn prop(src: u8, dst: u8) -> Instruction {
        Instruction::Propagate {
            source: Marker::binary(src),
            target: Marker::complex(dst),
            rule: PropRule::Star(RelationType(0)),
            func: StepFunc::Identity,
        }
    }

    #[test]
    fn adjacent_independent_propagates_group() {
        let p: Program = vec![
            prop(1, 3),
            prop(2, 4),
            Instruction::CollectMarker {
                marker: Marker::complex(3),
            },
        ]
        .into_iter()
        .collect();
        let steps = plan(&p);
        assert_eq!(steps, vec![Step::Group(vec![0, 1]), Step::Instr(2)]);
    }

    #[test]
    fn dependent_propagates_split_groups() {
        let chain = Instruction::Propagate {
            source: Marker::complex(3),
            target: Marker::complex(4),
            rule: PropRule::Star(RelationType(0)),
            func: StepFunc::Identity,
        };
        let p: Program = vec![prop(1, 3), chain].into_iter().collect();
        assert_eq!(plan(&p), vec![Step::Group(vec![0]), Step::Group(vec![1])]);
    }

    #[test]
    fn non_propagate_instructions_preserve_order() {
        let p: Program = vec![
            Instruction::SetMarker {
                marker: Marker::binary(1),
                value: 0.0,
            },
            prop(1, 3),
            Instruction::ClearMarker {
                marker: Marker::binary(1),
            },
            prop(1, 4),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            plan(&p),
            vec![
                Step::Instr(0),
                Step::Group(vec![1]),
                Step::Instr(2),
                Step::Group(vec![3]),
            ]
        );
    }

    #[test]
    fn compile_extracts_propagate_fields() {
        let i = prop(1, 3);
        let spec = PropSpec::compile(7, &i);
        assert_eq!(spec.prop, 7);
        assert_eq!(spec.source, Marker::binary(1));
        assert_eq!(spec.target, Marker::complex(3));
    }

    #[test]
    #[should_panic(expected = "expected PROPAGATE")]
    fn compile_rejects_non_propagate() {
        PropSpec::compile(0, &Instruction::Barrier);
    }
}
