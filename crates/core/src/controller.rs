//! Controller-side program planning.
//!
//! The dual-processor controller pipelines execution: the PCP walks the
//! application's control flow while the SCP broadcasts instructions to
//! the array. Consecutive `PROPAGATE` instructions without marker data
//! dependencies are overlapped (β-parallelism); a barrier synchronization
//! is required before any instruction that depends on in-flight markers,
//! and after every propagation group before the accumulation phase.
//!
//! [`plan`] turns a [`Program`] into the step sequence all engines
//! execute: single instructions and overlapped propagation groups, with
//! an implicit barrier after each group.

use snap_isa::{InstrClass, Instruction, Program};
use snap_kb::Marker;
use std::collections::HashSet;

/// One controller step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Execute a single (non-propagate) instruction, by program index.
    Instr(usize),
    /// Execute these `PROPAGATE` instructions overlapped, then barrier.
    Group(Vec<usize>),
}

/// Plans `program` into controller steps, preserving program order for
/// everything except the overlap of independent adjacent propagations.
pub fn plan(program: &Program) -> Vec<Step> {
    let mut steps = Vec::new();
    let mut group: Vec<usize> = Vec::new();
    let mut reads: HashSet<Marker> = HashSet::new();
    let mut writes: HashSet<Marker> = HashSet::new();

    let close = |group: &mut Vec<usize>,
                 reads: &mut HashSet<Marker>,
                 writes: &mut HashSet<Marker>,
                 steps: &mut Vec<Step>| {
        if !group.is_empty() {
            steps.push(Step::Group(std::mem::take(group)));
            reads.clear();
            writes.clear();
        }
    };

    for (idx, instr) in program.iter().enumerate() {
        if instr.class() == InstrClass::Propagate {
            let ir: HashSet<Marker> = instr.reads().into_iter().collect();
            let iw: HashSet<Marker> = instr.writes().into_iter().collect();
            let dependent = ir.iter().any(|m| writes.contains(m))
                || iw.iter().any(|m| reads.contains(m) || writes.contains(m));
            if dependent {
                close(&mut group, &mut reads, &mut writes, &mut steps);
            }
            reads.extend(ir);
            writes.extend(iw);
            group.push(idx);
        } else {
            close(&mut group, &mut reads, &mut writes, &mut steps);
            steps.push(Step::Instr(idx));
        }
    }
    close(&mut group, &mut reads, &mut writes, &mut steps);
    steps
}

/// One step of a [`PlanBuf`] plan: [`Step`] with the group flattened
/// into a shared index arena instead of an owned `Vec`, so replanning
/// a pooled buffer allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOp {
    /// Execute a single (non-propagate) instruction, by program index.
    Instr(usize),
    /// Execute the group `PlanBuf::members(start, len)` overlapped,
    /// then barrier.
    Group {
        /// Offset into [`PlanBuf::members`].
        start: u32,
        /// Number of propagations in the group.
        len: u32,
    },
}

/// Reusable, allocation-free form of [`plan`] for the pooled serving
/// path: steps, group membership, and the dependency sets all keep
/// their capacity across calls, so steady-state replanning costs no
/// allocations. Produces exactly the plan [`plan`] produces.
#[derive(Debug, Default)]
pub struct PlanBuf {
    ops: Vec<PlanOp>,
    members: Vec<u32>,
    reads: HashSet<Marker>,
    writes: HashSet<Marker>,
    /// Offset of the currently open group in `members`.
    open: u32,
}

impl PlanBuf {
    /// Creates an empty buffer; the first plan sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plans `program`, replacing the previous plan in place.
    pub fn plan(&mut self, program: &Program) {
        self.ops.clear();
        self.members.clear();
        self.reads.clear();
        self.writes.clear();
        self.open = 0;
        for (idx, instr) in program.iter().enumerate() {
            if instr.class() == InstrClass::Propagate {
                let ir = instr.reads_fixed();
                let iw = instr.writes_fixed();
                let dependent = ir.into_iter().flatten().any(|m| self.writes.contains(&m))
                    || iw
                        .into_iter()
                        .flatten()
                        .any(|m| self.reads.contains(&m) || self.writes.contains(&m));
                if dependent {
                    self.close();
                }
                self.reads.extend(ir.into_iter().flatten());
                self.writes.extend(iw.into_iter().flatten());
                self.members.push(idx as u32);
            } else {
                self.close();
                self.ops.push(PlanOp::Instr(idx));
            }
        }
        self.close();
    }

    fn close(&mut self) {
        let len = self.members.len() as u32 - self.open;
        if len > 0 {
            self.ops.push(PlanOp::Group {
                start: self.open,
                len,
            });
            self.open = self.members.len() as u32;
            self.reads.clear();
            self.writes.clear();
        }
    }

    /// The planned steps, in execution order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// The program indices of one group, in program order.
    pub fn members(&self, start: u32, len: u32) -> &[u32] {
        &self.members[start as usize..(start + len) as usize]
    }
}

/// The pieces of a `PROPAGATE` instruction an engine needs, pre-compiled.
#[derive(Debug, Clone)]
pub struct PropSpec {
    /// Index within the overlap group.
    pub prop: usize,
    /// Source marker.
    pub source: snap_kb::Marker,
    /// Target marker.
    pub target: snap_kb::Marker,
    /// Compiled rule program.
    pub rule: snap_isa::RuleProgram,
    /// Per-step function.
    pub func: snap_isa::StepFunc,
}

impl PropSpec {
    /// Compiles group member `prop` from instruction `instr`.
    ///
    /// # Panics
    ///
    /// Panics if `instr` is not a `PROPAGATE` — `plan` only places
    /// propagations in groups.
    pub fn compile(prop: usize, instr: &Instruction) -> Self {
        match instr {
            Instruction::Propagate {
                source,
                target,
                rule,
                func,
            } => PropSpec {
                prop,
                source: *source,
                target: *target,
                rule: rule.compile(),
                func: *func,
            },
            other => panic!("expected PROPAGATE in group, found {}", other.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::{PropRule, StepFunc};
    use snap_kb::{Marker, RelationType};

    fn prop(src: u8, dst: u8) -> Instruction {
        Instruction::Propagate {
            source: Marker::binary(src),
            target: Marker::complex(dst),
            rule: PropRule::Star(RelationType(0)),
            func: StepFunc::Identity,
        }
    }

    #[test]
    fn adjacent_independent_propagates_group() {
        let p: Program = vec![
            prop(1, 3),
            prop(2, 4),
            Instruction::CollectMarker {
                marker: Marker::complex(3),
            },
        ]
        .into_iter()
        .collect();
        let steps = plan(&p);
        assert_eq!(steps, vec![Step::Group(vec![0, 1]), Step::Instr(2)]);
    }

    #[test]
    fn dependent_propagates_split_groups() {
        let chain = Instruction::Propagate {
            source: Marker::complex(3),
            target: Marker::complex(4),
            rule: PropRule::Star(RelationType(0)),
            func: StepFunc::Identity,
        };
        let p: Program = vec![prop(1, 3), chain].into_iter().collect();
        assert_eq!(plan(&p), vec![Step::Group(vec![0]), Step::Group(vec![1])]);
    }

    #[test]
    fn non_propagate_instructions_preserve_order() {
        let p: Program = vec![
            Instruction::SetMarker {
                marker: Marker::binary(1),
                value: 0.0,
            },
            prop(1, 3),
            Instruction::ClearMarker {
                marker: Marker::binary(1),
            },
            prop(1, 4),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            plan(&p),
            vec![
                Step::Instr(0),
                Step::Group(vec![1]),
                Step::Instr(2),
                Step::Group(vec![3]),
            ]
        );
    }

    /// Expands a [`PlanBuf`] plan back into owned [`Step`]s.
    fn expand(buf: &PlanBuf) -> Vec<Step> {
        buf.ops()
            .iter()
            .map(|op| match *op {
                PlanOp::Instr(i) => Step::Instr(i),
                PlanOp::Group { start, len } => Step::Group(
                    buf.members(start, len)
                        .iter()
                        .map(|&i| i as usize)
                        .collect(),
                ),
            })
            .collect()
    }

    #[test]
    fn plan_buf_matches_plan_and_reuses_cleanly() {
        let programs: Vec<Program> = vec![
            vec![
                prop(1, 3),
                prop(2, 4),
                Instruction::CollectMarker {
                    marker: Marker::complex(3),
                },
            ]
            .into_iter()
            .collect(),
            vec![
                prop(1, 3),
                Instruction::Propagate {
                    source: Marker::complex(3),
                    target: Marker::complex(4),
                    rule: PropRule::Star(RelationType(0)),
                    func: StepFunc::Identity,
                },
            ]
            .into_iter()
            .collect(),
            vec![
                Instruction::SetMarker {
                    marker: Marker::binary(1),
                    value: 0.0,
                },
                prop(1, 3),
                Instruction::ClearMarker {
                    marker: Marker::binary(1),
                },
                prop(1, 4),
            ]
            .into_iter()
            .collect(),
            Vec::<Instruction>::new().into_iter().collect(),
        ];
        // One pooled buffer across all programs, twice over: reuse must
        // not leak state between plans.
        let mut buf = PlanBuf::new();
        for _ in 0..2 {
            for p in &programs {
                buf.plan(p);
                assert_eq!(expand(&buf), plan(p));
            }
        }
    }

    #[test]
    fn compile_extracts_propagate_fields() {
        let i = prop(1, 3);
        let spec = PropSpec::compile(7, &i);
        assert_eq!(spec.prop, 7);
        assert_eq!(spec.source, Marker::binary(1));
        assert_eq!(spec.target, Marker::complex(3));
    }

    #[test]
    #[should_panic(expected = "expected PROPAGATE")]
    fn compile_rejects_non_propagate() {
        PropSpec::compile(0, &Instruction::Barrier);
    }
}
