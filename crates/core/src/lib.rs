//! # snap-core — the SNAP-1 machine
//!
//! The Semantic Network Array Processor executes marker-propagation
//! programs on an array of processing clusters managed by a
//! dual-processor controller. This crate is the paper's primary
//! contribution reproduced in software:
//!
//! * [`Snap1`] — the machine facade: configure geometry
//!   ([`MachineConfig`]), costs ([`CostModel`]), and engine
//!   ([`EngineKind`]), then [`Snap1::run`] programs against a
//!   [`snap_kb::SemanticNetwork`];
//! * three execution engines over one instruction semantics —
//!   a sequential reference, a deterministic discrete-event simulator
//!   (used for every timing figure), and a threaded engine with one real
//!   thread per cluster;
//! * [`RunReport`] — the integrated measurement system: per-class
//!   instruction profiles (Figs. 6, 18, 19), marker traffic per barrier
//!   (Fig. 8), α per propagation (Fig. 16), and the four overhead
//!   components (Fig. 21).
//!
//! The engine-shared semantics ([`Region`], [`propagate`]) are public so
//! comparator engines (e.g. the CM-2 baseline) can reuse them.
//!
//! # Examples
//!
//! See [`Snap1`] for an end-to-end example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod controller;
mod cost;
mod engine;
mod error;
pub mod kernel;
mod machine;
pub mod propagate;
mod region;
mod report;

/// Engine-shared instruction semantics, public so comparator engines
/// (the CM-2 baseline) execute the exact same logic.
pub mod exec {
    pub use crate::engine::common::{
        exec_single, exec_single_shared, exec_single_shared_into, ClusterWork, SingleOutcome,
    };
}

pub use config::{EngineKind, KernelStrategy, MachineConfig, VisitedStrategy};
pub use cost::CostModel;
pub use engine::sched::{
    Component, ComponentScheduler, EventQueue, Picker, ReadyQueue, ScheduleStrategy, CONTROL_STREAM,
};
pub use error::CoreError;
pub use machine::{Snap1, Snap1Builder};
pub use region::{Arrival, Region, RegionMap, VALUE_EPSILON};
pub use report::{CollectOutput, OverheadBreakdown, RunReport, TrafficStats};
// Fault-injection vocabulary, re-exported so applications can build
// plans and read reports without depending on snap-fault directly.
pub use snap_fault::{FaultPlan, FaultReport, PanicSpec, RetryPolicy};
// Observability vocabulary, re-exported likewise: configure tracing via
// the builder, read `RunReport::trace`, export with `chrome_trace_json`.
pub use snap_obs::{chrome_trace_json, ObsConfig, PhaseKind, TraceReport};
