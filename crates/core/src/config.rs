//! Machine configuration: array geometry and clocks.

use crate::engine::sched::ScheduleStrategy;
use serde::{Deserialize, Serialize};
use snap_fault::FaultPlan;
use snap_kb::PartitionScheme;
use snap_obs::ObsConfig;

/// Which execution engine a [`crate::Snap1`] machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EngineKind {
    /// Single-PE reference engine (the semantics oracle; also the
    /// uniprocessor used for the Fig. 6 instruction profile).
    Sequential,
    /// Deterministic discrete-event simulation of the cluster array with
    /// the calibrated cost model. Used for every timing figure.
    #[default]
    Des,
    /// Real threads (one per cluster) exchanging messages through
    /// channels; logically identical results, wall-clock timing.
    Threaded,
}

/// How engines back the propagation visited table (the per-phase
/// best-`(value, origin)` record per `(prop, state, node)` site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum VisitedStrategy {
    /// Dense per-`(prop, state)` arrays indexed by node when the node
    /// space is small enough to allocate flat; the hash map otherwise.
    #[default]
    Auto,
    /// Always dense arrays (O(1) probes, O(nodes) memory per visited
    /// `(prop, state)` pair).
    Dense,
    /// Always the `(prop, state, node)`-keyed hash map (memory
    /// proportional to the active set, slower probes).
    Hashed,
}

/// Which propagation kernel the engines run (see the DESIGN.md
/// "Propagation kernel" section).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KernelStrategy {
    /// Pick automatically: the bitset wave kernel where it is exact and
    /// profitable (untraced, un-fuzzed runs), the scalar spec otherwise.
    #[default]
    Auto,
    /// Always the scalar task-at-a-time loop — the executable spec every
    /// other kernel is asserted bit-identical against.
    Scalar,
    /// Always the bitset wave kernel: `u64` frontier/visited bitmaps over
    /// the CSR node arena with Beamer-style push/pull direction
    /// switching (see [`MachineConfig::pull_density`]).
    Bitset,
}

/// Default frontier-density threshold for switching the bitset kernel
/// from push (scatter) to pull (gather).
///
/// Far above the classic direction-optimizing BFS crossover (~1/14):
/// BFS pull early-exits on the first visited parent, but SNAP marker
/// propagation must deliver and count *every* arrival, so pull saves no
/// merge work — its only edge is the sequential reverse-CSR scan, which
/// pays off only once the frontier covers most of the arena (measured
/// on the fig. 16/19 workloads in `BENCH_kernel.json`).
pub(crate) fn default_pull_density() -> f64 {
    0.5
}

/// Geometry and clock configuration of a SNAP-1 machine.
///
/// The constructors encode the paper's configurations:
/// [`MachineConfig::snap1_full`] is the constructed prototype (32
/// clusters, 144 PEs) and [`MachineConfig::snap1_eval`] the 16-cluster /
/// 72-PE array used for Section IV's experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of processing clusters.
    pub clusters: usize,
    /// Marker units per cluster, indexed by cluster. Each cluster also
    /// has one PU and one CU, so its PE count is `mus[i] + 2`.
    pub mus: Vec<usize>,
    /// Controller clock in MHz (32 in the prototype).
    pub controller_clock_mhz: u32,
    /// Array PE clock in MHz (25 in the prototype).
    pub pe_clock_mhz: u32,
    /// Knowledge-base partitioning function.
    pub partition: PartitionScheme,
    /// PU circular instruction queue depth (64 in the prototype).
    pub instr_queue_depth: usize,
    /// Maximum propagation depth before a marker is dropped (guards
    /// cyclic knowledge bases; the paper's longest paths are 10–15).
    pub max_hops: u8,
    /// Force a barrier after every propagation wave (the CM-2-style
    /// SIMD-only ablation). Off in the real machine.
    pub lockstep_waves: bool,
    /// Capacity of each cluster's outgoing marker-activation buffer (the
    /// CU's share of the marker activation memory plus its ICN
    /// mailboxes). When a traffic burst exceeds it, the sending marker
    /// units block until deliveries free slots — the paper's network
    /// absorption requirement (§II-C, Fig. 8).
    pub cu_outbox_capacity: usize,
    /// Record an event on the performance-collection network for every
    /// instruction and barrier (the paper's instrumentation system).
    pub instrument: bool,
    /// Seeded fault schedule to inject during execution. `None` (the
    /// default) runs fault-free. The DES applies it deterministically
    /// (same seed + same plan ⇒ same injected schedule); the threaded
    /// engine applies it per-link deterministically and survives it via
    /// ack/retry, watchdog, and cluster-failover recovery. The
    /// sequential engine ignores it.
    pub fault_plan: Option<FaultPlan>,
    /// Structured event tracing configuration. `None` (the default)
    /// disables tracing; recording additionally requires building
    /// `snap-core` with the `obs` feature, without which this setting is
    /// inert. The aggregated `TraceReport` lands in the run report next
    /// to the fault report.
    pub trace: Option<ObsConfig>,
    /// Backing store for the propagation visited table. The strategy
    /// never changes which nodes are reached — only probe cost — so it
    /// defaults to picking automatically from the node count.
    #[serde(default)]
    pub visited: VisitedStrategy,
    /// How the engines order ready work. The default
    /// ([`ScheduleStrategy::Fifo`]) reproduces the historical
    /// deterministic orders bit for bit; a seeded
    /// [`ScheduleStrategy::Fuzzed`] schedule permutes the orderings a
    /// legal machine leaves unspecified (ready-task picks, equal-time
    /// event ties, worker polling order, gate selection) so the
    /// interleaving fuzzer can hunt ordering bugs. Results must be
    /// identical either way.
    #[serde(default)]
    pub schedule: ScheduleStrategy,
    /// Which propagation kernel runs the hot loop. Like `visited`, the
    /// kernel never changes which nodes are reached or what the reports
    /// count — the bitset wave kernel is asserted bit-identical to the
    /// scalar spec — so it defaults to picking automatically.
    #[serde(default)]
    pub kernel: KernelStrategy,
    /// Frontier density (frontier tasks / nodes) at which the bitset
    /// kernel switches from push (scatter from the frontier via CSR
    /// out-runs) to pull (gather over candidate nodes via a lazily built
    /// reverse CSR), à la Beamer direction-optimizing BFS. `>= 1.0`
    /// forces pure push, `0.0` forces pure pull.
    #[serde(default = "default_pull_density")]
    pub pull_density: f64,
}

impl MachineConfig {
    /// The full constructed prototype: 32 clusters — 16 in the five-PE
    /// configuration (3 MUs) and 16 with four PEs (2 MUs) — totalling
    /// 144 PEs.
    pub fn snap1_full() -> Self {
        let mut mus = vec![3; 16];
        mus.extend(vec![2; 16]);
        MachineConfig {
            clusters: 32,
            mus,
            controller_clock_mhz: 32,
            pe_clock_mhz: 25,
            partition: PartitionScheme::Semantic,
            instr_queue_depth: 64,
            max_hops: 48,
            lockstep_waves: false,
            cu_outbox_capacity: 1024,
            instrument: false,
            fault_plan: None,
            trace: None,
            visited: VisitedStrategy::Auto,
            schedule: ScheduleStrategy::Fifo,
            kernel: KernelStrategy::Auto,
            pull_density: default_pull_density(),
        }
    }

    /// The 16-cluster, 72-processor array used for the paper's
    /// performance evaluation (Section IV).
    pub fn snap1_eval() -> Self {
        // 16 clusters × (PU + CU) = 32 PEs; 40 MUs distributed as
        // 8 clusters with 3 MUs and 8 with 2 MUs → 72 PEs total.
        let mut mus = vec![3; 8];
        mus.extend(vec![2; 8]);
        MachineConfig {
            clusters: 16,
            mus,
            ..Self::snap1_full()
        }
    }

    /// A uniform array: `clusters` clusters with `mus_per_cluster` MUs
    /// each (used for scaling sweeps).
    pub fn uniform(clusters: usize, mus_per_cluster: usize) -> Self {
        MachineConfig {
            clusters,
            mus: vec![mus_per_cluster; clusters],
            ..Self::snap1_full()
        }
    }

    /// Total processing elements: per cluster, one PU, one CU, and its
    /// MUs. (Single-cluster arrays have no CU.)
    pub fn pe_count(&self) -> usize {
        let cu = usize::from(self.clusters > 1);
        self.mus.iter().map(|&m| m + 1 + cu).sum()
    }

    /// MUs in cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn mus_in(&self, c: usize) -> usize {
        self.mus[c]
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the MU table does not match the cluster count, any
    /// cluster has no MU, or there are no clusters.
    pub fn validate(&self) {
        assert!(self.clusters > 0, "machine needs at least one cluster");
        assert!(
            self.clusters <= snap_kb::MAX_CLUSTERS,
            "cluster IDs are a byte: at most {} clusters, got {}",
            snap_kb::MAX_CLUSTERS,
            self.clusters
        );
        assert_eq!(
            self.mus.len(),
            self.clusters,
            "MU table covers {} clusters but machine has {}",
            self.mus.len(),
            self.clusters
        );
        assert!(
            self.mus.iter().all(|&m| m >= 1),
            "every cluster needs at least one marker unit"
        );
        assert!(self.max_hops > 0, "max_hops must be positive");
        assert!(
            self.cu_outbox_capacity > 0,
            "the CU needs at least one outbox slot"
        );
        assert!(
            self.pull_density.is_finite() && self.pull_density >= 0.0,
            "pull_density must be a finite non-negative fraction, got {}",
            self.pull_density
        );
        if let Some(plan) = &self.fault_plan {
            if let Err(e) = plan.validate() {
                panic!("invalid fault plan: {e}");
            }
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::snap1_eval()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_prototype_has_144_pes() {
        let c = MachineConfig::snap1_full();
        c.validate();
        assert_eq!(c.clusters, 32);
        assert_eq!(c.pe_count(), 144);
    }

    #[test]
    fn eval_array_has_72_pes() {
        let c = MachineConfig::snap1_eval();
        c.validate();
        assert_eq!(c.clusters, 16);
        assert_eq!(c.pe_count(), 72);
    }

    #[test]
    fn uniform_geometry() {
        let c = MachineConfig::uniform(4, 2);
        c.validate();
        assert_eq!(c.pe_count(), 4 * (2 + 2));
        assert_eq!(c.mus_in(3), 2);
    }

    #[test]
    fn single_cluster_has_no_cu() {
        let c = MachineConfig::uniform(1, 1);
        c.validate();
        assert_eq!(c.pe_count(), 2); // PU + 1 MU
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn bad_fault_plan_rejected() {
        MachineConfig {
            fault_plan: Some(FaultPlan::seeded(1).drops(2.0)),
            ..MachineConfig::snap1_full()
        }
        .validate();
    }

    #[test]
    fn kernel_defaults_to_auto_with_majority_pull_density() {
        let c = MachineConfig::snap1_eval();
        assert_eq!(c.kernel, KernelStrategy::Auto);
        assert_eq!(c.kernel, KernelStrategy::default());
        assert!((c.pull_density - default_pull_density()).abs() < 1e-12);
        c.validate();
        // Forced directions are valid configurations, not errors.
        MachineConfig {
            pull_density: 0.0,
            ..MachineConfig::snap1_eval()
        }
        .validate();
        MachineConfig {
            pull_density: 2.0,
            ..MachineConfig::snap1_eval()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "pull_density")]
    fn negative_pull_density_rejected() {
        MachineConfig {
            pull_density: -0.5,
            ..MachineConfig::snap1_full()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "at least one marker unit")]
    fn zero_mu_cluster_rejected() {
        MachineConfig {
            mus: vec![0],
            clusters: 1,
            ..MachineConfig::snap1_full()
        }
        .validate();
    }
}
