//! A cluster's region: the slice of the knowledge base one cluster owns.
//!
//! Each region holds the local marker state for its member nodes and
//! implements the *local* part of every SNAP instruction. Engines differ
//! in how they schedule regions (in sequence, by simulated events, or on
//! real threads), but all of them execute instructions through these
//! methods, which is what makes their logical results identical.

use crate::error::CoreError;
use snap_isa::{CombineFunc, ValueFunc};
use snap_kb::{
    ClusterId, Color, Marker, MarkerKind, MarkerState, MarkerValue, NodeId, Partition,
    PartitionScheme, RelationType, SemanticNetwork, StatusRow,
};
use std::sync::Arc;

/// Minimum improvement for a re-arrival to update a stored marker value
/// (guards convergence on cyclic knowledge bases).
pub const VALUE_EPSILON: f32 = 1e-6;

/// Global node → (cluster, local index) mapping shared by all regions of
/// one machine.
#[derive(Debug, Clone)]
pub struct RegionMap {
    partition: Partition,
    local_of: Vec<u32>,
}

impl RegionMap {
    /// Builds the map for `network` over `clusters` clusters.
    pub fn build(network: &SemanticNetwork, clusters: usize, scheme: PartitionScheme) -> Arc<Self> {
        let partition = Partition::build(network, clusters, scheme);
        let mut local_of = vec![0u32; network.node_count()];
        for c in 0..clusters {
            for (i, &node) in partition.members(ClusterId(c as u8)).iter().enumerate() {
                local_of[node.index()] = i as u32;
            }
        }
        Arc::new(RegionMap {
            partition,
            local_of,
        })
    }

    /// Cluster owning `node`.
    pub fn cluster_of(&self, node: NodeId) -> ClusterId {
        self.partition.cluster_of(node)
    }

    /// Local index of `node` within its owning cluster.
    pub fn local_of(&self, node: NodeId) -> u32 {
        self.local_of[node.index()]
    }

    /// Members of `cluster`, ascending by node ID.
    pub fn members(&self, cluster: ClusterId) -> &[NodeId] {
        self.partition.members(cluster)
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.partition.cluster_count()
    }

    /// The underlying partition (for locality/balance reporting).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }
}

/// Outcome of a marker arrival at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// The marker was newly activated here — expand onward.
    New,
    /// The marker was active but the value improved — re-expand.
    Improved,
    /// Already active with an equal-or-better value — stop.
    Ignored,
}

/// One cluster's marker state and local instruction implementations.
///
/// `Clone` supports the threaded engine's recovery path: regions are
/// checkpointed at propagation-phase boundaries so a neighbor can adopt
/// a dead cluster's slice and replay the phase.
#[derive(Debug, Clone)]
pub struct Region {
    cluster: ClusterId,
    map: Arc<RegionMap>,
    markers: MarkerState,
}

impl Region {
    /// Creates the region for `cluster`.
    pub fn new(cluster: ClusterId, map: Arc<RegionMap>, network: &SemanticNetwork) -> Self {
        let nodes = map.members(cluster).len();
        let cfg = network.config();
        Region {
            cluster,
            map,
            markers: MarkerState::new(nodes, cfg.complex_markers, cfg.binary_markers),
        }
    }

    /// Resets the region's marker state in place, keeping allocations,
    /// so a pooled region serves its next query without reallocating.
    pub fn reset(&mut self) {
        self.markers.reset();
    }

    /// The cluster this region belongs to.
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// Member nodes, ascending.
    pub fn members(&self) -> &[NodeId] {
        self.map.members(self.cluster)
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.members().len()
    }

    /// `true` for a region with no nodes.
    pub fn is_empty(&self) -> bool {
        self.members().is_empty()
    }

    /// Status words per marker row in this region.
    pub fn words(&self) -> usize {
        self.len().div_ceil(snap_kb::WORD_BITS)
    }

    fn local(&self, node: NodeId) -> NodeId {
        debug_assert_eq!(self.map.cluster_of(node), self.cluster);
        NodeId(self.map.local_of(node))
    }

    fn global(&self, local: NodeId) -> NodeId {
        self.members()[local.index()]
    }

    /// `true` if this region owns `node`.
    pub fn owns(&self, node: NodeId) -> bool {
        node.index() < self.map.local_of.len() && self.map.cluster_of(node) == self.cluster
    }

    /// Tests `marker` at a member node.
    pub fn test(&self, marker: Marker, node: NodeId) -> bool {
        self.markers.test(marker, self.local(node))
    }

    /// The complex-marker payload at a member node, if active.
    pub fn value(&self, marker: Marker, node: NodeId) -> Option<MarkerValue> {
        self.markers.value(marker, self.local(node))
    }

    /// The value a propagation starting at `node` begins with: the
    /// stored value for complex markers, 0.0 for binary markers.
    pub fn source_value(&self, marker: Marker, node: NodeId) -> f32 {
        self.value(marker, node).map_or(0.0, |v| v.value)
    }

    /// Member nodes where `marker` is active, ascending by global ID.
    pub fn active_nodes(&self, marker: Marker) -> Vec<NodeId> {
        self.active_nodes_iter(marker).collect()
    }

    /// Iterator form of [`Region::active_nodes`]: report and collect
    /// paths that walk the set once borrow the status row directly
    /// instead of allocating a `Vec` per call.
    pub fn active_nodes_iter(&self, marker: Marker) -> impl Iterator<Item = NodeId> + '_ {
        self.markers
            .active_nodes_iter(marker)
            .map(|l| self.global(l))
    }

    /// Number of active instances of `marker` in this region.
    pub fn count(&self, marker: Marker) -> usize {
        self.markers.count(marker)
    }

    // ----- search phase -----

    /// `SEARCH-NODE` local part: activates `marker` at `node` if owned
    /// here. Returns `true` if this region performed the activation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an out-of-range marker register.
    pub fn search_node(
        &mut self,
        node: NodeId,
        marker: Marker,
        value: f32,
    ) -> Result<bool, CoreError> {
        if !self.owns(node) {
            return Ok(false);
        }
        self.activate(marker, node, value, node)?;
        Ok(true)
    }

    /// `SEARCH-RELATION` local part: activates `marker` at member nodes
    /// with an outgoing link of type `relation`. Returns the number of
    /// activations.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an out-of-range marker register.
    pub fn search_relation(
        &mut self,
        network: &SemanticNetwork,
        relation: RelationType,
        marker: Marker,
        value: f32,
    ) -> Result<usize, CoreError> {
        let hits: Vec<NodeId> = self
            .members()
            .iter()
            .copied()
            .filter(|&n| network.links_by(n, relation).next().is_some())
            .collect();
        for &n in &hits {
            self.activate(marker, n, value, n)?;
        }
        Ok(hits.len())
    }

    /// `SEARCH-COLOR` local part: activates `marker` at member nodes of
    /// the given color. Returns the number of activations.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an out-of-range marker register.
    pub fn search_color(
        &mut self,
        network: &SemanticNetwork,
        color: Color,
        marker: Marker,
        value: f32,
    ) -> Result<usize, CoreError> {
        let hits: Vec<NodeId> = self
            .members()
            .iter()
            .copied()
            .filter(|&n| network.color(n).is_ok_and(|c| c == color))
            .collect();
        for &n in &hits {
            self.activate(marker, n, value, n)?;
        }
        Ok(hits.len())
    }

    fn activate(
        &mut self,
        marker: Marker,
        node: NodeId,
        value: f32,
        origin: NodeId,
    ) -> Result<(), CoreError> {
        let local = self.local(node);
        match marker.kind() {
            MarkerKind::Complex => {
                self.markers
                    .set_value(marker, local, MarkerValue { value, origin })?;
            }
            MarkerKind::Binary => {
                self.markers.set(marker, local)?;
            }
        }
        Ok(())
    }

    // ----- propagation -----

    /// Delivers a propagated marker instance at a member node,
    /// implementing the value-merge contract: first arrival activates;
    /// later arrivals only count if they improve a complex value by more
    /// than [`VALUE_EPSILON`] (smaller values win; ties broken toward
    /// the smaller origin ID).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an out-of-range marker register.
    pub fn arrive(
        &mut self,
        marker: Marker,
        node: NodeId,
        value: f32,
        origin: NodeId,
    ) -> Result<Arrival, CoreError> {
        let local = self.local(node);
        if !self.markers.test(marker, local) {
            self.activate(marker, node, value, origin)?;
            return Ok(Arrival::New);
        }
        if marker.kind() == MarkerKind::Binary {
            return Ok(Arrival::Ignored);
        }
        let current = self.markers.value(marker, local).unwrap_or(MarkerValue {
            value: 0.0,
            origin: node,
        });
        // Lexicographic (value, origin) minimum: a strictly smaller value
        // wins; an equal value (within epsilon) with a smaller origin ID
        // wins the binding. Both cases re-expand, so the fixed point is
        // independent of arrival order.
        let better = value < current.value - VALUE_EPSILON
            || ((value - current.value).abs() <= VALUE_EPSILON && origin < current.origin);
        if better {
            self.markers.set_value(
                marker,
                local,
                MarkerValue {
                    value: value.min(current.value),
                    origin,
                },
            )?;
            Ok(Arrival::Improved)
        } else {
            Ok(Arrival::Ignored)
        }
    }

    /// Bulk write-back for the bit-sliced serving kernel: stores the
    /// final folded `(value, origin)` payload of a complex `marker` at
    /// every listed member node. The sliced kernel runs the
    /// [`Region::arrive`] merge fold in its lane planes and absorbs
    /// only the fixed point here, so this is a plain bulk store —
    /// one register check and one row fetch for the whole run
    /// ([`MarkerState::merge_values`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an out-of-range marker register or a
    /// node outside the region — the same failures the per-arrival
    /// path reports.
    pub fn absorb_values(
        &mut self,
        marker: Marker,
        items: impl Iterator<Item = (NodeId, MarkerValue)>,
    ) -> Result<(), CoreError> {
        let Region {
            cluster,
            map,
            markers,
        } = self;
        let cluster = *cluster;
        markers.merge_values(
            marker,
            items.map(|(node, v)| {
                debug_assert_eq!(map.cluster_of(node), cluster);
                (NodeId(map.local_of(node)), v)
            }),
        )?;
        Ok(())
    }

    /// Bulk write-back of a binary `marker`'s reached set — the binary
    /// half of [`Region::absorb_values`]; arrivals on a binary marker
    /// carry no payload, so the fixed point is just the set of touched
    /// nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an out-of-range marker register.
    pub fn absorb_bits(
        &mut self,
        marker: Marker,
        items: impl Iterator<Item = NodeId>,
    ) -> Result<(), CoreError> {
        let Region {
            cluster,
            map,
            markers,
        } = self;
        let cluster = *cluster;
        markers.merge_bits(
            marker,
            items.map(|node| {
                debug_assert_eq!(map.cluster_of(node), cluster);
                NodeId(map.local_of(node))
            }),
        )?;
        Ok(())
    }

    // ----- boolean phase (word-parallel) -----

    /// `AND-MARKER` / `OR-MARKER` local part. Returns
    /// `(words_touched, value_updates)` for the cost model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an out-of-range marker register.
    pub fn bool_op(
        &mut self,
        and: bool,
        a: Marker,
        b: Marker,
        target: Marker,
        combine: CombineFunc,
    ) -> Result<(usize, usize), CoreError> {
        let empty = StatusRow::new(self.len());
        let row_a = self
            .markers
            .row(a)
            .cloned()
            .unwrap_or_else(|| empty.clone());
        let row_b = self.markers.row(b).cloned().unwrap_or(empty);
        let mut result = StatusRow::new(self.len());
        let words = if and {
            result.assign_and(&row_a, &row_b)
        } else {
            result.assign_or(&row_a, &row_b)
        };
        // Values for complex targets: combine the source payloads where
        // both are present, else take the one that is.
        let mut value_updates = 0;
        if target.kind() == MarkerKind::Complex {
            for local in result.iter() {
                let va = self.markers.value(a, local).map(|v| v.value);
                let vb = self.markers.value(b, local).map(|v| v.value);
                let value = match (va, vb) {
                    (Some(x), Some(y)) => combine.apply(x, y),
                    (Some(x), None) => x,
                    (None, Some(y)) => y,
                    (None, None) => 0.0,
                };
                let origin = self.global(local);
                self.markers
                    .set_value(target, local, MarkerValue { value, origin })?;
                value_updates += 1;
            }
            // Clear stale target bits not in the result.
            let current: Vec<NodeId> = self
                .markers
                .row(target)
                .map(|r| r.iter().collect())
                .unwrap_or_default();
            for local in current {
                if !result.test(local) {
                    self.markers.clear(target, local)?;
                }
            }
        } else {
            let row = self.markers.row_mut(target)?;
            row.assign(&result);
        }
        Ok((words * 3, value_updates))
    }

    /// `NOT-MARKER` local part: `target` set exactly where `source` is
    /// clear. Returns words touched.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an out-of-range marker register.
    pub fn not_op(&mut self, source: Marker, target: Marker) -> Result<usize, CoreError> {
        let src = self
            .markers
            .row(source)
            .cloned()
            .unwrap_or_else(|| StatusRow::new(self.len()));
        let mut result = StatusRow::new(self.len());
        let words = result.assign_not(&src);
        if target.kind() == MarkerKind::Complex {
            for local in result.iter() {
                let origin = self.global(local);
                self.markers
                    .set_value(target, local, MarkerValue { value: 0.0, origin })?;
            }
            let current: Vec<NodeId> = self
                .markers
                .row(target)
                .map(|r| r.iter().collect())
                .unwrap_or_default();
            for local in current {
                if !result.test(local) {
                    self.markers.clear(target, local)?;
                }
            }
        } else {
            self.markers.row_mut(target)?.assign(&result);
        }
        Ok(words * 2)
    }

    // ----- set/clear phase -----

    /// `SET-MARKER` local part: activate at every member node. Returns
    /// words touched.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an out-of-range marker register.
    pub fn set_marker(&mut self, marker: Marker, value: f32) -> Result<usize, CoreError> {
        let words = self.markers.row_mut(marker)?.set_all();
        if marker.kind() == MarkerKind::Complex {
            for &node in &self.members().to_vec() {
                self.activate(marker, node, value, node)?;
            }
        }
        Ok(words)
    }

    /// `CLEAR-MARKER` local part. Returns words touched.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an out-of-range marker register.
    pub fn clear_marker(&mut self, marker: Marker) -> Result<usize, CoreError> {
        Ok(self.markers.clear_marker(marker)?)
    }

    /// `FUNC-MARKER` local part: applies `func` to the marker value at
    /// every active member node. Returns `(active_nodes, cleared)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for an out-of-range marker register.
    pub fn func_marker(
        &mut self,
        marker: Marker,
        func: ValueFunc,
    ) -> Result<(usize, usize), CoreError> {
        let active: Vec<NodeId> = self
            .markers
            .row(marker)
            .map(|r| r.iter().collect())
            .unwrap_or_default();
        let mut cleared = 0;
        for local in &active {
            let current = self.markers.value(marker, *local).map_or(0.0, |v| v.value);
            match func {
                ValueFunc::Scale(k) => self.write_value(marker, *local, current * k)?,
                ValueFunc::Offset(k) => self.write_value(marker, *local, current + k)?,
                ValueFunc::Const(k) => self.write_value(marker, *local, k)?,
                ValueFunc::ClearIf(cmp, t) => {
                    if cmp.eval(current, t) {
                        self.markers.clear(marker, *local)?;
                        cleared += 1;
                    }
                }
                ValueFunc::KeepIf(cmp, t) => {
                    if !cmp.eval(current, t) {
                        self.markers.clear(marker, *local)?;
                        cleared += 1;
                    }
                }
            }
        }
        Ok((active.len(), cleared))
    }

    fn write_value(&mut self, marker: Marker, local: NodeId, value: f32) -> Result<(), CoreError> {
        if marker.kind() == MarkerKind::Complex {
            let origin = self
                .markers
                .value(marker, local)
                .map_or_else(|| self.global(local), |v| v.origin);
            self.markers
                .set_value(marker, local, MarkerValue { value, origin })?;
        }
        Ok(())
    }

    // ----- retrieval phase -----

    /// `COLLECT-MARKER` local part: `(global node, payload)` pairs,
    /// ascending by node ID.
    pub fn collect_marker(&self, marker: Marker) -> Vec<(NodeId, Option<MarkerValue>)> {
        let mut out = Vec::new();
        self.collect_marker_into(marker, &mut out);
        out
    }

    /// [`Region::collect_marker`] appending into a caller-owned buffer
    /// (the steady-state serving loop recycles it), returning how many
    /// pairs this region contributed.
    pub fn collect_marker_into(
        &self,
        marker: Marker,
        out: &mut Vec<(NodeId, Option<MarkerValue>)>,
    ) -> usize {
        let before = out.len();
        if let Some(row) = self.markers.row(marker) {
            out.extend(
                row.iter()
                    .map(|local| (self.global(local), self.markers.value(marker, local))),
            );
        }
        out.len() - before
    }

    /// `COLLECT-RELATION` local part: links of `relation` at marked
    /// member nodes.
    pub fn collect_relation(
        &self,
        network: &SemanticNetwork,
        marker: Marker,
        relation: RelationType,
    ) -> Vec<(NodeId, snap_kb::Link)> {
        let mut out = Vec::new();
        self.collect_relation_into(network, marker, relation, &mut out);
        out
    }

    /// [`Region::collect_relation`] appending into a caller-owned
    /// buffer, returning how many pairs this region contributed.
    pub fn collect_relation_into(
        &self,
        network: &SemanticNetwork,
        marker: Marker,
        relation: RelationType,
        out: &mut Vec<(NodeId, snap_kb::Link)>,
    ) -> usize {
        let before = out.len();
        for node in self.active_nodes_iter(marker) {
            for link in network.links_by(node, relation) {
                out.push((node, *link));
            }
        }
        out.len() - before
    }

    /// `COLLECT-COLOR` local part: colors of marked member nodes.
    pub fn collect_color(&self, network: &SemanticNetwork, marker: Marker) -> Vec<(NodeId, Color)> {
        let mut out = Vec::new();
        self.collect_color_into(network, marker, &mut out);
        out
    }

    /// [`Region::collect_color`] appending into a caller-owned buffer,
    /// returning how many pairs this region contributed.
    pub fn collect_color_into(
        &self,
        network: &SemanticNetwork,
        marker: Marker,
        out: &mut Vec<(NodeId, Color)>,
    ) -> usize {
        let before = out.len();
        out.extend(
            self.active_nodes_iter(marker)
                .filter_map(|n| network.color(n).ok().map(|c| (n, c))),
        );
        out.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::Cmp;
    use snap_kb::NetworkConfig;

    fn setup(clusters: usize) -> (SemanticNetwork, Arc<RegionMap>, Vec<Region>) {
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        for i in 0..8 {
            net.add_named_node(format!("node{i}"), Color((i % 3) as u8))
                .unwrap();
        }
        let r = RelationType(1);
        net.add_link(NodeId(0), r, 1.0, NodeId(1)).unwrap();
        net.add_link(NodeId(1), r, 1.0, NodeId(4)).unwrap();
        net.add_link(NodeId(4), r, 1.0, NodeId(7)).unwrap();
        let map = RegionMap::build(&net, clusters, PartitionScheme::RoundRobin);
        let regions = (0..clusters)
            .map(|c| Region::new(ClusterId(c as u8), Arc::clone(&map), &net))
            .collect();
        (net, map, regions)
    }

    #[test]
    fn ownership_and_mapping() {
        let (_, map, regions) = setup(2);
        // Round-robin: even nodes to cluster 0, odd to cluster 1.
        assert!(regions[0].owns(NodeId(0)));
        assert!(regions[0].owns(NodeId(6)));
        assert!(!regions[0].owns(NodeId(1)));
        assert_eq!(map.cluster_of(NodeId(5)), ClusterId(1));
        assert_eq!(map.local_of(NodeId(6)), 3);
        assert_eq!(regions[0].len(), 4);
    }

    #[test]
    fn search_color_marks_only_local_matches() {
        let (net, _, mut regions) = setup(2);
        let m = Marker::binary(0);
        // Color 0 nodes: 0, 3, 6 — cluster 0 owns 0 and 6.
        let hits = regions[0].search_color(&net, Color(0), m, 0.0).unwrap();
        assert_eq!(hits, 2);
        assert_eq!(regions[0].active_nodes(m), vec![NodeId(0), NodeId(6)]);
    }

    #[test]
    fn search_relation_finds_link_sources() {
        let (net, _, mut regions) = setup(1);
        let m = Marker::binary(1);
        let hits = regions[0]
            .search_relation(&net, RelationType(1), m, 0.0)
            .unwrap();
        assert_eq!(hits, 3); // nodes 0, 1, 4 have r1 links
        assert_eq!(
            regions[0].active_nodes(m),
            vec![NodeId(0), NodeId(1), NodeId(4)]
        );
    }

    #[test]
    fn arrival_merge_prefers_smaller_values() {
        let (_, _, mut regions) = setup(1);
        let m = Marker::complex(0);
        let r = &mut regions[0];
        assert_eq!(
            r.arrive(m, NodeId(2), 5.0, NodeId(0)).unwrap(),
            Arrival::New
        );
        assert_eq!(
            r.arrive(m, NodeId(2), 6.0, NodeId(1)).unwrap(),
            Arrival::Ignored
        );
        assert_eq!(
            r.arrive(m, NodeId(2), 3.0, NodeId(1)).unwrap(),
            Arrival::Improved
        );
        let v = r.value(m, NodeId(2)).unwrap();
        assert_eq!(v.value, 3.0);
        assert_eq!(v.origin, NodeId(1));
        // Equal value, smaller origin wins the binding.
        assert_eq!(
            r.arrive(m, NodeId(2), 3.0, NodeId(0)).unwrap(),
            Arrival::Improved
        );
        assert_eq!(r.value(m, NodeId(2)).unwrap().origin, NodeId(0));
    }

    #[test]
    fn binary_arrivals_do_not_reactivate() {
        let (_, _, mut regions) = setup(1);
        let b = Marker::binary(2);
        let r = &mut regions[0];
        assert_eq!(
            r.arrive(b, NodeId(3), 0.0, NodeId(0)).unwrap(),
            Arrival::New
        );
        assert_eq!(
            r.arrive(b, NodeId(3), 0.0, NodeId(1)).unwrap(),
            Arrival::Ignored
        );
    }

    #[test]
    fn and_or_not_semantics() {
        let (_, _, mut regions) = setup(1);
        let r = &mut regions[0];
        let (a, b, t) = (Marker::binary(0), Marker::binary(1), Marker::binary(2));
        for n in [0u32, 1, 2] {
            r.arrive(a, NodeId(n), 0.0, NodeId(n)).unwrap();
        }
        for n in [1u32, 2, 3] {
            r.arrive(b, NodeId(n), 0.0, NodeId(n)).unwrap();
        }
        r.bool_op(true, a, b, t, CombineFunc::Add).unwrap();
        assert_eq!(r.active_nodes(t), vec![NodeId(1), NodeId(2)]);
        r.bool_op(false, a, b, t, CombineFunc::Add).unwrap();
        assert_eq!(
            r.active_nodes(t),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        r.not_op(a, t).unwrap();
        assert_eq!(
            r.active_nodes(t),
            vec![NodeId(3), NodeId(4), NodeId(5), NodeId(6), NodeId(7)]
        );
    }

    #[test]
    fn and_combines_complex_values() {
        let (_, _, mut regions) = setup(1);
        let r = &mut regions[0];
        let (a, b, t) = (Marker::complex(0), Marker::complex(1), Marker::complex(2));
        r.arrive(a, NodeId(1), 2.0, NodeId(0)).unwrap();
        r.arrive(b, NodeId(1), 3.0, NodeId(0)).unwrap();
        r.bool_op(true, a, b, t, CombineFunc::Add).unwrap();
        assert_eq!(r.value(t, NodeId(1)).unwrap().value, 5.0);
        r.bool_op(true, a, b, t, CombineFunc::Min).unwrap();
        assert_eq!(r.value(t, NodeId(1)).unwrap().value, 2.0);
    }

    #[test]
    fn bool_op_clears_stale_target_bits() {
        let (_, _, mut regions) = setup(1);
        let r = &mut regions[0];
        let (a, b, t) = (Marker::complex(0), Marker::complex(1), Marker::complex(2));
        r.arrive(t, NodeId(5), 9.0, NodeId(5)).unwrap();
        r.arrive(a, NodeId(1), 1.0, NodeId(1)).unwrap();
        r.arrive(b, NodeId(1), 1.0, NodeId(1)).unwrap();
        r.bool_op(true, a, b, t, CombineFunc::Add).unwrap();
        assert_eq!(
            r.active_nodes(t),
            vec![NodeId(1)],
            "stale bit at n5 cleared"
        );
    }

    #[test]
    fn set_clear_and_func_marker() {
        let (_, _, mut regions) = setup(1);
        let r = &mut regions[0];
        let m = Marker::complex(3);
        r.set_marker(m, 2.0).unwrap();
        assert_eq!(r.count(m), 8);
        assert_eq!(r.value(m, NodeId(4)).unwrap().value, 2.0);
        let (active, cleared) = r.func_marker(m, ValueFunc::Scale(3.0)).unwrap();
        assert_eq!((active, cleared), (8, 0));
        assert_eq!(r.value(m, NodeId(4)).unwrap().value, 6.0);
        // Threshold away everything above 5.0 — all of them.
        let (_, cleared) = r.func_marker(m, ValueFunc::ClearIf(Cmp::Gt, 5.0)).unwrap();
        assert_eq!(cleared, 8);
        assert_eq!(r.count(m), 0);
        r.set_marker(m, 1.0).unwrap();
        r.clear_marker(m).unwrap();
        assert_eq!(r.count(m), 0);
    }

    #[test]
    fn keep_if_retains_matching_values() {
        let (_, _, mut regions) = setup(1);
        let r = &mut regions[0];
        let m = Marker::complex(0);
        r.arrive(m, NodeId(0), 1.0, NodeId(0)).unwrap();
        r.arrive(m, NodeId(1), 9.0, NodeId(1)).unwrap();
        let (_, cleared) = r.func_marker(m, ValueFunc::KeepIf(Cmp::Lt, 5.0)).unwrap();
        assert_eq!(cleared, 1);
        assert_eq!(r.active_nodes(m), vec![NodeId(0)]);
    }

    #[test]
    fn collects_report_global_ids_sorted() {
        let (net, _, mut regions) = setup(2);
        let m = Marker::complex(0);
        regions[0].arrive(m, NodeId(6), 1.5, NodeId(0)).unwrap();
        regions[0].arrive(m, NodeId(0), 0.5, NodeId(0)).unwrap();
        let collected = regions[0].collect_marker(m);
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].0, NodeId(0));
        assert_eq!(collected[0].1.unwrap().value, 0.5);
        assert_eq!(collected[1].0, NodeId(6));
        let colors = regions[0].collect_color(&net, m);
        assert_eq!(colors, vec![(NodeId(0), Color(0)), (NodeId(6), Color(0))]);
        regions[0]
            .arrive(Marker::binary(0), NodeId(0), 0.0, NodeId(0))
            .unwrap();
        let links = regions[0].collect_relation(&net, Marker::binary(0), RelationType(1));
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].1.destination, NodeId(1));
    }
}
