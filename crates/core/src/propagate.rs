//! Shared propagation semantics: rule-driven expansion and visited
//! tracking.
//!
//! Every engine executes `PROPAGATE` through these helpers, so the set of
//! nodes reached, the rule states traversed, and the value-merge results
//! are engine-independent. The contract (documented on
//! [`snap_isa::Instruction::Propagate`]):
//!
//! * a marker instance at `(node, rule_state)` expands at most once per
//!   distinct value improvement greater than
//!   [`crate::region::VALUE_EPSILON`];
//! * value merging at a node keeps the minimum (cost semantics), breaking
//!   ties toward the smaller origin node ID;
//! * propagation depth is capped by the machine's `max_hops`, which
//!   bounds work on cyclic knowledge bases.

use snap_isa::{RuleProgram, StepFunc};
use snap_kb::{NodeId, SemanticNetwork};
use std::collections::HashMap;

/// One marker instance ready to expand from a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropTask {
    /// Index of the `PROPAGATE` instruction within its overlap group.
    pub prop: usize,
    /// Node the instance sits at.
    pub node: NodeId,
    /// Current rule state.
    pub state: u8,
    /// Current accumulated value.
    pub value: f32,
    /// Origin node of the instance.
    pub origin: NodeId,
    /// Propagation tier (links traversed so far).
    pub level: u8,
}

/// One outgoing arrival produced by an expansion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropArrival {
    /// Destination node.
    pub node: NodeId,
    /// Rule state the instance continues in.
    pub state: u8,
    /// Value after the step function.
    pub value: f32,
}

/// Result of expanding one task against the relation table.
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion {
    /// Arrivals at successor nodes.
    pub arrivals: Vec<PropArrival>,
    /// Relation-table segments fetched (cost unit).
    pub segments: usize,
    /// Relation slots examined (cost unit).
    pub links_scanned: usize,
}

impl snap_fault::Fingerprint for PropTask {
    fn fingerprint(&self) -> u64 {
        use snap_fault::mix64;
        mix64(self.prop as u64 ^ (u64::from(self.node.0) << 20))
            ^ mix64(u64::from(self.state) | (u64::from(self.value.to_bits()) << 8))
            ^ mix64(u64::from(self.origin.0) | (u64::from(self.level) << 40))
    }
}

impl snap_fault::Corruptible for PropTask {
    fn corrupt(&mut self, salt: u64) {
        // Flip value bits (|1 guarantees a change) and smear the rule
        // state: enough to invalidate the envelope checksum whatever the
        // payload was.
        self.value = f32::from_bits(self.value.to_bits() ^ ((salt as u32) | 1));
        self.state ^= (salt >> 32) as u8;
    }
}

/// Expands `task` one step: for each arc live in the task's rule state,
/// traverse the matching relation links and apply the step function.
pub fn expand(
    network: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    task: &PropTask,
) -> Expansion {
    let state = rule.state(task.state);
    let segments = network.segments(task.node);
    let mut arrivals = Vec::new();
    let mut links_scanned = 0;
    if state.is_terminal() {
        return Expansion {
            arrivals,
            segments: 0,
            links_scanned: 0,
        };
    }
    for link in network.links(task.node) {
        links_scanned += 1;
        for arc in state.arcs() {
            if link.relation == arc.relation {
                arrivals.push(PropArrival {
                    node: link.destination,
                    state: arc.next,
                    value: func.apply(task.value, link.weight),
                });
            }
        }
    }
    Expansion {
        arrivals,
        segments,
        links_scanned,
    }
}

/// Per-propagation visited map controlling (re-)expansion.
///
/// Records the best `(value, origin)` expanded from each
/// `(prop, state, node)`; a task is worth expanding only on the first
/// visit or when it improves that pair lexicographically (smaller value
/// beyond epsilon, or equal value with a smaller origin ID). Matching
/// the [`crate::Region::arrive`] merge rule keeps the propagation fixed
/// point independent of arrival order.
#[derive(Debug, Default)]
pub struct VisitedMap {
    best: HashMap<(usize, u8, NodeId), (f32, NodeId)>,
}

impl VisitedMap {
    /// Creates an empty map (one per propagation phase).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` — and records the pair — if `(prop, state, node)`
    /// has not been expanded yet or `(value, origin)` improves on the
    /// recorded pair.
    pub fn should_expand(
        &mut self,
        prop: usize,
        state: u8,
        node: NodeId,
        value: f32,
        origin: NodeId,
    ) -> bool {
        const EPS: f32 = crate::region::VALUE_EPSILON;
        match self.best.get_mut(&(prop, state, node)) {
            None => {
                self.best.insert((prop, state, node), (value, origin));
                true
            }
            Some((best, best_origin)) => {
                if value < *best - EPS || ((value - *best).abs() <= EPS && origin < *best_origin) {
                    *best = value.min(*best);
                    *best_origin = origin;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Number of distinct `(prop, state, node)` sites expanded.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// `true` if nothing has been expanded.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::PropRule;
    use snap_kb::{Color, NetworkConfig, RelationType};

    fn diamond() -> SemanticNetwork {
        // 0 --a(1.0)--> 1 --a(2.0)--> 3
        // 0 --a(5.0)--> 2 --a(1.0)--> 3
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        for _ in 0..4 {
            net.add_node(Color(0)).unwrap();
        }
        let a = RelationType(1);
        net.add_link(NodeId(0), a, 1.0, NodeId(1)).unwrap();
        net.add_link(NodeId(0), a, 5.0, NodeId(2)).unwrap();
        net.add_link(NodeId(1), a, 2.0, NodeId(3)).unwrap();
        net.add_link(NodeId(2), a, 1.0, NodeId(3)).unwrap();
        net
    }

    #[test]
    fn expand_follows_rule_arcs() {
        let net = diamond();
        let rule = PropRule::Star(RelationType(1)).compile();
        let task = PropTask {
            prop: 0,
            node: NodeId(0),
            state: 0,
            value: 0.0,
            origin: NodeId(0),
            level: 0,
        };
        let exp = expand(&net, &rule, StepFunc::AddWeight, &task);
        assert_eq!(exp.arrivals.len(), 2);
        assert_eq!(exp.arrivals[0].node, NodeId(1));
        assert_eq!(exp.arrivals[0].value, 1.0);
        assert_eq!(exp.arrivals[1].value, 5.0);
        assert_eq!(exp.links_scanned, 2);
        assert_eq!(exp.segments, 1);
    }

    #[test]
    fn expand_ignores_nonmatching_relations() {
        let mut net = diamond();
        net.add_link(NodeId(0), RelationType(9), 1.0, NodeId(3))
            .unwrap();
        let rule = PropRule::Star(RelationType(1)).compile();
        let task = PropTask {
            prop: 0,
            node: NodeId(0),
            state: 0,
            value: 0.0,
            origin: NodeId(0),
            level: 0,
        };
        let exp = expand(&net, &rule, StepFunc::AddWeight, &task);
        assert_eq!(exp.arrivals.len(), 2, "r9 link not traversed");
        assert_eq!(exp.links_scanned, 3, "but it was scanned");
    }

    #[test]
    fn terminal_state_stops() {
        let net = diamond();
        let rule = PropRule::Once(RelationType(1)).compile();
        let task = PropTask {
            prop: 0,
            node: NodeId(1),
            state: 1, // terminal state of once()
            value: 0.0,
            origin: NodeId(0),
            level: 1,
        };
        let exp = expand(&net, &rule, StepFunc::AddWeight, &task);
        assert!(exp.arrivals.is_empty());
    }

    #[test]
    fn visited_map_permits_improvements_only() {
        let mut v = VisitedMap::new();
        let o = NodeId(7);
        assert!(v.should_expand(0, 0, NodeId(3), 5.0, o));
        assert!(!v.should_expand(0, 0, NodeId(3), 5.0, o));
        assert!(!v.should_expand(0, 0, NodeId(3), 6.0, o));
        assert!(v.should_expand(0, 0, NodeId(3), 3.0, o));
        // Equal value with a smaller origin re-expands (binding update).
        assert!(v.should_expand(0, 0, NodeId(3), 3.0, NodeId(2)));
        assert!(!v.should_expand(0, 0, NodeId(3), 3.0, NodeId(5)));
        // Distinct states and propagations are independent.
        assert!(v.should_expand(0, 1, NodeId(3), 9.0, o));
        assert!(v.should_expand(1, 0, NodeId(3), 9.0, o));
        assert_eq!(v.len(), 3);
    }
}
