//! Shared propagation semantics: rule-driven expansion and visited
//! tracking.
//!
//! Every engine executes `PROPAGATE` through these helpers, so the set of
//! nodes reached, the rule states traversed, and the value-merge results
//! are engine-independent. The contract (documented on
//! [`snap_isa::Instruction::Propagate`]):
//!
//! * a marker instance at `(node, rule_state)` expands at most once per
//!   distinct value improvement greater than
//!   [`crate::region::VALUE_EPSILON`];
//! * value merging at a node keeps the minimum (cost semantics), breaking
//!   ties toward the smaller origin node ID;
//! * propagation depth is capped by the machine's `max_hops`, which
//!   bounds work on cyclic knowledge bases.

use crate::config::VisitedStrategy;
use snap_isa::{RuleProgram, StepFunc, MAX_RULE_STATES};
use snap_kb::{NodeId, SemanticNetwork};
use std::collections::HashMap;

/// One marker instance ready to expand from a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropTask {
    /// Index of the `PROPAGATE` instruction within its overlap group.
    pub prop: usize,
    /// Node the instance sits at.
    pub node: NodeId,
    /// Current rule state.
    pub state: u8,
    /// Current accumulated value.
    pub value: f32,
    /// Origin node of the instance.
    pub origin: NodeId,
    /// Propagation tier (links traversed so far).
    pub level: u8,
}

/// One outgoing arrival produced by an expansion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropArrival {
    /// Destination node.
    pub node: NodeId,
    /// Rule state the instance continues in.
    pub state: u8,
    /// Value after the step function.
    pub value: f32,
}

/// Result of expanding one task against the relation table.
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion {
    /// Arrivals at successor nodes.
    pub arrivals: Vec<PropArrival>,
    /// Relation-table segments fetched (cost unit).
    pub segments: usize,
    /// Relation slots examined (cost unit).
    pub links_scanned: usize,
}

impl snap_fault::Fingerprint for PropTask {
    fn fingerprint(&self) -> u64 {
        use snap_fault::mix64;
        mix64(self.prop as u64 ^ (u64::from(self.node.0) << 20))
            ^ mix64(u64::from(self.state) | (u64::from(self.value.to_bits()) << 8))
            ^ mix64(u64::from(self.origin.0) | (u64::from(self.level) << 40))
    }
}

impl snap_fault::Corruptible for PropTask {
    fn corrupt(&mut self, salt: u64) {
        // Flip value bits (|1 guarantees a change) and smear the rule
        // state: enough to invalidate the envelope checksum whatever the
        // payload was.
        self.value = f32::from_bits(self.value.to_bits() ^ ((salt as u32) | 1));
        self.state ^= (salt >> 32) as u8;
    }
}

/// Most rule arcs a single state may have and still take the indexed
/// merge path; beyond this (only reachable through large custom rules)
/// expansion falls back to the full link scan.
pub(crate) const MAX_MERGE_ARCS: usize = MAX_RULE_STATES;

/// Expands `task` one step: for each arc live in the task's rule state,
/// traverse the matching relation links and apply the step function.
///
/// Allocating convenience wrapper around [`expand_into`]; engines on the
/// hot path reuse one arrival buffer across tasks instead.
pub fn expand(
    network: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    task: &PropTask,
) -> Expansion {
    let mut arrivals = Vec::new();
    let (segments, links_scanned) = expand_into(network, rule, func, task, &mut arrivals);
    Expansion {
        arrivals,
        segments,
        links_scanned,
    }
}

/// Expands `task` one step into a caller-provided arrival buffer (cleared
/// first), returning the `(segments, links_scanned)` cost units.
///
/// Arrivals are produced via the relation table's per-`(node, relation)`
/// runs — O(arcs · matching links) instead of the historical
/// O(links · arcs) cross-product scan — but in the *exact* order the scan
/// produced: ascending `(link insertion rank, arc index)`. Engines depend
/// on that order for reproducible scheduling, so a single-arc state reads
/// its run directly and multi-arc states merge their runs by rank. The
/// cost units are unchanged by construction: the hardware fetches every
/// relation slot of the node regardless of how many match, so
/// `links_scanned` stays the node's full fanout and `segments` the
/// segment-chain length.
pub fn expand_into(
    network: &SemanticNetwork,
    rule: &RuleProgram,
    func: StepFunc,
    task: &PropTask,
    arrivals: &mut Vec<PropArrival>,
) -> (usize, usize) {
    arrivals.clear();
    let state = rule.state(task.state);
    if state.is_terminal() {
        return (0, 0);
    }
    let segments = network.segments(task.node);
    let links_scanned = network.fanout(task.node);
    let arcs = state.arcs();
    if network.staged_link_count() > 0 || arcs.len() > MAX_MERGE_ARCS {
        // Staged links are invisible to the indexed runs (and oversized
        // custom rules overflow the merge cursors): take the legacy scan.
        for link in network.links(task.node) {
            for arc in arcs {
                if link.relation == arc.relation {
                    arrivals.push(PropArrival {
                        node: link.destination,
                        state: arc.next,
                        value: func.apply(task.value, link.weight),
                    });
                }
            }
        }
        return (segments, links_scanned);
    }
    if let [arc] = arcs {
        // One arc: the relation run is already in insertion order.
        let (run, _) = network.ranked_links_by(task.node, arc.relation);
        arrivals.reserve(run.len());
        for link in run {
            arrivals.push(PropArrival {
                node: link.destination,
                state: arc.next,
                value: func.apply(task.value, link.weight),
            });
        }
        return (segments, links_scanned);
    }
    // Merge the per-arc runs back into scan order: ascending
    // (insertion rank, arc index). Duplicate-relation arcs share ranks
    // and tie-break on arc index, exactly like the scan's inner loop.
    let mut runs = [(&[] as &[snap_kb::Link], &[] as &[u32]); MAX_MERGE_ARCS];
    let mut cursors = [0usize; MAX_MERGE_ARCS];
    let mut total = 0;
    for (slot, arc) in runs.iter_mut().zip(arcs) {
        *slot = network.ranked_links_by(task.node, arc.relation);
        total += slot.0.len();
    }
    arrivals.reserve(total);
    loop {
        let mut best: Option<(u32, usize)> = None;
        for (a, (_, ranks)) in runs[..arcs.len()].iter().enumerate() {
            if let Some(&rank) = ranks.get(cursors[a]) {
                if best.is_none_or(|b| (rank, a) < b) {
                    best = Some((rank, a));
                }
            }
        }
        let Some((_, a)) = best else { break };
        let link = &runs[a].0[cursors[a]];
        cursors[a] += 1;
        arrivals.push(PropArrival {
            node: link.destination,
            state: arcs[a].next,
            value: func.apply(task.value, link.weight),
        });
    }
    (segments, links_scanned)
}

/// Node count up to which [`VisitedStrategy::Auto`] picks the dense
/// backing (8 bytes per node per visited `(prop, state)` pair).
const DENSE_NODE_CAP: usize = 1 << 20;

/// Sentinel origin marking an untouched dense slot (no real node carries
/// `NodeId(u32::MAX)` — capacity checks cap IDs far below it).
const EMPTY_ORIGIN: u32 = u32::MAX;

/// Per-propagation visited map controlling (re-)expansion.
///
/// Records the best `(value, origin)` expanded from each
/// `(prop, state, node)`; a task is worth expanding only on the first
/// visit or when it improves that pair lexicographically (smaller value
/// beyond epsilon, or equal value with a smaller origin ID). Matching
/// the [`crate::Region::arrive`] merge rule keeps the propagation fixed
/// point independent of arrival order.
///
/// Two backings implement identical decisions: a hash map keyed by
/// `(prop, state, node)` (memory proportional to the active set) and
/// dense per-`(prop, state)` arrays indexed by node (one probe, no
/// hashing). Engines pick via [`VisitedMap::with_strategy`];
/// [`VisitedMap::new`] keeps the historical hashed behavior.
#[derive(Debug)]
pub struct VisitedMap {
    backing: Backing,
    visited: usize,
}

#[derive(Debug)]
enum Backing {
    Hashed(HashMap<(usize, u8, NodeId), (f32, NodeId)>),
    Dense {
        /// `tables[prop * MAX_RULE_STATES + state]`, allocated lazily on
        /// the first visit of each `(prop, state)` pair and grown on
        /// demand when maintenance adds nodes mid-run.
        tables: Vec<Option<Vec<(f32, u32)>>>,
        nodes: usize,
    },
    /// Dense tables with the first-visit sentinel replaced by a word-
    /// addressable seen bitmap: the common "already expanded?" probe is
    /// one bit test. Decisions are identical to `Dense`, including
    /// growth past the declared node count; this is how the event- and
    /// thread-granular engines run the `Bitset` kernel strategy, whose
    /// schedules cannot be restructured into whole waves.
    Bitset {
        tables: Vec<Option<BitsetTable>>,
        nodes: usize,
    },
}

/// One `(prop, state)` visited table of the `Bitset` backing: the seen
/// bitmap plus the per-node `(value, origin)` bests.
type BitsetTable = (snap_kb::Bitmap, Vec<(f32, u32)>);

impl Default for VisitedMap {
    fn default() -> Self {
        Self::new()
    }
}

impl VisitedMap {
    /// Creates an empty hash-backed map (one per propagation phase).
    pub fn new() -> Self {
        VisitedMap {
            backing: Backing::Hashed(HashMap::new()),
            visited: 0,
        }
    }

    /// Creates an empty dense-backed map for a network of `nodes` nodes.
    pub fn dense(nodes: usize) -> Self {
        VisitedMap {
            backing: Backing::Dense {
                tables: Vec::new(),
                nodes,
            },
            visited: 0,
        }
    }

    /// Creates an empty bitmap-backed map for a network of `nodes`
    /// nodes: dense value tables fronted by a seen bitmap, deciding
    /// identically to [`VisitedMap::dense`].
    pub fn bitset(nodes: usize) -> Self {
        VisitedMap {
            backing: Backing::Bitset {
                tables: Vec::new(),
                nodes,
            },
            visited: 0,
        }
    }

    /// Creates the map an engine should use for a network of `nodes`
    /// nodes under the configured strategy. `Auto` goes dense up to
    /// [`DENSE_NODE_CAP`] nodes and falls back to hashing for node
    /// spaces too large to allocate flat per visited rule state.
    pub fn with_strategy(strategy: VisitedStrategy, nodes: usize) -> Self {
        match strategy {
            VisitedStrategy::Hashed => Self::new(),
            VisitedStrategy::Dense => Self::dense(nodes),
            VisitedStrategy::Auto => {
                if nodes <= DENSE_NODE_CAP {
                    Self::dense(nodes)
                } else {
                    Self::new()
                }
            }
        }
    }

    /// Returns `true` — and records the pair — if `(prop, state, node)`
    /// has not been expanded yet or `(value, origin)` improves on the
    /// recorded pair.
    pub fn should_expand(
        &mut self,
        prop: usize,
        state: u8,
        node: NodeId,
        value: f32,
        origin: NodeId,
    ) -> bool {
        const EPS: f32 = crate::region::VALUE_EPSILON;
        match &mut self.backing {
            Backing::Hashed(best) => match best.get_mut(&(prop, state, node)) {
                None => {
                    best.insert((prop, state, node), (value, origin));
                    self.visited += 1;
                    true
                }
                Some((best, best_origin)) => {
                    if value < *best - EPS
                        || ((value - *best).abs() <= EPS && origin < *best_origin)
                    {
                        *best = value.min(*best);
                        *best_origin = origin;
                        true
                    } else {
                        false
                    }
                }
            },
            Backing::Dense { tables, nodes } => {
                let idx = prop * MAX_RULE_STATES + state as usize;
                if idx >= tables.len() {
                    tables.resize(idx + 1, None);
                }
                let size = (*nodes).max(node.index() + 1);
                let table = tables[idx].get_or_insert_with(Vec::new);
                if table.len() < size {
                    table.resize(size, (0.0, EMPTY_ORIGIN));
                }
                let (best, best_origin) = &mut table[node.index()];
                if *best_origin == EMPTY_ORIGIN {
                    *best = value;
                    *best_origin = origin.0;
                    self.visited += 1;
                    true
                } else if value < *best - EPS
                    || ((value - *best).abs() <= EPS && origin.0 < *best_origin)
                {
                    *best = value.min(*best);
                    *best_origin = origin.0;
                    true
                } else {
                    false
                }
            }
            Backing::Bitset { tables, nodes } => {
                let idx = prop * MAX_RULE_STATES + state as usize;
                if idx >= tables.len() {
                    tables.resize_with(idx + 1, || None);
                }
                let size = (*nodes).max(node.index() + 1);
                let (seen, table) =
                    tables[idx].get_or_insert_with(|| (snap_kb::Bitmap::new(*nodes), Vec::new()));
                if table.len() < size {
                    table.resize(size, (0.0, 0));
                }
                let (best, best_origin) = &mut table[node.index()];
                if seen.set(node) {
                    *best = value;
                    *best_origin = origin.0;
                    self.visited += 1;
                    true
                } else if value < *best - EPS
                    || ((value - *best).abs() <= EPS && origin.0 < *best_origin)
                {
                    *best = value.min(*best);
                    *best_origin = origin.0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Resets the map in place for reuse by the next propagation phase,
    /// keeping backing allocations at capacity. Decisions after a reset
    /// are identical to a freshly constructed map: the hashed backing
    /// clears its entries; the dense backing truncates each table (the
    /// first probe re-fills it with the untouched sentinel); the bitset
    /// backing clears the seen bitmaps and truncates the bests.
    pub fn reset(&mut self) {
        match &mut self.backing {
            Backing::Hashed(best) => best.clear(),
            Backing::Dense { tables, .. } => {
                for table in tables.iter_mut().flatten() {
                    table.clear();
                }
            }
            Backing::Bitset { tables, .. } => {
                for (seen, best) in tables.iter_mut().flatten() {
                    seen.reset();
                    best.clear();
                }
            }
        }
        self.visited = 0;
    }

    /// Number of distinct `(prop, state, node)` sites expanded.
    pub fn len(&self) -> usize {
        self.visited
    }

    /// `true` if nothing has been expanded.
    pub fn is_empty(&self) -> bool {
        self.visited == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::PropRule;
    use snap_kb::{Color, NetworkConfig, RelationType};

    fn diamond() -> SemanticNetwork {
        // 0 --a(1.0)--> 1 --a(2.0)--> 3
        // 0 --a(5.0)--> 2 --a(1.0)--> 3
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        for _ in 0..4 {
            net.add_node(Color(0)).unwrap();
        }
        let a = RelationType(1);
        net.add_link(NodeId(0), a, 1.0, NodeId(1)).unwrap();
        net.add_link(NodeId(0), a, 5.0, NodeId(2)).unwrap();
        net.add_link(NodeId(1), a, 2.0, NodeId(3)).unwrap();
        net.add_link(NodeId(2), a, 1.0, NodeId(3)).unwrap();
        net
    }

    #[test]
    fn expand_follows_rule_arcs() {
        let net = diamond();
        let rule = PropRule::Star(RelationType(1)).compile();
        let task = PropTask {
            prop: 0,
            node: NodeId(0),
            state: 0,
            value: 0.0,
            origin: NodeId(0),
            level: 0,
        };
        let exp = expand(&net, &rule, StepFunc::AddWeight, &task);
        assert_eq!(exp.arrivals.len(), 2);
        assert_eq!(exp.arrivals[0].node, NodeId(1));
        assert_eq!(exp.arrivals[0].value, 1.0);
        assert_eq!(exp.arrivals[1].value, 5.0);
        assert_eq!(exp.links_scanned, 2);
        assert_eq!(exp.segments, 1);
    }

    #[test]
    fn expand_ignores_nonmatching_relations() {
        let mut net = diamond();
        net.add_link(NodeId(0), RelationType(9), 1.0, NodeId(3))
            .unwrap();
        let rule = PropRule::Star(RelationType(1)).compile();
        let task = PropTask {
            prop: 0,
            node: NodeId(0),
            state: 0,
            value: 0.0,
            origin: NodeId(0),
            level: 0,
        };
        let exp = expand(&net, &rule, StepFunc::AddWeight, &task);
        assert_eq!(exp.arrivals.len(), 2, "r9 link not traversed");
        assert_eq!(exp.links_scanned, 3, "but it was scanned");
    }

    #[test]
    fn terminal_state_stops() {
        let net = diamond();
        let rule = PropRule::Once(RelationType(1)).compile();
        let task = PropTask {
            prop: 0,
            node: NodeId(1),
            state: 1, // terminal state of once()
            value: 0.0,
            origin: NodeId(0),
            level: 1,
        };
        let exp = expand(&net, &rule, StepFunc::AddWeight, &task);
        assert!(exp.arrivals.is_empty());
    }

    fn exercise_visited(mut v: VisitedMap) {
        let o = NodeId(7);
        assert!(v.should_expand(0, 0, NodeId(3), 5.0, o));
        assert!(!v.should_expand(0, 0, NodeId(3), 5.0, o));
        assert!(!v.should_expand(0, 0, NodeId(3), 6.0, o));
        assert!(v.should_expand(0, 0, NodeId(3), 3.0, o));
        // Equal value with a smaller origin re-expands (binding update).
        assert!(v.should_expand(0, 0, NodeId(3), 3.0, NodeId(2)));
        assert!(!v.should_expand(0, 0, NodeId(3), 3.0, NodeId(5)));
        // Distinct states and propagations are independent.
        assert!(v.should_expand(0, 1, NodeId(3), 9.0, o));
        assert!(v.should_expand(1, 0, NodeId(3), 9.0, o));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn visited_map_permits_improvements_only() {
        exercise_visited(VisitedMap::new());
    }

    #[test]
    fn dense_visited_map_decides_identically() {
        exercise_visited(VisitedMap::dense(8));
        exercise_visited(VisitedMap::with_strategy(
            crate::config::VisitedStrategy::Auto,
            8,
        ));
    }

    #[test]
    fn bitset_visited_map_decides_identically() {
        exercise_visited(VisitedMap::bitset(8));
    }

    #[test]
    fn dense_visited_map_grows_past_declared_node_count() {
        // Maintenance can add nodes after an engine snapshots the count.
        for mut v in [VisitedMap::dense(2), VisitedMap::bitset(2)] {
            assert!(v.should_expand(0, 0, NodeId(900), 1.0, NodeId(0)));
            assert!(!v.should_expand(0, 0, NodeId(900), 1.0, NodeId(0)));
            assert_eq!(v.len(), 1);
        }
    }

    #[test]
    fn reset_restores_fresh_decisions_on_every_backing() {
        for mut v in [
            VisitedMap::new(),
            VisitedMap::dense(8),
            VisitedMap::bitset(8),
        ] {
            // Drive one full decision sequence, reset, and verify the
            // exact same sequence replays as if the map were fresh —
            // including growth past the declared node count.
            for _ in 0..2 {
                exercise_visited_in_place(&mut v);
                assert!(v.should_expand(2, 0, NodeId(500), 1.0, NodeId(0)));
                v.reset();
                assert!(v.is_empty());
            }
        }
    }

    fn exercise_visited_in_place(v: &mut VisitedMap) {
        let o = NodeId(7);
        assert!(v.should_expand(0, 0, NodeId(3), 5.0, o));
        assert!(!v.should_expand(0, 0, NodeId(3), 5.0, o));
        assert!(v.should_expand(0, 0, NodeId(3), 3.0, o));
        assert!(v.should_expand(0, 0, NodeId(3), 3.0, NodeId(2)));
        assert!(!v.should_expand(0, 0, NodeId(3), 3.0, NodeId(5)));
        assert!(v.should_expand(0, 1, NodeId(3), 9.0, o));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn expand_into_reuses_buffer_and_matches_expand() {
        let net = diamond();
        let rule = PropRule::Star(RelationType(1)).compile();
        let mut buf = vec![PropArrival {
            node: NodeId(9),
            state: 7,
            value: -1.0,
        }];
        for node in 0..4u32 {
            let task = PropTask {
                prop: 0,
                node: NodeId(node),
                state: 0,
                value: 0.5,
                origin: NodeId(0),
                level: 0,
            };
            let exp = expand(&net, &rule, StepFunc::AddWeight, &task);
            let (segments, scanned) =
                expand_into(&net, &rule, StepFunc::AddWeight, &task, &mut buf);
            assert_eq!(buf, exp.arrivals, "buffer is cleared then refilled");
            assert_eq!(segments, exp.segments);
            assert_eq!(scanned, exp.links_scanned);
        }
    }

    #[test]
    fn multi_arc_expansion_keeps_scan_order() {
        // Interleave relations so the merged runs must be reordered by
        // insertion rank to match the historical full-scan order.
        let mut net = SemanticNetwork::new(NetworkConfig::default());
        for _ in 0..8 {
            net.add_node(Color(0)).unwrap();
        }
        let (r1, r2) = (RelationType(1), RelationType(2));
        net.add_link(NodeId(0), r2, 1.0, NodeId(4)).unwrap();
        net.add_link(NodeId(0), r1, 1.0, NodeId(5)).unwrap();
        net.add_link(NodeId(0), r2, 1.0, NodeId(6)).unwrap();
        net.add_link(NodeId(0), r1, 1.0, NodeId(7)).unwrap();
        net.flush_links();
        let rule = PropRule::Spread(r1, r2).compile();
        let task = PropTask {
            prop: 0,
            node: NodeId(0),
            state: 0,
            value: 0.0,
            origin: NodeId(0),
            level: 0,
        };
        let exp = expand(&net, &rule, StepFunc::AddWeight, &task);
        let order: Vec<u32> = exp.arrivals.iter().map(|a| a.node.0).collect();
        assert_eq!(order, vec![4, 5, 6, 7], "insertion order, not run order");
        assert_eq!(exp.links_scanned, 4);
    }
}
